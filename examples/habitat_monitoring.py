"""Habitat monitoring: sizing a lifetime/reliability trade-off curve.

Run:  python examples/habitat_monitoring.py

Scenario (the paper's introduction motivates exactly this deployment): 40
battery-powered sensors scattered over a 60 m x 60 m reserve report
periodic readings to a solar-powered base station at the center.  The
network has been running for a year, so batteries are unevenly drained
(800-3000 J) - precisely the regime where lifetime constraints bite: trees
must keep children away from low-energy nodes.  The operator wants to
know: *how much reliability does each extra month of required lifetime
cost?*

The script sweeps the lifetime bound from "whatever the MST gives" up to
the maximum achievable (found by AAML), builds an IRA tree at each point,
and prints the resulting trade-off curve, then validates the chosen tree's
behaviour with the round-level simulator.
"""

import numpy as np

from repro import (
    build_aaml_tree,
    build_ira_tree,
    build_mst_tree,
    unit_disk_graph,
)
from repro.network.topology import random_energies
from repro.core.errors import InfeasibleLifetimeError
from repro.simulation import AggregationSimulator, simulate_lifetime

#: One reading every 5 minutes -> rounds per 30-day month.
ROUNDS_PER_MONTH = 12 * 24 * 30


def main() -> None:
    # -8 dBm keeps long links in the lossy transitional region, so tree
    # choice genuinely moves whole-round reliability; uneven batteries make
    # the lifetime constraint genuinely restrictive.
    energies = random_energies(40, 800.0, 3000.0, seed=5)
    net = unit_disk_graph(
        n_nodes=40,
        area_m=60.0,
        comm_range_m=22.0,
        tx_power_dbm=-8.0,
        initial_energy=energies,
        seed=42,
    )
    print(f"deployment: {net.n} nodes, {net.n_edges} usable links, "
          f"avg PRR {net.average_prr():.3f}")

    mst = build_mst_tree(net)
    aaml = build_aaml_tree(net)
    max_lifetime = aaml.lifetime
    print(f"unconstrained reliability optimum (MST): Q={mst.reliability():.4f}, "
          f"lifetime {mst.lifetime() / ROUNDS_PER_MONTH:.1f} months")
    print(f"maximum achievable lifetime (AAML): "
          f"{max_lifetime / ROUNDS_PER_MONTH:.1f} months\n")

    print(f"{'required (months)':>18s} {'reliability':>12s} {'cost x MST':>11s}")
    chosen = None
    for fraction in np.linspace(0.5, 1.0, 6):
        lc = fraction * max_lifetime
        try:
            result = build_ira_tree(net, lc)
        except InfeasibleLifetimeError:
            print(f"{lc / ROUNDS_PER_MONTH:18.1f}  infeasible")
            continue
        tree = result.tree
        ratio = tree.cost() / max(mst.cost(), 1e-12)
        print(
            f"{lc / ROUNDS_PER_MONTH:18.1f} {tree.reliability():12.4f} "
            f"{ratio:11.2f}"
        )
        if chosen is None and fraction >= 0.8:
            chosen = (lc, tree)

    assert chosen is not None
    lc, tree = chosen
    print(f"\nvalidating the tree chosen at {lc / ROUNDS_PER_MONTH:.1f} months:")

    # Behavioural check 1: empirical complete-round ratio ~ Q(T).
    sim = AggregationSimulator(tree, seed=7)
    empirical = sim.estimate_reliability(3000)
    print(f"  closed-form Q(T) = {tree.reliability():.4f}, "
          f"empirical over 3000 rounds = {empirical:.4f}")

    # Behavioural check 2: run-to-death lifetime matches Eq. 1.
    life = simulate_lifetime(tree, max_rounds=500, seed=7)
    print(f"  run-to-death lifetime: {life.rounds} rounds "
          f"({life.rounds / ROUNDS_PER_MONTH:.1f} months), "
          f"Eq. 1 predicts {life.predicted_rounds}")
    assert life.rounds >= lc * (1 - 1e-9)
    print("  the deployment meets its lifetime requirement.")


if __name__ == "__main__":
    main()
