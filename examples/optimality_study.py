"""Optimality study: how close is IRA to the true MRLC optimum?

Run:  python examples/optimality_study.py

The paper can only bound IRA from below by the unconstrained MST ("there is
no efficient algorithm returning the optimal solution").  This library ships
an exact branch-and-bound solver for evaluation-sized instances
(`repro.core.exact`), so we can answer the question the paper left open:

1. measure IRA's optimality gap over a batch of random 16-node instances at
   the *tightest* interesting bound (LC = the best achievable lifetime);
2. compare the structural statistics of IRA's tree vs the optimum, AAML,
   RaSMaLai (randomized switching), and the MST;
3. archive the hardest instance + the optimal tree to JSON for later
   inspection.
"""

import tempfile
from pathlib import Path

from repro import (
    build_aaml_tree,
    build_ira_tree,
    build_mst_tree,
    build_rasmalai_tree,
    compare_trees,
    random_graph,
    solve_mrlc_exact,
)
from repro.network.serialization import load_network, save_network, save_tree

N_INSTANCES = 12


def main() -> None:
    print(f"IRA vs exact optimum on {N_INSTANCES} random G(16, 0.7) instances")
    print(f"{'seed':>4} {'exact':>9} {'IRA':>9} {'gap %':>7} {'milp solves':>12}")
    worst = None
    gaps = []
    for seed in range(N_INSTANCES):
        net = random_graph(16, 0.7, seed=seed)
        lc = build_aaml_tree(net).lifetime  # the strictest feasible regime
        exact = solve_mrlc_exact(net, lc)
        ira = build_ira_tree(net, lc)
        gap = (ira.tree.cost() - exact.cost) / max(exact.cost, 1e-12)
        gaps.append(gap)
        print(
            f"{seed:>4} {exact.cost:9.4f} {ira.tree.cost():9.4f} "
            f"{gap * 100:7.2f} {exact.milp_solves:>12}"
        )
        if worst is None or gap > worst[0]:
            worst = (gap, seed, net, lc, exact)

    print(
        f"\nmean gap {sum(gaps) / len(gaps) * 100:.2f}%, "
        f"max gap {max(gaps) * 100:.2f}% — IRA is (near-)optimal here, a"
        " result the paper could not verify against the MST bound alone."
    )

    # Structural comparison on the hardest instance.
    _, seed, net, lc, exact = worst
    aaml = build_aaml_tree(net)
    ras = build_rasmalai_tree(net, seed=0)
    print(f"\nstructure on the hardest instance (seed {seed}):")
    print(
        compare_trees(
            {
                "optimal": exact.tree,
                "IRA": build_ira_tree(net, lc).tree,
                "AAML": aaml.tree,
                "RaSMaLai": ras.tree,
                "MST": build_mst_tree(net),
            }
        )
    )

    # Archive the instance for later analysis.
    with tempfile.TemporaryDirectory() as tmp:
        net_path = Path(tmp) / f"instance-{seed}.json"
        tree_path = Path(tmp) / f"optimal-tree-{seed}.json"
        save_network(net, net_path)
        save_tree(exact.tree, tree_path)
        reloaded = load_network(net_path)
        assert reloaded.n_edges == net.n_edges
        print(f"\narchived instance + optimal tree under {tmp} "
              f"({net_path.stat().st_size} + {tree_path.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
