"""Dynamic maintenance: the Prüfer-coded distributed protocol in action.

Run:  python examples/dynamic_maintenance.py

Scenario: the DFL deployment has been running for a while; link qualities
drift.  Rebuilding the tree centrally on every change would mean re-running
an LP and re-flooding the whole structure — instead each sensor keeps the
(P, D) sequence pair and reacts locally (Section VI).

The script walks through both protocol triggers explicitly:

1. a tree link degrades sharply -> its child picks a new parent and one
   Parent-Changing broadcast fixes every replica;
2. a non-tree link improves -> ILU (Algorithm 4) pulls it into the tree and
   cascades the displaced edges;

then runs the full 100-round churn experiment and reports how closely the
protocol tracks the recomputed-IRA ideal (Figs. 11-13).
"""

from repro import PAPER_COST_SCALE, build_aaml_tree, build_ira_tree, dfl_network
from repro.distributed import ChurnSimulation, DistributedProtocol


def main() -> None:
    net = dfl_network().copy()
    aaml = build_aaml_tree(net.filtered(0.95))
    lc = aaml.lifetime / 1.5
    tree = build_ira_tree(net, lc).tree
    print(f"initial IRA tree: cost={tree.cost() * PAPER_COST_SCALE:.1f}, "
          f"reliability={tree.reliability():.4f}, LC={lc:.3e}")

    protocol = DistributedProtocol(net, tree, lc)
    print(f"code broadcast to {net.n} sensors cost "
          f"{protocol.setup_messages} transmissions\n")

    # --- Trigger 1: a tree link collapses. -----------------------------
    child = max(
        (v for v in range(1, net.n)),
        key=lambda v: net.cost(v, protocol.pair.parent_map()[v]),
    )
    parent = protocol.pair.parent_map()[child]
    print(f"[link worse] crushing tree link ({child}, {parent}) to PRR 0.5")
    net.set_prr(child, parent, 0.5)
    protocol.refresh_link(child, parent)
    report = protocol.handle_link_worse(child, parent)
    protocol.assert_consistent()
    new_tree = protocol.tree()
    print(f"  re-parented: {report.changed}, messages: {report.messages}, "
          f"new cost {new_tree.cost() * PAPER_COST_SCALE:.1f}, "
          f"reliability {new_tree.reliability():.4f}")
    assert new_tree.lifetime() >= lc * (1 - 1e-9), "protocol kept the bound"

    # --- Trigger 2: a non-tree link becomes excellent. ------------------
    # Pick the node with the most expensive parent link and a non-tree
    # neighbour with child capacity - the situation ILU is built for.
    parent_map = protocol.pair.parent_map()
    pair = protocol.pair
    mover = max(
        (v for v in range(1, net.n)),
        key=lambda v: net.cost(v, parent_map[v]),
    )
    target = next(
        y for y in net.neighbors(mover)
        if y != parent_map[mover]
        and y not in pair.component(mover)
        and protocol.nodes[mover].can_host_child(y)
    )
    print(f"\n[link better] boosting non-tree link ({mover}, {target}) to PRR 0.9999")
    net.set_prr(mover, target, 0.9999)
    protocol.refresh_link(mover, target)
    report = protocol.handle_link_better(mover, target)
    protocol.assert_consistent()
    print(f"  ILU steps: {report.ilu_steps}, changes: {report.changed}, "
          f"messages: {report.messages}, "
          f"cost now {protocol.tree().cost() * PAPER_COST_SCALE:.1f}")
    assert report.did_change, "the boosted link should enter the tree"
    assert protocol.tree().lifetime() >= lc * (1 - 1e-9)

    # --- The full churn experiment (Figs. 11-13). -----------------------
    print("\n[churn] 100 rounds of gradual degradation vs recomputed IRA:")
    fresh = dfl_network().copy()
    lc2 = build_aaml_tree(fresh.filtered(0.95)).lifetime / 1.5
    initial = build_ira_tree(fresh, lc2).tree
    sim = ChurnSimulation(fresh, initial, lc2, seed=11)
    records = sim.run(100)
    last = records[-1]
    gap = max(
        (r.distributed_cost - r.centralized_cost) * PAPER_COST_SCALE
        for r in records
    )
    print(f"  final: distributed cost "
          f"{last.distributed_cost * PAPER_COST_SCALE:.1f} vs IRA "
          f"{last.centralized_cost * PAPER_COST_SCALE:.1f} "
          f"(max gap {gap:.1f} paper units)")
    print(f"  reliability gap at worst: "
          f"{max(r.centralized_reliability - r.distributed_reliability for r in records):.4f}")
    print(f"  {last.cumulative_updates} updates, "
          f"{last.cumulative_messages} messages total, "
          f"{last.avg_messages_per_update:.1f} per update")


if __name__ == "__main__":
    main()
