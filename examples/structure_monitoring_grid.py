"""Structure monitoring on a grid: why aggregation trees beat path metrics.

Run:  python examples/structure_monitoring_grid.py

Scenario: a 6 x 6 sensor grid on a bridge deck (one sensor per girder
joint), sink at a corner, links graded by distance (interference keeps even
short hops below 100%).  Two common alternatives are compared against the
paper's approach:

* an ETX-style shortest-path tree (what CTP-like collection stacks build) -
  it minimizes each node's own path cost, happily taking lossier diagonal
  shortcuts to cut depth;
* retransmit-until-success over that SPT (ETX's operating mode).

The script shows the paper's two motivation claims on this workload:

1. with no retransmissions, the *product* objective matters - the MST beats
   the SPT in whole-round reliability, and IRA keeps that advantage while
   honouring a lifetime bound;
2. with retransmissions, reliability is bought with energy: packets per
   round grow like ``sum ETX(e)``, which is exactly the overhead the
   paper's design avoids.
"""

from repro import build_ira_tree, build_mst_tree, build_spt_tree, grid_graph
from repro.baselines import build_aaml_tree
from repro.core.tree import PAPER_COST_SCALE
from repro.network import EmpiricalPRRModel
from repro.simulation import average_packets, expected_packets_per_round


def main() -> None:
    # Graded in-field quality: 4 m axis hops ~0.95, 5.7 m diagonals ~0.87.
    model = EmpiricalPRRModel(alpha=0.02, beta=1.2, noise_sigma=0.01)
    net = grid_graph(6, 6, spacing_m=4.0, link_model=model, seed=123)
    print(f"grid deployment: {net.n} nodes, {net.n_edges} links, "
          f"avg PRR {net.average_prr():.3f}\n")

    spt = build_spt_tree(net)
    mst = build_mst_tree(net)
    aaml = build_aaml_tree(net)
    ira = build_ira_tree(net, aaml.lifetime / 2).tree

    print(f"{'tree':8s} {'cost':>8s} {'Q(T)':>8s} {'depth':>6s} {'lifetime':>10s}")
    for name, tree in (("SPT", spt), ("MST", mst), ("IRA", ira)):
        depth = max(tree.depth(v) for v in range(tree.n))
        print(
            f"{name:8s} {tree.cost() * PAPER_COST_SCALE:8.1f} "
            f"{tree.reliability():8.4f} {depth:6d} {tree.lifetime():10.3e}"
        )

    # Claim 1: the product objective.
    assert mst.cost() <= spt.cost() + 1e-12
    assert mst.reliability() > spt.reliability()
    print(
        "\nThe SPT halves the depth by taking diagonal shortcuts, but every "
        "shortcut multiplies into the round-success probability: the MST's "
        f"whole-round reliability is {mst.reliability() / spt.reliability():.1f}x "
        "the SPT's, and IRA retains most of it under a lifetime bound."
    )

    # Claim 2: what ETX-style retransmission costs.
    expected = expected_packets_per_round(spt)
    measured = average_packets(spt, 500, seed=9)
    print(
        f"\nretransmit-until-success over the SPT: {measured:.1f} packets per "
        f"round measured ({expected:.1f} expected) vs {net.n - 1} packets with "
        "the paper's no-ACK aggregation - "
        f"{100 * (expected - (net.n - 1)) / expected:.0f}% of transmissions "
        "are retransmission overhead the MRLC design avoids."
    )


if __name__ == "__main__":
    main()
