"""Quickstart: the paper's toy example (Fig. 4) and the full MRLC pipeline.

Run:  python examples/quickstart.py

Part 1 rebuilds the 6-node toy network of Fig. 4 and shows that tree (b)
beats tree (a) in reliability (0.648 vs 0.36), and that the library's cost
metric is exactly ``-log Q(T)`` (Lemma 3).

Part 2 runs the whole pipeline on the synthetic DFL testbed: estimate link
quality from beacons, build AAML / MST / IRA trees, and compare cost,
reliability, and lifetime — the Fig. 7 experiment in miniature.
"""

import math

from repro import (
    AggregationTree,
    Network,
    PAPER_COST_SCALE,
    build_aaml_tree,
    build_ira_tree,
    build_mst_tree,
    dfl_network,
)


def toy_example() -> None:
    """Fig. 4: two aggregation trees over the same 6-node network."""
    # Nodes 0..5; 0 is the sink.  Link PRRs chosen to match Fig. 4.
    net = Network(6)
    net.add_link(1, 4, 0.8)   # node 2 of the figure -> our node 1
    net.add_link(2, 4, 0.5)   # the weak link tree (a) uses
    net.add_link(2, 5, 0.9)   # the better alternative tree (b) uses
    net.add_link(3, 5, 0.9)
    net.add_link(4, 0, 1.0)
    net.add_link(5, 0, 1.0)

    tree_a = AggregationTree(net, {1: 4, 2: 4, 3: 5, 4: 0, 5: 0})
    tree_b = AggregationTree(net, {1: 4, 2: 5, 3: 5, 4: 0, 5: 0})

    print("=== Fig. 4 toy example ===")
    for name, tree in (("(a)", tree_a), ("(b)", tree_b)):
        q = tree.reliability()
        print(
            f"tree {name}: reliability={q:.3f}  cost={tree.cost():.4f}"
            f"  (-log Q = {-math.log(q):.4f})"
        )
    assert abs(tree_a.reliability() - 0.36) < 1e-9
    assert abs(tree_b.reliability() - 0.648) < 1e-9
    print("tree (b) is the more reliable aggregation tree, as in the paper.\n")


def dfl_pipeline() -> None:
    """The full MRLC pipeline on the synthetic DFL testbed."""
    print("=== DFL pipeline (Fig. 7 in miniature) ===")
    net = dfl_network()  # geometry + beacon-estimated link qualities

    # AAML ignores link quality; the paper hides links with PRR < 0.95.
    aaml = build_aaml_tree(net.filtered(0.95))
    aaml_tree = AggregationTree(net, aaml.tree.parents)
    mst = build_mst_tree(net)

    # IRA: require the AAML lifetime, relaxed by 1.5x.
    lc = aaml.lifetime / 1.5
    ira = build_ira_tree(net, lc)

    print(f"lifetime constraint LC = L_AAML / 1.5 = {lc:.3e} rounds")
    header = f"{'algorithm':10s} {'cost':>8s} {'reliability':>12s} {'lifetime':>12s}"
    print(header)
    for name, tree in (("AAML", aaml_tree), ("IRA", ira.tree), ("MST", mst)):
        print(
            f"{name:10s} {tree.cost() * PAPER_COST_SCALE:8.1f} "
            f"{tree.reliability():12.4f} {tree.lifetime():12.3e}"
        )
    assert ira.tree.lifetime() >= lc * (1 - 1e-9)
    assert mst.cost() <= ira.tree.cost() <= aaml_tree.cost()
    print(
        "\nIRA meets the lifetime bound at near-MST cost; AAML pays "
        f"{aaml_tree.cost() / max(ira.tree.cost(), 1e-12):.1f}x more cost "
        "for its (unconstrained-optimal) lifetime."
    )


if __name__ == "__main__":
    toy_example()
    dfl_pipeline()
