"""Realistic link dynamics: bursty losses, drifting quality, live upkeep.

Run:  python examples/realistic_dynamics.py

The paper's churn experiment degrades one link by a fixed increment per
round.  Real links are nastier: losses come in bursts (Gilbert-Elliott) and
mean quality drifts with the environment.  This example runs the full
monitoring -> estimation -> maintenance loop the paper's Section VI
sketches, on that harder substrate:

1. links evolve under drift + burstiness (`DynamicLinkSimulator`);
2. each epoch, tree links are probed and smoothed by the EWMA estimator
   (`EWMALinkEstimator`) - the protocol reacts to *estimates*, not oracle
   truth;
3. estimated degradations trigger the link-worse handler; periodically a
   random non-tree link is probed and improvements trigger ILU;
4. at the end, the maintained tree is compared against (a) never
   maintaining, and (b) a fresh IRA recompute on the true link state - and
   its real whole-round reliability and latency are measured behaviourally
   with the TDMA simulator.
"""

from repro import (
    PAPER_COST_SCALE,
    AggregationTree,
    build_aaml_tree,
    build_ira_tree,
    dfl_network,
)
from repro.distributed import DistributedProtocol
from repro.network import EWMALinkEstimator
from repro.network.dynamics import DynamicLinkSimulator, LinkDriftModel
from repro.simulation import TDMACollectionSimulator

EPOCHS = 80
PROBE_WINDOW = 50  # beacons per probed link per epoch


def main() -> None:
    truth = dfl_network().copy()  # ground-truth link state, will drift
    aaml = build_aaml_tree(truth.filtered(0.95))
    lc = aaml.lifetime / 1.5
    initial = build_ira_tree(truth, lc).tree
    initial_parents = initial.parents
    print(f"initial IRA tree: cost={initial.cost() * PAPER_COST_SCALE:.1f}, "
          f"Q={initial.reliability():.4f}")

    # The protocol operates on an *estimated* view of the network.
    estimated = truth.copy()
    protocol = DistributedProtocol(
        estimated, AggregationTree(estimated, initial_parents), lc
    )
    estimator = EWMALinkEstimator(alpha=0.3)
    estimator.seed_from_network(estimated)

    dynamics = DynamicLinkSimulator(
        truth,
        drift=LinkDriftModel(sigma=0.004, floor=0.7, ceiling=0.999),
        burst_length=15.0,
        seed=17,
    )

    changes = 0
    for epoch in range(EPOCHS):
        dynamics.step()
        # Probe every current tree link against ground truth; fold the
        # windowed observation into the EWMA and the estimated network.
        for u, v in protocol.tree().edges():
            est = estimator.observe_window(
                truth, u, v, PROBE_WINDOW, seed=dynamics.rng
            )
            estimated.set_prr(u, v, max(est, 1e-6))
            protocol.refresh_link(u, v)
            protocol.handle_link_worse(u, v)
        # Probe a few non-tree links for improvements each epoch.
        parent_map = protocol.pair.parent_map()
        non_tree = [
            e.key for e in estimated.edges()
            if parent_map.get(e.u) != e.v and parent_map.get(e.v) != e.u
        ]
        for _ in range(3):
            u, v = non_tree[int(dynamics.rng.integers(0, len(non_tree)))]
            est = estimator.observe_window(
                truth, u, v, PROBE_WINDOW, seed=dynamics.rng
            )
            estimated.set_prr(u, v, max(est, 1e-6))
            protocol.refresh_link(u, v)
            report = protocol.handle_link_better(u, v)
            changes += int(report.did_change)

    protocol.assert_consistent()
    maintained = protocol.tree()

    # Evaluate everything against the *true* final link state.
    maintained_true = AggregationTree(truth, maintained.parents)
    stale_true = AggregationTree(truth, initial_parents)
    fresh = build_ira_tree(truth, lc).tree

    print(f"\nafter {EPOCHS} epochs of drift+bursts "
          f"({changes} ILU adoptions, replicas consistent):")
    header = f"{'tree':24s} {'cost':>7s} {'true Q(T)':>10s}"
    print(header)
    for name, tree in (
        ("never maintained", stale_true),
        ("protocol-maintained", maintained_true),
        ("fresh IRA (oracle)", fresh),
    ):
        print(f"{name:24s} {tree.cost() * PAPER_COST_SCALE:7.1f} "
              f"{tree.reliability():10.4f}")
    assert maintained_true.reliability() >= stale_true.reliability() - 0.02
    assert maintained_true.lifetime() >= lc * (1 - 1e-9)

    # Behavioural check on the true, bursty channel: TDMA rounds.
    sim = TDMACollectionSimulator(maintained_true, slot_duration=0.01, seed=5)
    sim.run_rounds(2000)
    print(f"\nTDMA validation of the maintained tree: "
          f"empirical round success {sim.empirical_reliability():.4f} "
          f"(closed form {maintained_true.reliability():.4f}), "
          f"round latency {sim.mean_latency() * 1000:.0f} ms "
          f"({max(maintained_true.depth(v) for v in range(16))} slots)")


if __name__ == "__main__":
    main()
