"""Structured run traces: JSONL events and spans with monotonic timestamps.

The tracer is the narrative half of the instrumentation layer: where the
metrics registry answers "how many", the trace answers "in what order and
how long".  Every record is one JSON object per line so traces stream, diff,
and grep well:

``{"t": 0.00123, "name": "lp.solve", "kind": "event", "fields": {...}}``

* ``t`` — seconds since the tracer was created, from
  :func:`time.perf_counter` (monotonic; immune to wall-clock steps);
* ``name`` — dotted event name (``layer.what``), e.g. ``ira.iteration``;
* ``kind`` — ``"event"`` for points, ``"span"`` for timed regions;
* ``dur`` — span duration in seconds (spans only);
* ``fields`` — free-form JSON payload (numbers, strings, bools).

The wall-clock epoch of ``t == 0`` is recorded once in the header line
(``kind == "trace_start"``) so traces can be correlated across processes.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

__all__ = ["TraceEvent", "Tracer", "NullTracer", "NULL_TRACER", "read_jsonl"]


def _json_safe(value: Any) -> Any:
    """Coerce a field value to something ``json.dumps`` accepts."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    try:  # numpy scalars expose item() without importing numpy here
        return value.item()
    except AttributeError:
        return str(value)


@dataclass(frozen=True)
class TraceEvent:
    """One trace record.

    Attributes:
        name: Dotted event name (``layer.what``).
        kind: ``"event"``, ``"span"``, or ``"trace_start"``.
        t: Monotonic seconds since the tracer's epoch.
        dur: Span duration in seconds (``None`` for point events).
        fields: Free-form payload.
    """

    name: str
    kind: str
    t: float
    dur: Optional[float] = None
    fields: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        doc: Dict[str, Any] = {"t": round(self.t, 9), "name": self.name, "kind": self.kind}
        if self.dur is not None:
            doc["dur"] = round(self.dur, 9)
        if self.fields:
            doc["fields"] = {k: _json_safe(v) for k, v in self.fields.items()}
        return json.dumps(doc, sort_keys=True)


class Tracer:
    """Collects :class:`TraceEvent` records against a monotonic epoch."""

    def __init__(self) -> None:
        self._t0 = time.perf_counter()
        self.started_utc = datetime.now(timezone.utc).isoformat()
        self.events: List[TraceEvent] = [
            TraceEvent(
                name="trace",
                kind="trace_start",
                t=0.0,
                fields={"started_utc": self.started_utc},
            )
        ]

    def _now(self) -> float:
        return time.perf_counter() - self._t0

    def event(self, name: str, **fields: Any) -> None:
        """Record a point event at the current monotonic time."""
        self.events.append(
            TraceEvent(name=name, kind="event", t=self._now(), fields=fields)
        )

    @contextmanager
    def span(self, name: str, **fields: Any) -> Iterator[Dict[str, Any]]:
        """Record a timed region; yields the mutable fields dict.

        The span's entry time and duration are recorded even when the body
        raises (the exception type is added as an ``error`` field), so
        traces of failed runs stay complete.
        """
        start = self._now()
        payload = dict(fields)
        try:
            yield payload
        except BaseException as exc:
            payload.setdefault("error", type(exc).__name__)
            raise
        finally:
            self.events.append(
                TraceEvent(
                    name=name,
                    kind="span",
                    t=start,
                    dur=self._now() - start,
                    fields=payload,
                )
            )

    def to_jsonl(self) -> str:
        """The full trace as JSON-lines text (trailing newline included)."""
        return "\n".join(e.to_json() for e in self.events) + "\n"

    def write_jsonl(self, path: Union[str, Path]) -> None:
        """Write the trace to *path* as JSONL."""
        Path(path).write_text(self.to_jsonl())


class NullTracer(Tracer):
    """Disabled tracer: records nothing, spans are pass-throughs."""

    def __init__(self) -> None:  # no clock read, no header event
        self.started_utc = ""
        self.events = []

    def event(self, name: str, **fields: Any) -> None:
        pass

    @contextmanager
    def span(self, name: str, **fields: Any) -> Iterator[Dict[str, Any]]:
        yield {}

    def to_jsonl(self) -> str:
        return ""


#: Shared null tracer installed while instrumentation is off.
NULL_TRACER = NullTracer()


def read_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a JSONL trace file back into a list of record dicts.

    Raises ``ValueError`` if any non-empty line is not a JSON object with
    the mandatory ``t`` / ``name`` / ``kind`` keys.
    """
    records: List[Dict[str, Any]] = []
    for i, line in enumerate(Path(path).read_text().splitlines(), start=1):
        if not line.strip():
            continue
        doc = json.loads(line)
        if not isinstance(doc, dict) or not {"t", "name", "kind"} <= doc.keys():
            raise ValueError(f"line {i} is not a trace record: {line[:80]!r}")
        records.append(doc)
    return records
