"""Structured run traces: JSONL events and spans with monotonic timestamps.

The tracer is the narrative half of the instrumentation layer: where the
metrics registry answers "how many", the trace answers "in what order and
how long".  Every record is one JSON object per line so traces stream, diff,
and grep well:

``{"t": 0.00123, "name": "lp.solve", "kind": "event", "fields": {...}}``

* ``t`` — seconds since the tracer was created, from
  :func:`time.perf_counter` (monotonic; immune to wall-clock steps);
* ``name`` — dotted event name (``layer.what``), e.g. ``ira.iteration``;
* ``kind`` — ``"event"`` for points, ``"span"`` for timed regions;
* ``dur`` — span duration in seconds (spans only);
* ``fields`` — free-form JSON payload (numbers, strings, bools);
* ``trace`` / ``span`` / ``parent`` — span-context ids
  (:mod:`repro.obs.spanctx`): every span belongs to a trace, knows its own
  id, and points at its parent span, so a request's spans reassemble into
  a tree even when they interleave across asyncio tasks or arrive from
  another process (:meth:`Tracer.add_span`).

The wall-clock epoch of ``t == 0`` is recorded once in the header line
(``kind == "trace_start"``) so traces can be correlated across processes.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.obs.spanctx import SpanContext, activate_span, current_span

__all__ = ["TraceEvent", "Tracer", "NullTracer", "NULL_TRACER", "read_jsonl"]


def _json_safe(value: Any) -> Any:
    """Coerce a field value to something ``json.dumps`` accepts."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    try:  # numpy scalars expose item() without importing numpy here
        return value.item()
    except AttributeError:
        return str(value)


@dataclass(frozen=True)
class TraceEvent:
    """One trace record.

    Attributes:
        name: Dotted event name (``layer.what``).
        kind: ``"event"``, ``"span"``, or ``"trace_start"``.
        t: Monotonic seconds since the tracer's epoch.
        dur: Span duration in seconds (``None`` for point events).
        fields: Free-form payload.
        trace_id: Trace the record belongs to (``None`` outside any trace).
        span_id: The span's own id (spans only).
        parent_id: Enclosing span's id (``None`` at a trace root).
    """

    name: str
    kind: str
    t: float
    dur: Optional[float] = None
    fields: Dict[str, Any] = field(default_factory=dict)
    trace_id: Optional[str] = None
    span_id: Optional[str] = None
    parent_id: Optional[str] = None

    def to_json(self) -> str:
        doc: Dict[str, Any] = {"t": round(self.t, 9), "name": self.name, "kind": self.kind}
        if self.dur is not None:
            doc["dur"] = round(self.dur, 9)
        if self.trace_id is not None:
            doc["trace"] = self.trace_id
        if self.span_id is not None:
            doc["span"] = self.span_id
        if self.parent_id is not None:
            doc["parent"] = self.parent_id
        if self.fields:
            doc["fields"] = {k: _json_safe(v) for k, v in self.fields.items()}
        return json.dumps(doc, sort_keys=True)


class Tracer:
    """Collects :class:`TraceEvent` records against a monotonic epoch."""

    def __init__(self) -> None:
        self._t0 = time.perf_counter()
        self.started_utc = datetime.now(timezone.utc).isoformat()
        self.events: List[TraceEvent] = [
            TraceEvent(
                name="trace",
                kind="trace_start",
                t=0.0,
                fields={"started_utc": self.started_utc},
            )
        ]

    def _now(self) -> float:
        return time.perf_counter() - self._t0

    def event(self, name: str, **fields: Any) -> None:
        """Record a point event at the current monotonic time.

        When an ambient span is active (see :mod:`repro.obs.spanctx`), the
        event is stamped with its trace id and parented on it.
        """
        ambient = current_span()
        self.events.append(
            TraceEvent(
                name=name,
                kind="event",
                t=self._now(),
                fields=fields,
                trace_id=ambient.trace_id if ambient is not None else None,
                parent_id=ambient.span_id if ambient is not None else None,
            )
        )

    @contextmanager
    def span(
        self,
        name: str,
        *,
        parent: Optional[SpanContext] = None,
        **fields: Any,
    ) -> Iterator[Dict[str, Any]]:
        """Record a timed region; yields the mutable fields dict.

        The span's entry time and duration are recorded even when the body
        raises (the exception type is added as an ``error`` field), so
        traces of failed runs stay complete.

        Span identity: a child context of *parent* when given, else of the
        ambient span (so nested ``span()`` blocks parent naturally, even
        across interleaved asyncio tasks), else a fresh root trace.  The
        span is the ambient context for the duration of the body.
        """
        base = parent if parent is not None else current_span()
        context = base.child() if base is not None else SpanContext.root()
        start = self._now()
        payload = dict(fields)
        try:
            with activate_span(context):
                yield payload
        except BaseException as exc:
            payload.setdefault("error", type(exc).__name__)
            raise
        finally:
            self.events.append(
                TraceEvent(
                    name=name,
                    kind="span",
                    t=start,
                    dur=self._now() - start,
                    fields=payload,
                    trace_id=context.trace_id,
                    span_id=context.span_id,
                    parent_id=context.parent_id,
                )
            )

    def add_span(
        self,
        name: str,
        *,
        dur: float,
        context: SpanContext,
        t: Optional[float] = None,
        **fields: Any,
    ) -> TraceEvent:
        """Re-attach an externally measured span to this trace.

        The serve layer uses this to splice a worker process's build span
        (measured worker-side with ``perf_counter``, shipped back with the
        shard result as a serialized :class:`~repro.obs.spanctx.
        SpanContext`) into the originating request's trace.  *t* defaults
        to "it just finished": now minus *dur*, clamped at the epoch.
        """
        if t is None:
            t = max(0.0, self._now() - dur)
        event = TraceEvent(
            name=name,
            kind="span",
            t=t,
            dur=dur,
            fields=fields,
            trace_id=context.trace_id,
            span_id=context.span_id,
            parent_id=context.parent_id,
        )
        self.events.append(event)
        return event

    def to_jsonl(self) -> str:
        """The full trace as JSON-lines text (trailing newline included)."""
        return "\n".join(e.to_json() for e in self.events) + "\n"

    def write_jsonl(self, path: Union[str, Path]) -> None:
        """Write the trace to *path* as JSONL."""
        Path(path).write_text(self.to_jsonl())


class NullTracer(Tracer):
    """Disabled tracer: records nothing, spans are pass-throughs."""

    def __init__(self) -> None:  # no clock read, no header event
        self.started_utc = ""
        self.events = []

    def event(self, name: str, **fields: Any) -> None:
        pass

    @contextmanager
    def span(
        self,
        name: str,
        *,
        parent: Optional[SpanContext] = None,
        **fields: Any,
    ) -> Iterator[Dict[str, Any]]:
        yield {}

    def add_span(
        self,
        name: str,
        *,
        dur: float,
        context: SpanContext,
        t: Optional[float] = None,
        **fields: Any,
    ) -> TraceEvent:
        return TraceEvent(name=name, kind="span", t=t or 0.0, dur=dur)

    def to_jsonl(self) -> str:
        return ""


#: Shared null tracer installed while instrumentation is off.
NULL_TRACER = NullTracer()


def read_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a JSONL trace file back into a list of record dicts.

    Raises ``ValueError`` if any non-empty line is not a JSON object with
    the mandatory ``t`` / ``name`` / ``kind`` keys.
    """
    records: List[Dict[str, Any]] = []
    for i, line in enumerate(Path(path).read_text().splitlines(), start=1):
        if not line.strip():
            continue
        doc = json.loads(line)
        if not isinstance(doc, dict) or not {"t", "name", "kind"} <= doc.keys():
            raise ValueError(f"line {i} is not a trace record: {line[:80]!r}")
        records.append(doc)
    return records
