"""Serializable span contexts: request-scoped trace identity that travels.

The tracer (:mod:`repro.obs.trace`) records *what happened here*; a
:class:`SpanContext` says *on whose behalf*.  A context is three ids:

* ``trace_id`` — one per request, minted where the request enters the
  system (e.g. :meth:`repro.serve.server.TreeServer.submit`) and shared by
  every span the request causes, wherever it runs;
* ``span_id`` — one per span, unique within the process fleet;
* ``parent_id`` — the ``span_id`` of the enclosing span (``None`` for the
  request's root span).

Contexts are plain string triples, so they serialize to dicts
(:meth:`SpanContext.to_dict`) and survive pickling across the serve
layer's process workers — a worker's build span carries the submitting
request's ``trace_id`` and re-attaches to its trace when the shard result
returns (:meth:`repro.obs.trace.Tracer.add_span`).

The *ambient* context is tracked in a :class:`contextvars.ContextVar`, so
interleaved asyncio tasks each see their own current span and nested
spans parent correctly without any explicit plumbing.  Nothing here is on
a hot path: contexts are only minted and consulted inside ``OBS.enabled``
guards or inside the tracer itself, which only runs when instrumented.

Ids are *not* derived from the seeded RNG plumbing on purpose: they are
operational identity, not simulation randomness, and must stay unique
across processes that share a seed.  Each process mints ids as
``<8-hex-char process prefix>-<counter>`` with the prefix drawn from
:func:`os.urandom` once at import.
"""

from __future__ import annotations

import itertools
import os
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional

__all__ = [
    "SpanContext",
    "current_span",
    "activate_span",
    "new_span_id",
    "new_trace_id",
]

#: Per-process uniqueness prefix; two workers minting the same counter
#: value still produce distinct ids.
_PROCESS_PREFIX = os.urandom(4).hex()

_SPAN_COUNTER = itertools.count(1)
_TRACE_COUNTER = itertools.count(1)


def new_trace_id() -> str:
    """Mint a process-unique trace id (``t<prefix>-<n>``)."""
    return f"t{_PROCESS_PREFIX}-{next(_TRACE_COUNTER):06x}"


def new_span_id() -> str:
    """Mint a process-unique span id (``s<prefix>-<n>``)."""
    return f"s{_PROCESS_PREFIX}-{next(_SPAN_COUNTER):06x}"


@dataclass(frozen=True)
class SpanContext:
    """Identity of one span inside one trace.

    Attributes:
        trace_id: Request-scoped id shared by every span of the trace.
        span_id: This span's own id.
        parent_id: ``span_id`` of the enclosing span, ``None`` at the root.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None

    @classmethod
    def root(cls) -> "SpanContext":
        """A fresh root context: new trace, new span, no parent."""
        return cls(trace_id=new_trace_id(), span_id=new_span_id())

    def child(self) -> "SpanContext":
        """A child context in the same trace, parented on this span."""
        return SpanContext(
            trace_id=self.trace_id,
            span_id=new_span_id(),
            parent_id=self.span_id,
        )

    def to_dict(self) -> Dict[str, Any]:
        """Wire/pickle form; inverse of :meth:`from_dict`."""
        doc: Dict[str, Any] = {"trace": self.trace_id, "span": self.span_id}
        if self.parent_id is not None:
            doc["parent"] = self.parent_id
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "SpanContext":
        """Rebuild a context shipped via :meth:`to_dict`.

        Raises ``ValueError`` when the mandatory ids are missing, so a
        corrupted wire document fails loudly instead of mis-parenting.
        """
        trace_id = doc.get("trace")
        span_id = doc.get("span")
        if not isinstance(trace_id, str) or not isinstance(span_id, str):
            raise ValueError(f"not a span-context document: {doc!r}")
        parent = doc.get("parent")
        if parent is not None and not isinstance(parent, str):
            raise ValueError(f"bad parent id in span context: {parent!r}")
        return cls(trace_id=trace_id, span_id=span_id, parent_id=parent)


#: Ambient span of the current task (asyncio-task-local via contextvars).
_CURRENT_SPAN: ContextVar[Optional[SpanContext]] = ContextVar(
    "repro_obs_current_span", default=None
)


def current_span() -> Optional[SpanContext]:
    """The ambient span context of the calling task, if any."""
    return _CURRENT_SPAN.get()


@contextmanager
def activate_span(context: Optional[SpanContext]) -> Iterator[Optional[SpanContext]]:
    """Make *context* the ambient span for the duration of the block.

    Used by the tracer around span bodies and by the serve layer when
    re-entering a request's context (e.g. inside a worker executing a
    shipped :class:`SpanContext`).  ``None`` deactivates tracking.
    """
    token = _CURRENT_SPAN.set(context)
    try:
        yield context
    finally:
        _CURRENT_SPAN.reset(token)
