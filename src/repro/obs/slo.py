"""Service-level objectives: per-op latency/error budgets and burn counters.

An :class:`SLO` declares what "healthy" means for one server operation —
"99% of ``build`` ops answer within 250 ms, 99.9% succeed" — and an
:class:`SLOTracker` counts how the live traffic is actually doing against
it.  The serve layer declares SLOs in :class:`~repro.serve.server.
ServeConfig` and records every TCP op into the tracker; the resulting
burn rates are surfaced in the ``stats`` op so a dashboard (``repro obs
top``) shows budget burn next to throughput.

Burn rate is the standard SRE quantity: *observed bad fraction ÷ allowed
bad fraction*.  1.0 means the op is burning its budget exactly as fast as
the objective tolerates; 2.0 means the budget lasts half the intended
window; anything < 1.0 is healthy.  With no traffic the burn is 0 — an
idle server is not out of budget.

The tracker is deliberately plain counters (no histograms, no clock
reads of its own): one ``record()`` is a dict lookup and three integer
updates, cheap enough to sit on the per-request path unguarded — it is
server state, not instrumentation, so it works with ``OBS`` disabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

__all__ = ["SLO", "SLOTracker", "SLOWindow"]


@dataclass(frozen=True)
class SLO:
    """One operation's objective.

    Attributes:
        op: Server operation the objective covers (``"build"``,
            ``"min_cut"``, ...).
        latency_budget_s: Per-request latency threshold; a slower answer
            is a latency breach.
        latency_target: Fraction of requests that must meet the threshold
            (default 0.99 → 1% breach budget).
        error_target: Fraction of requests that must succeed
            (default 0.999 → 0.1% error budget).
    """

    op: str
    latency_budget_s: float
    latency_target: float = 0.99
    error_target: float = 0.999

    def __post_init__(self) -> None:
        if self.latency_budget_s <= 0:
            raise ValueError(
                f"latency_budget_s must be positive, got {self.latency_budget_s}"
            )
        for name in ("latency_target", "error_target"):
            value = getattr(self, name)
            if not 0.0 < value < 1.0:
                raise ValueError(f"{name} must be in (0, 1), got {value}")

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "SLO":
        """Build from a config document (``{"op", "latency_budget_s", ...}``)."""
        return cls(
            op=str(doc["op"]),
            latency_budget_s=float(doc["latency_budget_s"]),
            latency_target=float(doc.get("latency_target", 0.99)),
            error_target=float(doc.get("error_target", 0.999)),
        )


@dataclass
class SLOWindow:
    """Running counts for one op since the tracker was created."""

    total: int = 0
    latency_breaches: int = 0
    errors: int = 0


class SLOTracker:
    """Counts live traffic against a set of declared :class:`SLO` objectives."""

    def __init__(self, slos: Tuple[SLO, ...] = ()) -> None:
        seen = set()
        for slo in slos:
            if slo.op in seen:
                raise ValueError(f"duplicate SLO for op {slo.op!r}")
            seen.add(slo.op)
        self.slos: Dict[str, SLO] = {slo.op: slo for slo in slos}
        self._windows: Dict[str, SLOWindow] = {
            op: SLOWindow() for op in self.slos
        }

    def __bool__(self) -> bool:
        return bool(self.slos)

    def record(self, op: str, latency_s: float, *, ok: bool = True) -> None:
        """Count one finished request against *op*'s objective (if declared)."""
        slo = self.slos.get(op)
        if slo is None:
            return
        window = self._windows[op]
        window.total += 1
        if not ok:
            window.errors += 1
        elif latency_s > slo.latency_budget_s:
            # An errored request burns the error budget, not both budgets.
            window.latency_breaches += 1

    def window(self, op: str) -> Optional[SLOWindow]:
        """The raw counts for *op*, or ``None`` if no SLO covers it."""
        return self._windows.get(op)

    @staticmethod
    def _burn(bad: int, total: int, target: float) -> float:
        if total == 0:
            return 0.0
        return (bad / total) / (1.0 - target)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Per-op budget health: counts, burn rates, and a verdict flag.

        ``latency_burn`` / ``error_burn`` are observed-bad-fraction over
        allowed-bad-fraction; ``healthy`` is both burns ≤ 1.0.
        """
        out: Dict[str, Dict[str, Any]] = {}
        for op, slo in self.slos.items():
            window = self._windows[op]
            latency_burn = self._burn(
                window.latency_breaches, window.total, slo.latency_target
            )
            error_burn = self._burn(
                window.errors, window.total, slo.error_target
            )
            out[op] = {
                "latency_budget_s": slo.latency_budget_s,
                "latency_target": slo.latency_target,
                "error_target": slo.error_target,
                "total": window.total,
                "latency_breaches": window.latency_breaches,
                "errors": window.errors,
                "latency_burn": latency_burn,
                "error_burn": error_burn,
                "healthy": latency_burn <= 1.0 and error_burn <= 1.0,
            }
        return out
