"""Wall-clock stage accumulation (absorbed from ``analysis.profiling``).

:class:`StageTimer` predates the metrics registry and remains the right tool
for coarse "how long did each build stage take" questions; it is re-exported
from :mod:`repro.analysis.profiling` for compatibility.

Semantics (pinned by ``tests/test_profiling.py``):

* sequential ``stage(name)`` blocks accumulate time and count invocations;
* an exception inside a stage still records that stage's elapsed time and
  its invocation, then propagates;
* *nested* re-entry of the **same** stage name records the stage once, with
  the outermost elapsed time — the naive implementation counted the inner
  time twice (once for the inner block, again inside the outer block's
  elapsed), silently double-counting whenever exception-handling or helper
  code re-entered a stage;
* nesting *different* stage names records both (the inner time is part of
  the outer stage's total by design — totals answer "time spent under this
  label", not a flame-graph decomposition).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator

__all__ = ["StageTimer"]


class StageTimer:
    """Accumulate wall-clock time per named stage.

    Usage::

        timer = StageTimer()
        with timer.stage("lp"):
            ...
        timer.totals()  # {"lp": seconds}
    """

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}
        self._active_depth: Dict[str, int] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        depth = self._active_depth.get(name, 0)
        self._active_depth[name] = depth + 1
        start = time.perf_counter()
        try:
            yield
        finally:
            remaining = self._active_depth[name] - 1
            if remaining:
                self._active_depth[name] = remaining
            else:
                del self._active_depth[name]
            if depth == 0:  # only the outermost frame of a name records
                elapsed = time.perf_counter() - start
                self._totals[name] = self._totals.get(name, 0.0) + elapsed
                self._counts[name] = self._counts.get(name, 0) + 1

    def totals(self) -> Dict[str, float]:
        """Accumulated seconds per stage."""
        return dict(self._totals)

    def counts(self) -> Dict[str, int]:
        """Invocations per stage."""
        return dict(self._counts)

    def render(self) -> str:
        from repro.utils.tables import format_table

        rows = [
            [name, self._counts[name], round(self._totals[name], 4)]
            for name in sorted(self._totals, key=self._totals.get, reverse=True)
        ]
        return format_table(["stage", "calls", "seconds"], rows)
