"""The instrumentation switchboard: one process-local enable flag.

Hot code imports the :data:`OBS` singleton once and guards every report::

    from repro.obs import OBS

    if OBS.enabled:
        OBS.registry.counter("lp.solves").inc()
        OBS.tracer.event("lp.solve", n_vars=n_vars)

With instrumentation off (the default) the guard costs one attribute load
and a branch — the null backends behind it are never reached — which is what
keeps the tier-1 suite at its uninstrumented runtime.  Enabling is scoped::

    from repro.obs import instrument

    with instrument(seed=1, params={"n": 50}) as session:
        build_ira_tree(net, lc)
    print(session.registry.render())
    session.tracer.write_jsonl("trace.jsonl")

Sessions nest: the previous backend triple is restored on exit, so a caller
that is itself instrumented can run a scoped sub-session.  The switchboard
is deliberately process-local (no thread-local indirection): the library's
parallelism is process-based (:mod:`repro.experiments.parallel`), and a
per-call thread-local lookup would cost more than the entire null path.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

from repro.obs.manifest import RunManifest, collect_manifest
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer

__all__ = ["OBS", "ObsSession", "instrument", "is_enabled"]


class _ObsState:
    """Mutable singleton holding the active backends."""

    __slots__ = ("enabled", "registry", "tracer")

    def __init__(self) -> None:
        self.enabled: bool = False
        self.registry: MetricsRegistry = NULL_REGISTRY
        self.tracer: Tracer = NULL_TRACER


#: The process-local instrumentation state; import this, check ``.enabled``.
OBS = _ObsState()


def is_enabled() -> bool:
    """Whether an instrumentation session is currently active."""
    return OBS.enabled


@dataclass
class ObsSession:
    """The bundle one :func:`instrument` block produces.

    Attributes:
        registry: Metrics recorded during the block.
        tracer: Structured events recorded during the block.
        manifest: Reproducibility record collected at block entry.
    """

    registry: MetricsRegistry
    tracer: Tracer
    manifest: RunManifest

    def write(self, directory: Union[str, Path]) -> Dict[str, Path]:
        """Write trace.jsonl / manifest.json / metrics.json under *directory*.

        Returns the mapping of artifact name to written path.  The directory
        is created if needed.
        """
        import json

        out = Path(directory)
        out.mkdir(parents=True, exist_ok=True)
        paths = {
            "trace": out / "trace.jsonl",
            "manifest": out / "manifest.json",
            "metrics": out / "metrics.json",
        }
        self.tracer.write_jsonl(paths["trace"])
        self.manifest.write(paths["manifest"])
        paths["metrics"].write_text(
            json.dumps(self.registry.snapshot(), indent=2, sort_keys=True)
        )
        return paths


@contextmanager
def instrument(
    *,
    seed: Optional[int] = None,
    params: Optional[Dict[str, Any]] = None,
    command: Optional[str] = None,
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
) -> Iterator[ObsSession]:
    """Enable instrumentation for the duration of the block.

    Args:
        seed: Root seed of the run, recorded in the manifest.
        params: Parameter dict of the run, recorded in the manifest.
        command: Command line to record (defaults to ``sys.argv``).
        registry: Use an existing registry instead of a fresh one (lets a
            caller accumulate several blocks into one snapshot).
        tracer: Use an existing tracer instead of a fresh one.

    The previous state (including a previously active session's backends)
    is restored when the block exits, normally or by exception.
    """
    session = ObsSession(
        registry=registry if registry is not None else MetricsRegistry(),
        tracer=tracer if tracer is not None else Tracer(),
        manifest=collect_manifest(seed=seed, params=params, command=command),
    )
    prev = (OBS.enabled, OBS.registry, OBS.tracer)
    OBS.enabled = True
    OBS.registry = session.registry
    OBS.tracer = session.tracer
    try:
        yield session
    finally:
        OBS.enabled, OBS.registry, OBS.tracer = prev
