"""``repro obs`` — run builders/experiments with instrumentation on.

Examples::

    repro obs ira --nodes 50 --seed 1          # instrumented IRA build
    repro obs aaml --nodes 30 --seed 2         # instrumented AAML build
    repro obs build rasmalai --nodes 30        # any registered builder
    repro obs churn --rounds 20                # protocol churn on the DFL net
    repro obs faults --drop-rate 0.2           # churn under control-plane faults
    repro obs rounds --nodes 20 --rounds 200   # aggregation-round simulation
    repro obs fig fig3                         # any figure experiment
    repro obs ira --nodes 20 --dump-trace      # print the JSONL trace
    repro obs top --port 8731                  # live serve dashboard
    repro obs bench-diff BENCH_serve.json      # benchmark regression gate

All tree construction goes through the builder registry
(:mod:`repro.engine.registry`); ``repro builders`` lists the names the
``build`` subcommand accepts.

Every run prints the metrics tables (counters / gauges / histograms with
p50/p90/max bars) and writes three artifacts under ``--out`` (default
``obs-out/``): ``trace.jsonl``, ``manifest.json``, ``metrics.json``.
``--no-write`` keeps the run print-only.  The same subcommand with the same
seed reproduces the same counters — that is the point.
"""

from __future__ import annotations

import argparse
from typing import Callable, Dict, List, Optional

from repro.obs.metrics import metric_key
from repro.obs.runtime import ObsSession, instrument
from repro.utils.ascii_chart import histogram_summary

__all__ = ["obs_main", "build_obs_parser"]

def fig_names() -> tuple:
    """Figure/extension experiments runnable under ``repro obs fig``.

    Derived from the main CLI's experiment registry
    (``repro.cli._COMMANDS``) so a newly registered experiment is
    automatically runnable instrumented — the two commands cannot drift
    (pinned by ``tests/test_obs_cli.py``).  Figures sort numerically
    (fig2 before fig10), extensions after.  The import is deferred
    because :mod:`repro.cli` imports this module lazily in turn.
    """
    import repro.cli as main_cli

    figs = sorted(
        (n for n in main_cli._COMMANDS if not n.startswith("ext-")),
        key=lambda n: (len(n), n),
    )
    exts = sorted(n for n in main_cli._COMMANDS if n.startswith("ext-"))
    return tuple(figs) + tuple(exts)


def _add_graph_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--nodes", type=int, default=30, help="network size (default 30)"
    )
    parser.add_argument(
        "--link-prob",
        type=float,
        default=0.5,
        help="G(n,p) link probability (default 0.5)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="topology/run seed (default 0)"
    )


def _add_output_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--out",
        type=str,
        default="obs-out",
        help="directory for trace.jsonl / manifest.json / metrics.json "
        "(default obs-out)",
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="print metrics only; write no artifacts",
    )
    parser.add_argument(
        "--dump-trace",
        action="store_true",
        help="print the JSONL trace to stdout",
    )


def build_obs_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro obs",
        description=(
            "Run a tree builder or experiment with the instrumentation layer "
            "enabled and report its internal statistics."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, help_text in (
        ("ira", "instrumented IRA build on a random graph"),
        ("aaml", "instrumented AAML build on a random graph"),
        ("mst", "instrumented MST build on a random graph"),
    ):
        p = sub.add_parser(name, help=help_text)
        _add_graph_options(p)
        _add_output_options(p)
        if name == "ira":
            p.add_argument(
                "--lc-divisor",
                type=float,
                default=2.0,
                help="LC = L_AAML / divisor (default 2.0)",
            )

    p = sub.add_parser(
        "build", help="instrumented build of any registered tree builder"
    )
    p.add_argument(
        "name", help="registry builder name (see `repro builders`)"
    )
    _add_graph_options(p)
    _add_output_options(p)
    p.add_argument(
        "--lc-divisor",
        type=float,
        default=2.0,
        help="LC = L_AAML / divisor for builders with an lc knob (default 2.0)",
    )
    p.add_argument(
        "--max-depth",
        type=int,
        default=None,
        help="depth bound for delay_bounded (default: the BFS tree's depth)",
    )

    p = sub.add_parser(
        "rounds", help="aggregation-round simulation over an IRA tree"
    )
    _add_graph_options(p)
    _add_output_options(p)
    p.add_argument(
        "--rounds", type=int, default=200, help="rounds to simulate (default 200)"
    )

    p = sub.add_parser(
        "churn", help="distributed-protocol churn on the DFL network"
    )
    _add_output_options(p)
    p.add_argument(
        "--rounds", type=int, default=20, help="churn rounds (default 20)"
    )
    p.add_argument("--seed", type=int, default=11, help="churn seed (default 11)")
    p.add_argument(
        "--centralized",
        action="store_true",
        help="also recompute the centralized IRA tree each round (slow)",
    )

    p = sub.add_parser(
        "faults",
        help="churn with a fault-injected control plane (drops/dups/delays)",
    )
    _add_output_options(p)
    p.add_argument(
        "--rounds", type=int, default=20, help="churn rounds (default 20)"
    )
    p.add_argument("--seed", type=int, default=11, help="churn seed (default 11)")
    p.add_argument(
        "--drop-rate",
        type=float,
        default=None,
        help="per-attempt control-message loss probability "
        "(default: derived from each link's PRR)",
    )
    p.add_argument(
        "--duplicate-rate",
        type=float,
        default=0.0,
        help="probability a delivery arrives twice (default 0)",
    )
    p.add_argument(
        "--delay-rate",
        type=float,
        default=0.0,
        help="probability a delivery is deferred to a later round (default 0)",
    )
    p.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="per-link retransmission budget (default 2)",
    )
    p.add_argument(
        "--crash-rate",
        type=float,
        default=0.0,
        help="per-node per-round crash probability (default 0)",
    )
    p.add_argument(
        "--cost-delta",
        type=float,
        default=0.25,
        help="per-round link-cost degradation (default 0.25 — much faster "
        "than the paper's 1e-3, so the protocol actually re-parents and "
        "the fault machinery fires within a short run)",
    )
    p.add_argument(
        "--centralized",
        action="store_true",
        help="also recompute the centralized IRA tree each round (slow)",
    )

    p = sub.add_parser("fig", help="any figure/extension experiment")
    p.add_argument("name", choices=fig_names(), help="experiment to run")
    p.add_argument("--trials", type=int, default=None, help="trial count")
    p.add_argument("--rounds", type=int, default=None, help="round count")
    p.add_argument(
        "--jobs", type=int, default=None, help="worker processes for sweeps"
    )
    _add_output_options(p)

    p = sub.add_parser(
        "top", help="live terminal dashboard over a running tree server"
    )
    p.add_argument("--host", default="127.0.0.1", help="server address")
    p.add_argument(
        "--port", type=int, default=8731, help="server port (default 8731)"
    )
    p.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="refresh interval in seconds (default 1.0)",
    )
    p.add_argument(
        "--once",
        action="store_true",
        help="render a single frame and exit (no screen clearing)",
    )

    p = sub.add_parser(
        "bench-diff",
        help="regression sentinel over a BENCH_*.json trajectory file",
    )
    p.add_argument("path", help="trajectory file (e.g. BENCH_serve.json)")
    p.add_argument(
        "--window",
        type=int,
        default=5,
        help="baseline = median of up to this many preceding runs (default 5)",
    )
    p.add_argument(
        "--threshold",
        type=float,
        default=0.5,
        help="relative bad-direction move that counts as a regression "
        "(default 0.5 = 50%%; loose on purpose for cross-machine noise)",
    )
    p.add_argument(
        "--metrics",
        default=None,
        help="comma-separated metric names to watch (prefix with '-' for "
        "lower-is-better), overriding the format's defaults",
    )

    return parser


def _positive(parser: argparse.ArgumentParser, args: argparse.Namespace) -> None:
    for attr in ("nodes", "rounds", "trials"):
        value = getattr(args, attr, None)
        if value is not None and value <= 0:
            parser.error(f"--{attr} must be positive")
    if getattr(args, "lc_divisor", 1.0) <= 0:
        parser.error("--lc-divisor must be positive")
    max_depth = getattr(args, "max_depth", None)
    if max_depth is not None and max_depth < 1:
        parser.error("--max-depth must be >= 1")
    for attr in ("drop_rate", "duplicate_rate", "delay_rate", "crash_rate"):
        rate = getattr(args, attr, None)
        if rate is not None and not 0.0 <= rate <= 1.0:
            parser.error(f"--{attr.replace('_', '-')} must be in [0, 1]")
    retries = getattr(args, "max_retries", None)
    if retries is not None and retries < 0:
        parser.error("--max-retries must be >= 0")
    if getattr(args, "cost_delta", 1.0) <= 0:
        parser.error("--cost-delta must be positive")
    prob = getattr(args, "link_prob", 0.5)
    if not 0.0 < prob <= 1.0:
        parser.error("--link-prob must be in (0, 1]")


def _run_builder(args: argparse.Namespace) -> Dict[str, object]:
    from repro.engine import build_tree
    from repro.network.topology import random_graph

    net = random_graph(args.nodes, args.link_prob, seed=args.seed)
    if args.command == "mst":
        result = build_tree("mst", net)
        return {"cost": result.cost, "reliability": result.reliability}
    aaml = build_tree("aaml", net)
    if args.command == "aaml":
        return {"cost": aaml.cost, "lifetime": aaml.lifetime}
    lc = aaml.lifetime / args.lc_divisor
    result = build_tree("ira", net, lc=lc)
    return {
        "cost": result.cost,
        "lc": lc,
        "iterations": result.meta["iterations"],
        "lp_solves": result.meta["lp_solves"],
        "lifetime_satisfied": result.meta["lifetime_satisfied"],
    }


def _run_named_build(args: argparse.Namespace) -> Dict[str, object]:
    from repro.engine import UnknownBuilderError, build_tree, get_builder
    from repro.network.topology import random_graph

    try:
        builder = get_builder(args.name)
    except UnknownBuilderError as exc:
        raise SystemExit(f"repro obs build: {exc.args[0]}")
    net = random_graph(args.nodes, args.link_prob, seed=args.seed)
    config: Dict[str, object] = {}
    if "lc" in builder.knobs:
        aaml = build_tree("aaml", net)
        config["lc"] = aaml.lifetime / args.lc_divisor
    if "max_depth" in builder.knobs:
        if args.max_depth is not None:
            config["max_depth"] = args.max_depth
        else:
            bfs = build_tree("bfs", net).tree
            config["max_depth"] = max(bfs.depth(v) for v in range(bfs.n))
    if "seed" in builder.knobs:
        config["seed"] = args.seed
    result = build_tree(args.name, net, **config)
    summary: Dict[str, object] = {
        "builder": args.name,
        "cost": result.cost,
        "reliability": result.reliability,
    }
    for key, value in result.meta.items():
        if isinstance(value, (bool, int, float, str)):
            summary[key] = value
    return summary


def _run_rounds(args: argparse.Namespace) -> Dict[str, object]:
    from repro.engine import build_tree
    from repro.network.topology import random_graph
    from repro.simulation.rounds import AggregationSimulator

    net = random_graph(args.nodes, args.link_prob, seed=args.seed)
    aaml = build_tree("aaml", net)
    tree = build_tree("ira", net, lc=aaml.lifetime / 2.0).tree
    sim = AggregationSimulator(tree, seed=args.seed)
    reliability = sim.estimate_reliability(args.rounds)
    return {"empirical_reliability": reliability, "closed_form": tree.reliability()}


def _run_churn(args: argparse.Namespace) -> Dict[str, object]:
    from repro.distributed.simulator import ChurnSimulation
    from repro.engine import build_tree
    from repro.experiments.fig7_dfl import AAML_PRR_FILTER
    from repro.network.dfl import dfl_network

    net = dfl_network()
    aaml = build_tree("aaml", net.filtered(AAML_PRR_FILTER))
    lc = aaml.lifetime / 1.5
    initial = build_tree("ira", net, lc=lc)
    sim = ChurnSimulation(
        net,
        initial.tree,
        lc,
        recompute_centralized=args.centralized,
        seed=args.seed,
    )
    records = sim.run(args.rounds)
    return {
        "rounds": len(records),
        "updates": records[-1].cumulative_updates,
        "messages": records[-1].cumulative_messages,
    }


def _run_faults(args: argparse.Namespace) -> Dict[str, object]:
    from repro.distributed.simulator import ChurnSimulation
    from repro.engine import build_tree
    from repro.experiments.fig7_dfl import AAML_PRR_FILTER
    from repro.faults import FaultPlan
    from repro.network.dfl import dfl_network
    from repro.utils.rng import stable_hash_seed

    net = dfl_network()
    aaml = build_tree("aaml", net.filtered(AAML_PRR_FILTER))
    lc = aaml.lifetime / 1.5
    initial = build_tree("ira", net, lc=lc)
    plan = FaultPlan(
        drop_rate=args.drop_rate,
        duplicate_rate=args.duplicate_rate,
        delay_rate=args.delay_rate,
        max_retries=args.max_retries,
        crash_rate=args.crash_rate,
        seed=stable_hash_seed("obs_faults", args.seed),
    )
    sim = ChurnSimulation(
        net,
        initial.tree,
        lc,
        cost_delta=args.cost_delta,
        recompute_centralized=args.centralized,
        fault_plan=plan,
        seed=args.seed,
    )
    records = sim.run(args.rounds)
    summary: Dict[str, object] = {
        "rounds": len(records),
        "updates": records[-1].cumulative_updates,
        "messages": records[-1].cumulative_messages + sim.settle_messages,
        "settle_messages": sim.settle_messages,
    }
    summary.update(sim.protocol.fault_stats.to_dict())
    return summary


def _run_fig(args: argparse.Namespace) -> Dict[str, object]:
    import repro.cli as main_cli

    result = main_cli._COMMANDS[args.name](args)
    print(result.render())
    print()
    return {"experiment": args.name, "result_class": type(result).__name__}


def _params_of(args: argparse.Namespace) -> Dict[str, object]:
    skip = {"command", "out", "no_write", "dump_trace"}
    return {
        k: v for k, v in sorted(vars(args).items()) if k not in skip and v is not None
    }


def _report(session: ObsSession, args: argparse.Namespace) -> None:
    print(session.registry.render())
    for hist in session.registry.histograms():
        if hist.count >= 2:
            print()
            print(
                histogram_summary(
                    hist.values,
                    title=metric_key(hist.name, dict(hist.labels)),
                )
            )
    if args.dump_trace:
        print()
        print(session.tracer.to_jsonl(), end="")
    if not args.no_write:
        paths = session.write(args.out)
        print()
        print(
            "[wrote "
            + ", ".join(str(paths[k]) for k in ("trace", "manifest", "metrics"))
            + "]"
        )


_RUNNERS: Dict[str, Callable[[argparse.Namespace], Dict[str, object]]] = {
    "ira": _run_builder,
    "aaml": _run_builder,
    "mst": _run_builder,
    "build": _run_named_build,
    "rounds": _run_rounds,
    "churn": _run_churn,
    "faults": _run_faults,
    "fig": _run_fig,
}


def _run_top(args: argparse.Namespace) -> int:
    from repro.obs.top import run_top

    return run_top(
        args.host,
        args.port,
        interval_s=args.interval,
        iterations=1 if args.once else None,
    )


def _run_bench_diff(args: argparse.Namespace) -> int:
    from repro.obs.benchdiff import MetricSpec, diff_trajectory_file

    metrics = None
    if args.metrics:
        metrics = tuple(
            MetricSpec(name.lstrip("-"), higher_is_better=not name.startswith("-"))
            for name in args.metrics.split(",")
            if name.strip("-")
        )
    try:
        diff = diff_trajectory_file(
            args.path,
            metrics=metrics,
            window=args.window,
            threshold=args.threshold,
        )
    except (OSError, ValueError) as exc:
        print(f"repro obs bench-diff: {exc}")
        return 2
    print(diff.render())
    return 1 if diff.regressed else 0


def obs_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro obs ...``; returns the process exit code."""
    parser = build_obs_parser()
    args = parser.parse_args(argv)

    # The tooling subcommands observe *other* runs — no instrumentation
    # session of their own, no metrics report.
    if args.command == "top":
        if args.interval <= 0:
            parser.error("--interval must be positive")
        return _run_top(args)
    if args.command == "bench-diff":
        if args.window < 1:
            parser.error("--window must be >= 1")
        if args.threshold <= 0:
            parser.error("--threshold must be positive")
        return _run_bench_diff(args)

    _positive(parser, args)

    seed = getattr(args, "seed", None)
    with instrument(seed=seed, params=_params_of(args)) as session:
        summary = _RUNNERS[args.command](args)

    headline = ", ".join(f"{k}={v}" for k, v in summary.items())
    print(f"[obs {args.command}] {headline}")
    print()
    _report(session, args)
    return 0
