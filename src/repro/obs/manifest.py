"""Run manifests: everything needed to reproduce (and diff) a run.

A manifest pins the inputs a result depends on — seed, parameter dict, the
code revision, and the tool versions — so two experiment artifacts can be
compared knowing whether they came from the same world.  The experiment
exporter (:mod:`repro.experiments.io`) embeds one in every saved document;
the ``repro obs`` CLI writes one next to each trace.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, Optional, Union

__all__ = ["RunManifest", "collect_manifest", "git_revision"]

MANIFEST_FORMAT = "repro-run-manifest"


def git_revision() -> Optional[str]:
    """Short git revision of the working tree this package runs from.

    ``None`` when the package is not inside a git checkout (installed
    wheels, stripped containers) or git is unavailable.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def _tool_versions() -> Dict[str, str]:
    import numpy
    import scipy

    from repro import __version__

    versions = {
        "repro": __version__,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
    }
    try:
        import networkx

        versions["networkx"] = networkx.__version__
    except ImportError:  # optional at runtime for most of the library
        pass
    return versions


@dataclass(frozen=True)
class RunManifest:
    """Reproducibility record for one run.

    Attributes:
        created_utc: ISO-8601 creation time (UTC).
        seed: The run's root seed, if it had one.
        params: The parameter dict that defined the run.
        command: The invoking command line (``sys.argv`` or caller-supplied).
        git_revision: Short revision of the source checkout, if known.
        versions: Tool versions (repro, python, numpy, scipy, ...).
        platform: ``platform.platform()`` of the host.
    """

    created_utc: str
    seed: Optional[int] = None
    params: Dict[str, Any] = field(default_factory=dict)
    command: Optional[str] = None
    git_revision: Optional[str] = None
    versions: Dict[str, str] = field(default_factory=dict)
    platform: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": MANIFEST_FORMAT,
            "created_utc": self.created_utc,
            "seed": self.seed,
            "params": dict(self.params),
            "command": self.command,
            "git_revision": self.git_revision,
            "versions": dict(self.versions),
            "platform": self.platform,
        }

    def write(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))

    @staticmethod
    def load(path: Union[str, Path]) -> "RunManifest":
        doc = json.loads(Path(path).read_text())
        if doc.get("format") != MANIFEST_FORMAT:
            raise ValueError(
                f"not a {MANIFEST_FORMAT} document (format={doc.get('format')!r})"
            )
        return RunManifest(
            created_utc=doc["created_utc"],
            seed=doc.get("seed"),
            params=doc.get("params") or {},
            command=doc.get("command"),
            git_revision=doc.get("git_revision"),
            versions=doc.get("versions") or {},
            platform=doc.get("platform") or "",
        )


def collect_manifest(
    *,
    seed: Optional[int] = None,
    params: Optional[Dict[str, Any]] = None,
    command: Optional[str] = None,
) -> RunManifest:
    """Build a :class:`RunManifest` for the current process/environment."""
    return RunManifest(
        created_utc=datetime.now(timezone.utc).isoformat(),
        seed=seed,
        params=dict(params or {}),
        command=command if command is not None else " ".join(sys.argv),
        git_revision=git_revision(),
        versions=_tool_versions(),
        platform=platform.platform(),
    )
