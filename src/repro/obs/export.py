"""Metrics export: Prometheus text, JSON snapshots, and time-series rings.

PR 2's registry was built for one-shot experiment runs: record, finish,
snapshot.  A long-running server needs the other direction — *live*
export a scraper or dashboard can poll.  This module renders a
:class:`~repro.obs.metrics.MetricsRegistry` in two wire formats:

* :func:`render_prometheus` — the Prometheus text exposition format
  (``# TYPE`` headers, sanitized names, label sets, quantile series for
  histograms), so any standard scraper ingests the server's metrics;
* :func:`render_json` — a JSON document with full histogram summaries
  (count/sum/min/p50/p90/p99/max), the shape the ``metrics`` TCP op and
  ``repro obs top`` consume.

:func:`parse_prometheus` is the minimal inverse (sample lines back into
``{name{labels}: value}``); CI's export smoke uses it to assert the text
actually parses, and tests use it to round-trip.

:class:`TimeSeriesRing` is the bounded history primitive behind the serve
layer's snapshot loop (:mod:`repro.serve.telemetry`): a deque of
``(t, value)`` samples with O(1) append and a fixed memory ceiling, so a
server that runs for weeks keeps minutes of queryable history instead of
an unbounded list.
"""

from __future__ import annotations

import re
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "TimeSeriesRing",
    "escape_label_value",
    "parse_prometheus",
    "parse_prometheus_labels",
    "prometheus_name",
    "render_json",
    "render_prometheus",
    "unescape_label_value",
]

#: Histogram quantiles exported as Prometheus summary series.
_QUANTILES = ((0.5, "p50"), (0.9, "p90"), (0.99, "p99"))

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
#: Label text is runs of unquoted chars plus escape-aware quoted strings,
#: so values containing ``}`` or ``\"`` do not truncate the match.
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r'(?:\{(?P<labels>(?:[^"{}]|"(?:[^"\\]|\\.)*")*)\})?'
    r"\s+(?P<value>[^\s]+)$"
)
_LABEL_PAIR = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)
_UNESCAPE = re.compile(r"\\(.)")


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format: ``\\``, ``"``, newline.

    Escaping the newline is what keeps the text format line-parseable —
    a raw ``\\n`` inside a label would otherwise split one sample across
    two unparseable lines.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def unescape_label_value(value: str) -> str:
    """Inverse of :func:`escape_label_value` (unknown escapes pass through)."""

    def replace(match: "re.Match[str]") -> str:
        char = match.group(1)
        return "\n" if char == "n" else char

    return _UNESCAPE.sub(replace, value)


def prometheus_name(name: str, prefix: str = "repro") -> str:
    """Sanitize a dotted metric name into a Prometheus metric name.

    ``serve.build_seconds`` → ``repro_serve_build_seconds``: dots become
    underscores, every other illegal character is dropped, and the repo
    prefix namespaces the family.
    """
    flat = _NAME_OK.sub("_", name.replace(".", "_"))
    return f"{prefix}_{flat}" if prefix else flat


def _label_str(labels: Tuple[Tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{escape_label_value(v)}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _fmt(value: float) -> str:
    """Prometheus sample value: repr keeps floats exact, ints stay ints."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry, prefix: str = "repro") -> str:
    """The registry in Prometheus text exposition format.

    Counters export as ``counter``, gauges as ``gauge``, histograms as
    ``summary`` families — ``{quantile="0.5|0.9|0.99"}`` series plus the
    conventional ``_count`` and ``_sum`` children.  Families are sorted by
    name so successive scrapes diff cleanly.
    """
    lines: List[str] = []
    families: Dict[str, List[str]] = {}

    def family(name: str, kind: str) -> List[str]:
        if name not in families:
            families[name] = [f"# TYPE {name} {kind}"]
        return families[name]

    for counter in registry.counters():
        name = prometheus_name(counter.name, prefix)
        family(name, "counter").append(
            f"{name}{_label_str(counter.labels)} {_fmt(counter.value)}"
        )
    for gauge in registry.gauges():
        name = prometheus_name(gauge.name, prefix)
        family(name, "gauge").append(
            f"{name}{_label_str(gauge.labels)} {_fmt(gauge.value)}"
        )
    for hist in registry.histograms():
        name = prometheus_name(hist.name, prefix)
        rows = family(name, "summary")
        for q, _ in _QUANTILES:
            value = hist.percentile(100 * q) if hist.count else 0.0
            quantile_label = f'quantile="{q}"'
            rows.append(
                f"{name}{_label_str(hist.labels, quantile_label)} {_fmt(value)}"
            )
        rows.append(f"{name}_count{_label_str(hist.labels)} {hist.count}")
        rows.append(f"{name}_sum{_label_str(hist.labels)} {_fmt(hist.sum)}")

    for name in sorted(families):
        lines.extend(families[name])
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus(text: str) -> Dict[str, float]:
    """Parse exposition text back into ``{name{labels}: value}``.

    Comment/``# TYPE`` lines are skipped; any other non-empty line that is
    not a valid sample raises ``ValueError`` — this is the "the export
    actually parses" assertion CI's smoke runs.
    """
    samples: Dict[str, float] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"line {lineno} is not a Prometheus sample: {raw!r}")
        labels = match.group("labels")
        key = match.group("name")
        if labels:
            pairs = _LABEL_PAIR.findall(labels)
            rebuilt = ",".join(f'{k}="{v}"' for k, v in pairs)
            if rebuilt != labels:
                raise ValueError(f"line {lineno} has malformed labels: {raw!r}")
            key += "{" + labels + "}"
        samples[key] = float(match.group("value"))
    return samples


def parse_prometheus_labels(label_text: str) -> Dict[str, str]:
    """Label text (as it appears between ``{}``) → unescaped key/value map."""
    return {
        key: unescape_label_value(value)
        for key, value in _LABEL_PAIR.findall(label_text)
    }


def render_json(registry: MetricsRegistry) -> Dict[str, Any]:
    """JSON-ready snapshot: the registry dump plus per-histogram summaries.

    Identical to :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` —
    re-exported here so both exporter formats are importable from one
    module and the TCP ``metrics`` op has a single provider.
    """
    return registry.snapshot()


class TimeSeriesRing:
    """Bounded ``(t, value)`` history for one live metric.

    Appending beyond *capacity* drops the oldest sample — the server keeps
    a sliding window of recent history, never an unbounded log.
    """

    __slots__ = ("name", "_samples")

    def __init__(self, name: str, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.name = name
        self._samples: Deque[Tuple[float, float]] = deque(maxlen=capacity)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def capacity(self) -> int:
        return self._samples.maxlen or 0

    def sample(self, t: float, value: float) -> None:
        """Append one sample (monotonic *t*, from the sampler's clock)."""
        self._samples.append((float(t), float(value)))

    def latest(self) -> Optional[Tuple[float, float]]:
        """Most recent ``(t, value)``, or ``None`` when empty."""
        return self._samples[-1] if self._samples else None

    def values(self) -> List[float]:
        """The buffered values, oldest first."""
        return [v for _, v in self._samples]

    def series(self) -> List[Tuple[float, float]]:
        """The buffered ``(t, value)`` pairs, oldest first."""
        return list(self._samples)

    def delta_rate(self) -> float:
        """Per-second rate of change across the window (0 when degenerate).

        For a ring fed a monotonic counter this is the average event rate
        over the buffered window — e.g. requests/sec from ``requests``.
        """
        if len(self._samples) < 2:
            return 0.0
        (t0, v0), (t1, v1) = self._samples[0], self._samples[-1]
        if t1 <= t0:
            return 0.0
        return (v1 - v0) / (t1 - t0)

    def to_doc(self) -> Dict[str, Any]:
        """JSON form: ``{"name", "capacity", "samples": [[t, v], ...]}``."""
        return {
            "name": self.name,
            "capacity": self.capacity,
            "samples": [[t, v] for t, v in self._samples],
        }
