"""Process-local metrics: counters, gauges, and histograms with labels.

The registry is the numeric half of the instrumentation layer (the tracer in
:mod:`repro.obs.trace` is the structured half).  Algorithms report *what they
did* — LP solves, separation cuts, protocol messages — as named metrics;
experiments snapshot the registry and attach it to their saved artifacts so
the paper's internal-statistics claims (IRA's polynomial iteration count, the
protocol's O(n) message complexity) are measurable, not just asserted.

Hot paths guard every report behind ``OBS.enabled`` (see
:mod:`repro.obs.runtime`), so with the default :class:`NullRegistry` backend
the per-call cost is one attribute load and a branch.  The null metric
objects below are belt-and-braces for unguarded call sites: every method is
a no-op.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "metric_key",
]

LabelItems = Tuple[Tuple[str, str], ...]


def metric_key(name: str, labels: Dict[str, Any]) -> str:
    """Canonical flat name, Prometheus-style: ``name{k=v,...}``.

    Labels are sorted so the key is independent of call-site ordering; a
    label-free metric is just its name.
    """
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count (events, messages, iterations)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease ({amount})")
        self.value += amount


class Gauge:
    """A value that can move both ways (active set sizes, cumulative totals)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


class Histogram:
    """Distribution of observations (solve times, per-round messages).

    Raw observations are kept (runs are experiment-sized, not server-sized),
    so any percentile can be computed exactly after the fact.
    """

    __slots__ = ("name", "labels", "values")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def sum(self) -> float:
        return float(sum(self.values))

    def percentile(self, p: float) -> float:
        """Exact percentile by the nearest-rank method (``0 <= p <= 100``)."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self.values:
            raise ValueError(f"histogram {self.name!r} has no observations")
        ordered = sorted(self.values)
        rank = max(0, min(len(ordered) - 1, round(p / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def summary(self) -> Dict[str, float]:
        """count / sum / min / p50 / p90 / p99 / max — the scannable digest.

        ``p99`` is the tail-latency signal serving SLOs are written
        against; p50/p90 alone hide the stragglers that break them.
        """
        if not self.values:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": self.sum,
            "min": min(self.values),
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": max(self.values),
        }


class MetricsRegistry:
    """Process-local registry of labelled counters, gauges, and histograms.

    Metrics are created on first touch and identified by (name, labels);
    repeated calls with the same identity return the same object, so hot
    paths may cache the handle or re-resolve it each time.
    """

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelItems], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelItems], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelItems], Histogram] = {}

    @staticmethod
    def _label_items(labels: Dict[str, Any]) -> LabelItems:
        return tuple(sorted((k, str(v)) for k, v in labels.items()))

    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, self._label_items(labels))
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter(name, key[1])
        return metric

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, self._label_items(labels))
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge(name, key[1])
        return metric

    def histogram(self, name: str, **labels: Any) -> Histogram:
        key = (name, self._label_items(labels))
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram(name, key[1])
        return metric

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------
    def counters(self) -> Iterator[Counter]:
        return iter(self._counters.values())

    def gauges(self) -> Iterator[Gauge]:
        return iter(self._gauges.values())

    def histograms(self) -> Iterator[Histogram]:
        return iter(self._histograms.values())

    def counter_value(self, name: str, **labels: Any) -> float:
        """Current value of a counter, 0 if it was never touched."""
        key = (name, self._label_items(labels))
        metric = self._counters.get(key)
        return metric.value if metric is not None else 0

    def total(self, name: str) -> float:
        """Sum of a counter across all of its label combinations."""
        return sum(c.value for c in self._counters.values() if c.name == name)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """JSON-compatible dump: flat keys -> values / histogram summaries."""

        def flat(metric) -> str:
            return metric_key(metric.name, dict(metric.labels))

        return {
            "counters": {flat(c): c.value for c in self._counters.values()},
            "gauges": {flat(g): g.value for g in self._gauges.values()},
            "histograms": {
                flat(h): h.summary() for h in self._histograms.values()
            },
        }

    def render(self) -> str:
        """Aligned tables of everything recorded (counters first)."""
        from repro.utils.tables import format_table

        sections: List[str] = []
        snap = self.snapshot()
        if snap["counters"]:
            rows = sorted(snap["counters"].items())
            sections.append(
                format_table(["counter", "value"], rows, title="Counters")
            )
        if snap["gauges"]:
            rows = sorted(snap["gauges"].items())
            sections.append(format_table(["gauge", "value"], rows, title="Gauges"))
        if snap["histograms"]:
            rows = [
                [
                    key,
                    s.get("count", 0),
                    s.get("p50", float("nan")),
                    s.get("p90", float("nan")),
                    s.get("p99", float("nan")),
                    s.get("max", float("nan")),
                ]
                for key, s in sorted(snap["histograms"].items())
            ]
            sections.append(
                format_table(
                    ["histogram", "count", "p50", "p90", "p99", "max"],
                    rows,
                    title="Histograms",
                )
            )
        if not sections:
            return "(no metrics recorded)"
        return "\n\n".join(sections)


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1) -> None:  # noqa: ARG002 - deliberate no-op
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """The disabled backend: hands out shared no-op metrics, records nothing.

    Hot paths normally never reach it (they check ``OBS.enabled`` first);
    unguarded code paying one dict-free method call is the worst case.
    """

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null")

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._null_counter

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._null_gauge

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._null_histogram


#: Shared null backend installed while instrumentation is off.
NULL_REGISTRY = NullRegistry()
