"""repro.obs — the unified instrumentation layer.

Three cooperating pieces, all process-local and dependency-free:

* **Metrics** (:mod:`repro.obs.metrics`) — a registry of labelled counters,
  gauges, and histograms that the algorithm layers report into: IRA
  iterations and dropped constraints, LP solves and separation cuts,
  local-search moves, protocol messages/bytes/rounds, simulator deliveries.
* **Traces** (:mod:`repro.obs.trace`) — JSONL events/spans with monotonic
  timestamps and request-scoped span contexts (:mod:`repro.obs.spanctx`),
  for "what happened in what order and how long did it take" — per
  request, even across process boundaries.
* **Manifests** (:mod:`repro.obs.manifest`) — seed, params, git revision,
  and tool versions, so every run is reproducible and diffable.
* **Export** (:mod:`repro.obs.export`) — Prometheus-text / JSON renderers
  over the registry plus bounded time-series rings, feeding the serve
  layer's ``metrics`` op and the ``repro obs top`` dashboard.
* **SLOs** (:mod:`repro.obs.slo`) — declared latency/error budgets with
  burn-rate accounting, surfaced by the server's ``stats`` op.
* **Bench sentinel** (:mod:`repro.obs.benchdiff`) — the ``repro obs
  bench-diff`` regression gate over ``BENCH_*.json`` trajectories.

Everything hangs off the :data:`OBS` switchboard (:mod:`repro.obs.runtime`).
Instrumentation is **off by default**: hot paths guard each report behind
``if OBS.enabled``, so the disabled cost is one attribute load and a branch.
Enable it with :func:`instrument`::

    from repro.obs import instrument

    with instrument(seed=1, params={"n": 50}) as session:
        result = build_ira_tree(net, lc)
    print(session.registry.render())          # metrics tables
    session.tracer.write_jsonl("trace.jsonl") # structured trace
    session.manifest.write("manifest.json")   # reproducibility record

or from the command line: ``repro obs ira --nodes 50 --seed 1``
(see :mod:`repro.obs.cli` and ``docs/observability.md``).
"""

from repro.obs.export import (
    TimeSeriesRing,
    parse_prometheus,
    prometheus_name,
    render_json,
    render_prometheus,
)
from repro.obs.manifest import RunManifest, collect_manifest, git_revision
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    metric_key,
)
from repro.obs.runtime import OBS, ObsSession, instrument, is_enabled
from repro.obs.slo import SLO, SLOTracker, SLOWindow
from repro.obs.spanctx import SpanContext, activate_span, current_span
from repro.obs.stagetimer import StageTimer
from repro.obs.trace import NULL_TRACER, NullTracer, TraceEvent, Tracer, read_jsonl

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "OBS",
    "ObsSession",
    "RunManifest",
    "SLO",
    "SLOTracker",
    "SLOWindow",
    "SpanContext",
    "StageTimer",
    "TimeSeriesRing",
    "TraceEvent",
    "Tracer",
    "activate_span",
    "collect_manifest",
    "current_span",
    "git_revision",
    "instrument",
    "is_enabled",
    "metric_key",
    "parse_prometheus",
    "prometheus_name",
    "read_jsonl",
    "render_json",
    "render_prometheus",
]
