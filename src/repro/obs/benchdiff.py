"""``BENCH_*.json`` regression sentinel: compare the newest run to history.

The ROADMAP's benchmark trajectories (``BENCH_serve.json`` today; any
``{"format": "repro-bench-*", "runs": [...]}`` document tomorrow) are
append-only logs of measured performance across PRs.  Until now they were
written but never read; this module is the reader — and the ratchet.

:func:`diff_trajectory` compares the newest run's metrics against a
baseline window (the median of up to *window* immediately preceding
runs; medians shrug off one noisy CI run where a mean would not) and
flags any metric that moved in its bad direction by more than
*threshold* (a relative fraction — ``0.5`` means "flag a >50% drop of a
higher-is-better metric").  ``repro obs bench-diff`` wraps it as a CLI
that exits nonzero on regression, which is what CI gates on.

Wall-clock benchmarks are noisy across machines, so the defaults are
deliberately loose (50%): the sentinel exists to catch the order-of-
magnitude cliffs a bad PR introduces — an accidentally disabled cache, a
quadratic slip — not 5% jitter.  Tighten ``--threshold`` when comparing
runs from one machine.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "BenchDiff",
    "MetricDiff",
    "MetricSpec",
    "DEFAULT_METRICS",
    "diff_trajectory",
    "diff_trajectory_file",
    "load_trajectory",
]


@dataclass(frozen=True)
class MetricSpec:
    """One trajectory metric the sentinel watches.

    Attributes:
        name: Key into each run document (``"warm_rps"``, ``"hit_rate"``).
        higher_is_better: Direction of goodness; a drop of a
            higher-is-better metric is a regression, and vice versa.
    """

    name: str
    higher_is_better: bool = True


#: What to watch per trajectory format.  ``divergent`` is deliberately
#: absent: correctness is asserted exactly (see the CI serve smoke), not
#: thresholded.
DEFAULT_METRICS: Dict[str, Tuple[MetricSpec, ...]] = {
    "repro-bench-serve": (
        MetricSpec("warm_rps", higher_is_better=True),
        MetricSpec("cold_rps", higher_is_better=True),
        MetricSpec("hit_rate", higher_is_better=True),
    ),
    "repro-bench-core": (
        MetricSpec("round_sim_speedup", higher_is_better=True),
        MetricSpec("local_search_speedup", higher_is_better=True),
    ),
    "repro-bench-portfolio": (
        MetricSpec("speedup", higher_is_better=True),
        MetricSpec("serial_builds_per_s", higher_is_better=True),
    ),
}


@dataclass(frozen=True)
class MetricDiff:
    """One metric's newest-vs-baseline comparison.

    ``change`` is the signed relative move in the *good* direction:
    +0.10 means 10% better, −0.60 means 60% worse.  ``regressed`` is
    ``change < -threshold``.
    """

    name: str
    newest: float
    baseline: float
    change: float
    regressed: bool


@dataclass(frozen=True)
class BenchDiff:
    """The sentinel's verdict for one trajectory file."""

    path: str
    format: str
    n_runs: int
    window: int
    threshold: float
    metrics: Tuple[MetricDiff, ...]
    skipped_reason: Optional[str] = None

    @property
    def regressed(self) -> bool:
        return any(m.regressed for m in self.metrics)

    def render(self) -> str:
        """Readable verdict block (one line per metric)."""
        header = f"bench-diff {self.path} [{self.format}]"
        if self.skipped_reason is not None:
            return f"{header}: SKIPPED ({self.skipped_reason})"
        lines = [
            f"{header}: newest of {self.n_runs} runs vs median of "
            f"previous {self.window} (threshold {self.threshold:.0%})"
        ]
        for m in self.metrics:
            verdict = "REGRESSED" if m.regressed else "ok"
            lines.append(
                f"  {m.name:<12} {m.newest:>12.4g}  baseline {m.baseline:>12.4g}"
                f"  change {m.change:+8.1%}  {verdict}"
            )
        return "\n".join(lines)


def load_trajectory(path: Union[str, Path]) -> Dict[str, Any]:
    """Load and structurally validate one ``BENCH_*.json`` document.

    Raises ``ValueError`` on anything that is not a
    ``{"format": str, "runs": [dict, ...]}`` trajectory.
    """
    target = Path(path)
    try:
        doc = json.loads(target.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"{target}: not valid JSON ({exc})") from exc
    if not isinstance(doc, dict) or not isinstance(doc.get("format"), str):
        raise ValueError(f"{target}: missing a 'format' string")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not all(
        isinstance(run, dict) for run in runs
    ):
        raise ValueError(f"{target}: 'runs' must be a list of run documents")
    return doc


def _metric_values(
    runs: Sequence[Dict[str, Any]], name: str
) -> List[float]:
    values = []
    for run in runs:
        value = run.get(name)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(
                f"run is missing numeric metric {name!r}: has {sorted(run)}"
            )
        values.append(float(value))
    return values


def diff_trajectory(
    doc: Dict[str, Any],
    *,
    metrics: Optional[Sequence[MetricSpec]] = None,
    window: int = 5,
    threshold: float = 0.5,
    path: str = "<trajectory>",
) -> BenchDiff:
    """Compare *doc*'s newest run against the median of the prior window.

    With fewer than two runs (or an unknown format and no explicit
    *metrics*) the diff is *skipped*, not failed: a brand-new trajectory
    file has no history to regress against.
    """
    if not 0 < threshold:
        raise ValueError(f"threshold must be positive, got {threshold}")
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    fmt = str(doc.get("format"))
    runs: List[Dict[str, Any]] = list(doc.get("runs", []))

    def skipped(reason: str) -> BenchDiff:
        return BenchDiff(
            path=path,
            format=fmt,
            n_runs=len(runs),
            window=window,
            threshold=threshold,
            metrics=(),
            skipped_reason=reason,
        )

    if metrics is None:
        specs = DEFAULT_METRICS.get(fmt)
        if specs is None:
            return skipped(
                f"no default metrics for format {fmt!r}; pass --metrics"
            )
    else:
        specs = tuple(metrics)
    if len(runs) < 2:
        return skipped(f"needs >= 2 runs for a baseline, has {len(runs)}")

    newest = runs[-1]
    history = runs[-1 - window : -1]
    diffs: List[MetricDiff] = []
    for spec in specs:
        baseline = statistics.median(_metric_values(history, spec.name))
        value = _metric_values([newest], spec.name)[0]
        if baseline == 0:
            # A zero baseline can't express relative change; any nonzero
            # move in the bad direction counts as a full-size move.
            relative = 0.0 if value == 0 else (1.0 if value > 0 else -1.0)
        else:
            relative = (value - baseline) / abs(baseline)
        change = relative if spec.higher_is_better else -relative
        diffs.append(
            MetricDiff(
                name=spec.name,
                newest=value,
                baseline=baseline,
                change=change,
                regressed=change < -threshold,
            )
        )
    return BenchDiff(
        path=path,
        format=fmt,
        n_runs=len(runs),
        window=min(window, len(history)),
        threshold=threshold,
        metrics=tuple(diffs),
    )


def diff_trajectory_file(
    path: Union[str, Path],
    *,
    metrics: Optional[Sequence[MetricSpec]] = None,
    window: int = 5,
    threshold: float = 0.5,
) -> BenchDiff:
    """Load *path* and :func:`diff_trajectory` it."""
    doc = load_trajectory(path)
    return diff_trajectory(
        doc,
        metrics=metrics,
        window=window,
        threshold=threshold,
        path=str(path),
    )
