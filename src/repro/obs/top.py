"""``repro obs top`` — a live terminal dashboard over a running tree server.

A deliberately small, stdlib-only client: one persistent TCP connection
speaking the server's JSON-lines protocol (:mod:`repro.serve.protocol`),
polling the ``stats`` and ``metrics`` ops every ``--interval`` seconds and
redrawing one screen of scheduler health — throughput, hit rate, queue
depth, per-stage latency sparklines from the telemetry rings, and SLO
budget burn.  ``--once`` renders a single frame without clearing the
screen (what CI and tests use).

The dashboard is read-only and server-agnostic about instrumentation:
against a ``--no-obs`` server the registry section just reports itself
disabled while the stats/rings keep rendering.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, List, Optional

__all__ = ["ServeClient", "render_dashboard", "run_top"]

#: Eight-level block characters for the ring sparklines.
_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


class ServeClient:
    """Minimal synchronous JSON-lines client for one server connection."""

    def __init__(self, host: str, port: int, timeout: float = 5.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def rpc(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request document, return the reply document."""
        self._file.write(json.dumps(doc).encode("utf-8") + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        reply = json.loads(line)
        if not isinstance(reply, dict):
            raise ValueError(f"server sent a non-object reply: {reply!r}")
        return reply

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _sparkline(values: List[float], width: int = 32) -> str:
    """Render the last *width* values as unicode block levels."""
    tail = [float(v) for v in values[-width:]]
    if not tail:
        return "(no samples)"
    low, high = min(tail), max(tail)
    if high <= low:
        return _SPARK_BLOCKS[0] * len(tail)
    span = high - low
    return "".join(
        _SPARK_BLOCKS[
            min(
                len(_SPARK_BLOCKS) - 1,
                int((v - low) / span * len(_SPARK_BLOCKS)),
            )
        ]
        for v in tail
    )


def _fmt_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_dashboard(
    stats: Dict[str, Any], metrics_reply: Dict[str, Any]
) -> str:
    """One frame of the dashboard from a stats + json-metrics reply pair."""
    lines: List[str] = []
    lines.append(
        "repro serve — "
        f"requests {stats.get('requests', 0)}  "
        f"built {stats.get('built', 0)}  "
        f"hit_rate {stats.get('hit_rate', 0.0):.3f}  "
        f"rejected {stats.get('rejected', 0)}  "
        f"pool {stats.get('pool_mode', '?')}×{stats.get('pool_workers', '?')}"
    )
    lines.append(
        f"queue {stats.get('queue_depth', 0)}  "
        f"inflight {stats.get('inflight', 0)}  "
        f"batches {stats.get('batches', 0)}  "
        f"max_batch {stats.get('max_batch', 0)}"
    )

    series = metrics_reply.get("series") or {}
    if series:
        lines.append("")
        lines.append("telemetry (oldest → newest):")
        for name in sorted(series):
            doc = series[name]
            samples = doc.get("samples") or []
            values = [v for _, v in samples]
            latest = f"{values[-1]:.4g}" if values else "—"
            lines.append(
                f"  {name:<16} {latest:>10}  {_sparkline(values)}"
            )

    slo = stats.get("slo") or {}
    if slo:
        lines.append("")
        lines.append("slo burn (≤1.0 healthy):")
        for op in sorted(slo):
            entry = slo[op]
            verdict = "ok" if entry.get("healthy") else "BURNING"
            lines.append(
                f"  {op:<10} latency {entry.get('latency_burn', 0.0):6.2f}  "
                f"errors {entry.get('error_burn', 0.0):6.2f}  "
                f"n={entry.get('total', 0)}  {verdict}"
            )

    lines.append("")
    if metrics_reply.get("enabled"):
        counters = (metrics_reply.get("metrics") or {}).get("counters") or {}
        if counters:
            lines.append("counters:")
            for key in sorted(counters):
                lines.append(f"  {key:<44} {_fmt_value(counters[key])}")
    else:
        lines.append("(server running without instrumentation — no registry)")
    return "\n".join(lines)


def run_top(
    host: str,
    port: int,
    *,
    interval_s: float = 1.0,
    iterations: Optional[int] = None,
    clear: bool = True,
) -> int:
    """Poll the server and redraw until interrupted (or *iterations* frames).

    Returns a process exit code: 0 on a clean run, 1 when the server is
    unreachable or disconnects.
    """
    import time

    try:
        client = ServeClient(host, port)
    except OSError as exc:
        print(f"repro obs top: cannot connect to {host}:{port} ({exc})")
        return 1
    frames = 0
    try:
        with client:
            while True:
                stats_reply = client.rpc({"op": "stats"})
                metrics_reply = client.rpc({"op": "metrics", "format": "json"})
                if not stats_reply.get("ok") or not metrics_reply.get("ok"):
                    print(f"repro obs top: server error: {stats_reply}")
                    return 1
                frame = render_dashboard(
                    stats_reply.get("stats") or {}, metrics_reply
                )
                if clear and iterations != 1:
                    print("\x1b[2J\x1b[H", end="")
                print(frame)
                frames += 1
                if iterations is not None and frames >= iterations:
                    return 0
                time.sleep(interval_s)
    except KeyboardInterrupt:
        return 0
    except (ConnectionError, OSError, ValueError) as exc:
        print(f"repro obs top: connection lost ({exc})")
        return 1
