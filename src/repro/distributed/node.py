"""Per-sensor protocol state: a local ``(P, D)`` replica plus local decisions.

Each :class:`SensorNode` owns exactly the information a deployed sensor
would have:

* its own id and the global ``(P, D)`` replica (received via broadcasts);
* the link qualities of its *incident* links (measured locally);
* the initial-energy table and the lifetime bound ``LC`` (announced once at
  setup — the lifetime check of Section VI needs ``I(v)`` of a candidate
  parent, and children counts come from the code itself via Eq. 23).

Decisions (pick a new parent, accept a child) are made from this state
only; the :mod:`repro.distributed.protocol` layer moves messages around.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.distributed.messages import CodeAnnouncement, ParentChange
from repro.network.energy import EnergyModel
from repro.prufer.updates import SequencePair

__all__ = ["SensorNode"]


@dataclass
class SensorNode:
    """Protocol replica and decision logic for one sensor.

    Attributes:
        node_id: This sensor's label (0 = sink).
        energy_model: Per-packet Tx/Rx model (shared constants).
        energies: Initial-energy table ``I(v)`` (announced at setup).
        lc: The lifetime bound the maintained tree must keep.
        link_costs: Costs of *incident* links, keyed by neighbour id.
        pair: Current ``(P, D)`` replica (None until the sink's broadcast).
        last_serial: Serial of the last applied ParentChange.
        tolerate_gaps: Fault-injection mode.  A deployed radio can lose an
            announcement; with this set (the protocol sets it when a fault
            plan is active) a serial gap marks the replica
            :attr:`out_of_sync` instead of raising, and the node waits for
            a code rebroadcast.  Off by default: on a perfect channel a
            gap is a simulator bug and must fail loudly.
        out_of_sync: The replica is known stale (missed/unappliable update
            or a reboot); the node ignores further Parent-Changing traffic
            until a :class:`CodeAnnouncement` resyncs it.
    """

    node_id: int
    energy_model: EnergyModel
    energies: Dict[int, float]
    lc: float
    link_costs: Dict[int, float] = field(default_factory=dict)
    pair: Optional[SequencePair] = None
    last_serial: int = -1
    tolerate_gaps: bool = False
    out_of_sync: bool = False

    # ------------------------------------------------------------------
    # Message handlers
    # ------------------------------------------------------------------
    def on_code_announcement(self, msg: CodeAnnouncement) -> None:
        """Install the sequence pair broadcast by the sink.

        Both the setup broadcast and fault-recovery rebroadcasts land here;
        either way the node adopts the pair wholesale, fast-forwards to the
        announced serial, and is in sync again.
        """
        self.pair = SequencePair(code=msg.code, order=msg.order)
        self.last_serial = msg.serial
        self.out_of_sync = False

    def on_parent_change(self, msg: ParentChange) -> None:
        """Apply a Parent-Changing announcement to the local replica."""
        if self.pair is None:
            raise RuntimeError(
                f"node {self.node_id} received ParentChange before the code"
            )
        if self.out_of_sync:
            return  # stale replica; wait for the code rebroadcast
        if msg.serial <= self.last_serial:
            return  # duplicate delivery
        if msg.serial != self.last_serial + 1:
            if self.tolerate_gaps:
                self.out_of_sync = True
                return
            raise RuntimeError(
                f"node {self.node_id} missed an update "
                f"(have {self.last_serial}, got {msg.serial})"
            )
        try:
            self.pair = self.pair.change_parent(msg.child, msg.new_parent)
        except ValueError:
            if self.tolerate_gaps:
                # A diverged replica can find the announced move invalid in
                # its own view (e.g. the new parent sits inside the child's
                # subtree locally); flag it for resync instead of crashing.
                self.out_of_sync = True
                return
            raise
        self.last_serial = msg.serial

    # ------------------------------------------------------------------
    # Local views derived from the replica
    # ------------------------------------------------------------------
    def parent(self) -> Optional[int]:
        """This node's current parent (None for the sink)."""
        self._require_pair()
        if self.node_id == 0:
            return None
        return self.pair.parent_map()[self.node_id]

    def n_children(self, node: int) -> int:
        """Children count of *node* from the code occurrences (Eq. 23)."""
        self._require_pair()
        return self.pair.children_counts()[node]

    def can_host_child(self, node: int) -> bool:
        """Whether *node* taking one more child keeps ``L(node) >= LC``.

        This is the "lifetime is under constraint" test of Section VI-B1,
        computable by any sensor from the code and the energy table.
        """
        lifetime = self.energy_model.lifetime_rounds(
            self.energies[node], self.n_children(node) + 1
        )
        return lifetime >= self.lc * (1.0 - 1e-12)

    def choose_new_parent(self) -> Optional[int]:
        """Link-getting-worse reaction: pick the best replacement parent.

        "It decodes the Prüfer code first, removes the link from the tree,
        [and finds] its new parent which connects two separated components
        with the highest link quality" — among this node's neighbours that
        lie outside its own subtree and can host one more child under the
        lifetime constraint.  Returns ``None`` when no neighbour improves on
        the current (degraded) parent link.
        """
        self._require_pair()
        if self.node_id == 0:
            raise RuntimeError("the sink has no parent link to replace")
        component = self.pair.component(self.node_id)
        current_parent = self.parent()
        assert current_parent is not None
        best: Optional[Tuple[float, int]] = None
        for neighbour, cost in sorted(self.link_costs.items()):
            if neighbour in component or neighbour == current_parent:
                continue
            if not self.can_host_child(neighbour):
                continue
            if best is None or cost < best[0]:
                best = (cost, neighbour)
        if best is None:
            return None
        if best[0] >= self.link_costs.get(current_parent, float("inf")):
            return None  # the degraded link is still the best option
        return best[1]

    def _require_pair(self) -> None:
        if self.pair is None:
            raise RuntimeError(
                f"node {self.node_id} has no sequence pair yet"
            )
