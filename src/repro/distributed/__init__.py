"""Distributed updating protocol (Section VI) and its churn simulator.

* :mod:`repro.distributed.messages` — wire messages (code announcement,
  Parent-Changing).
* :mod:`repro.distributed.node` — per-sensor replica state and decisions.
* :mod:`repro.distributed.protocol` — the two update handlers (link worse /
  link better, the latter = ILU, Algorithm 4) with message accounting.
* :mod:`repro.distributed.simulator` — the Fig. 11–13 degradation loop.
"""

from repro.distributed.messages import CodeAnnouncement, ParentChange
from repro.distributed.node import SensorNode
from repro.distributed.protocol import DistributedProtocol, UpdateReport
from repro.distributed.simulator import ChurnSimulation, MaintenanceRecord

__all__ = [
    "ChurnSimulation",
    "CodeAnnouncement",
    "DistributedProtocol",
    "MaintenanceRecord",
    "ParentChange",
    "SensorNode",
    "UpdateReport",
]
