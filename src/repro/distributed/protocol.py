"""The distributed updating protocol (Section VI-B) and ILU (Algorithm 4).

Two triggers, two handlers:

* **Link getting worse** — the child endpoint of a degraded tree link picks
  the best replacement parent outside its own component (subject to the
  lifetime constraint) and broadcasts one Parent-Changing message; every
  replica applies the same ``O(n)`` splice.
* **Link getting better** — a non-tree link whose quality improved may enter
  the tree.  The Iterative Local Updating algorithm re-parents one endpoint
  onto the other when that strictly improves cost and the host can take one
  more child, then recurses on the displaced parent link (which has just
  become a candidate "getting better" link for someone else).  Each accepted
  move strictly decreases tree cost, so the recursion terminates.

Message accounting matches the paper's model: each update is flooded over
the tree through non-leaf nodes, so one update costs (non-leaf count ∪
originator) transmissions.

**Control-plane faults.**  By default the floods above are delivered
perfectly — the idealised channel the paper's Figs. 11–13 assume.  Passing
a :class:`repro.faults.FaultPlan` makes the control plane itself lossy: the
flood is then simulated hop by hop over the tree, each per-link delivery
can be dropped (retransmitted up to ``max_retries`` times, each retry a
real message), duplicated (absorbed by the serial guard), or delayed
(applied in a later round), and nodes can crash and reboot stale.  A
replica that misses an announcement is *out of sync*; the sink repairs
divergence by rebroadcasting the full code (:class:`CodeAnnouncement` with
the current serial) — the resync path, whose cost is accounted like any
other flood.  An inactive plan (``FaultPlan(drop_rate=0)`` with every other
knob zero) takes the exact legacy code path and never draws from the
plan's RNG, so fault-free runs stay bitwise-identical.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

import numpy as np

from repro.core.tree import AggregationTree
from repro.distributed.messages import CodeAnnouncement, ParentChange
from repro.distributed.node import SensorNode
from repro.faults import FaultPlan, FaultStats
from repro.network.energy import EnergyModel
from repro.network.model import Network
from repro.obs import OBS
from repro.prufer.updates import SequencePair

__all__ = ["DistributedProtocol", "UpdateReport"]


@dataclass
class UpdateReport:
    """What one protocol invocation did.

    Attributes:
        changed: Accepted parent changes, in order, as (child, new_parent).
        messages: Tree-flooding transmissions spent on the announcements
            (including fault-mode retransmissions).
        receptions: Packet receptions those floods caused (every non-origin
            node hears each announcement once on a perfect channel; under
            faults, only the deliveries that actually succeeded).
        ilu_steps: ILU recursion steps examined (0 for link-worse updates).
    """

    changed: List[Tuple[int, int]] = field(default_factory=list)
    messages: int = 0
    receptions: int = 0
    ilu_steps: int = 0

    @property
    def did_change(self) -> bool:
        return bool(self.changed)

    def control_energy_j(self, energy_model: EnergyModel) -> float:
        """Control-plane energy of this update (Tx per message, Rx per
        reception) — the maintenance overhead the paper's Fig. 13 counts in
        messages, expressed in the same joules as the data plane.

        Raises ``TypeError`` unless *energy_model* is an
        :class:`~repro.network.energy.EnergyModel` (pass
        ``network.energy_model``); anything else used to fail later with
        an opaque ``AttributeError``.
        """
        if not isinstance(energy_model, EnergyModel):
            raise TypeError(
                "energy_model must be a repro.network.energy.EnergyModel "
                f"(e.g. network.energy_model), got {type(energy_model).__name__}"
            )
        return self.messages * energy_model.tx + self.receptions * energy_model.rx


class DistributedProtocol:
    """Simulated deployment of the Section VI protocol over one network.

    Every sensor gets a :class:`SensorNode` replica initialised by the
    sink's code broadcast.  The protocol object moves messages between
    replicas and counts transmissions; all *decisions* are taken inside the
    nodes from their local state.

    Args:
        network: Ground-truth network (its PRRs drive local link costs; the
            simulator mutates it to model churn).
        tree: The initial aggregation tree (typically IRA's output).
        lc: Lifetime bound the maintained tree must keep satisfying.
        fault_plan: Optional control-plane fault model (see module
            docstring).  ``None`` — and any *inactive* plan — preserves the
            perfect-channel behaviour bit for bit.
    """

    def __init__(
        self,
        network: Network,
        tree: AggregationTree,
        lc: float,
        *,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if tree.network is not network:
            raise ValueError("tree must be built over the given network")
        self.network = network
        self.lc = float(lc)
        self.fault_plan = fault_plan
        self._faults_active = fault_plan is not None and fault_plan.active
        self.fault_stats = FaultStats()
        self._crashed: Set[int] = set()
        self._recover_at: Dict[int, int] = {}
        #: Delayed deliveries: (due tick, receiver, message).
        self._pending: List[
            Tuple[int, int, Union[ParentChange, CodeAnnouncement]]
        ] = []
        self._tick = 0
        if self._faults_active:
            assert fault_plan is not None
            for event in fault_plan.crash_events:
                if event.node >= network.n:
                    raise ValueError(
                        f"crash event targets node {event.node}, but the "
                        f"network only has {network.n} nodes"
                    )
        energies = {v: network.initial_energy(v) for v in network.nodes}
        self.nodes: List[SensorNode] = [
            SensorNode(
                node_id=v,
                energy_model=network.energy_model,
                energies=energies,
                lc=self.lc,
                link_costs={
                    e.other(v): e.cost for e in network.incident_edges(v)
                },
                tolerate_gaps=self._faults_active,
            )
            for v in network.nodes
        ]
        self._serial = 0
        self.setup_messages = self._initial_broadcast(tree)

    # ------------------------------------------------------------------
    # Replica plumbing
    # ------------------------------------------------------------------
    def _initial_broadcast(self, tree: AggregationTree) -> int:
        # Setup is part of provisioning (the paper's "sink calculates the
        # Prüfer code and broadcasts"): delivered reliably even under a
        # fault plan, which only governs steady-state maintenance traffic.
        pair = SequencePair.from_tree(tree)
        announcement = CodeAnnouncement(code=pair.code, order=pair.order)
        for node in self.nodes:
            node.on_code_announcement(announcement)
        cost = self._broadcast_cost(pair, origin=0)
        if OBS.enabled:
            reg = OBS.registry
            reg.counter("protocol.messages", type="code_announcement").inc(cost)
            reg.counter("protocol.bytes", type="code_announcement").inc(
                cost * announcement.size_bytes()
            )
            OBS.tracer.event(
                "protocol.code_broadcast",
                n=len(self.nodes),
                messages=cost,
                bytes=cost * announcement.size_bytes(),
            )
        return cost

    def _broadcast_cost(self, pair: SequencePair, origin: int) -> int:
        """Transmissions to flood one message over the tree.

        Every non-leaf node forwards once; the originator transmits once
        even if it is a leaf.
        """
        counts = np.asarray(pair.children_counts())
        transmitters = int(np.count_nonzero(counts > 0))
        if counts[origin] == 0:
            transmitters += 1  # a leaf originator still transmits once
        return transmitters

    def _announce_parent_change(self, child: int, new_parent: int) -> Tuple[int, int]:
        """Issue one Parent-Changing flood; returns (messages, receptions)."""
        msg = ParentChange(child=child, new_parent=new_parent, serial=self._serial)
        self._serial += 1
        if self._faults_active:
            # The mover applies its own decision locally, then floods it
            # over the (pre-change) tree hop by hop through the fault plan.
            flood_pair = self.pair
            self.nodes[child].on_parent_change(msg)
            cost, receptions = self._flood_with_faults(flood_pair, child, msg)
        else:
            for node in self.nodes:
                node.on_parent_change(msg)
            cost = self._broadcast_cost(self.pair, origin=child)
            receptions = len(self.nodes) - 1  # everyone else hears it
        if OBS.enabled:
            reg = OBS.registry
            reg.counter("protocol.messages", type="parent_change").inc(cost)
            reg.counter("protocol.bytes", type="parent_change").inc(
                cost * msg.size_bytes()
            )
            reg.counter("protocol.parent_changes").inc()
            reg.histogram("protocol.messages_per_update").observe(cost)
            OBS.tracer.event(
                "protocol.parent_change",
                child=child,
                new_parent=new_parent,
                serial=msg.serial,
                messages=cost,
                bytes=cost * msg.size_bytes(),
            )
        return cost, receptions

    def _record_announcement(
        self, report: UpdateReport, child: int, new_parent: int
    ) -> None:
        messages, receptions = self._announce_parent_change(child, new_parent)
        report.messages += messages
        report.receptions += receptions
        report.changed.append((child, new_parent))
        if OBS.enabled:
            OBS.registry.counter("protocol.receptions").inc(receptions)

    @property
    def pair(self) -> SequencePair:
        """The current sequence pair (read from the sink's replica)."""
        pair = self.nodes[0].pair
        assert pair is not None
        return pair

    def tree(self) -> AggregationTree:
        """Materialise the maintained tree against the current network."""
        return self.pair.to_tree(self.network)

    def assert_consistent(self) -> None:
        """All replicas must hold the identical pair (protocol invariant)."""
        reference = self.pair
        for node in self.nodes:
            if node.pair != reference:
                raise AssertionError(
                    f"replica divergence at node {node.node_id}"
                )

    def refresh_link(self, u: int, v: int) -> None:
        """Re-read one link's cost from the network into both endpoints.

        Called by the churn simulator after mutating a PRR — it models the
        endpoints' link estimators noticing the change.
        """
        cost = self.network.cost(u, v)
        self.nodes[u].link_costs[v] = cost
        self.nodes[v].link_costs[u] = cost

    # ------------------------------------------------------------------
    # Fault plane: faulty floods, crash events, divergence recovery
    # ------------------------------------------------------------------
    def _flood_with_faults(
        self,
        pair: SequencePair,
        origin: int,
        msg: Union[ParentChange, CodeAnnouncement],
    ) -> Tuple[int, int]:
        """Simulate one tree flood hop by hop through the fault plan.

        BFS from *origin* over *pair*'s tree (sorted neighbour order keeps
        the draw sequence deterministic).  Each hop's receiver gets up to
        ``1 + max_retries`` delivery attempts (retry-with-ack; every retry
        is one extra message).  A receiver that exhausts its retries —
        or is crashed — misses the flood *and cuts off its whole subtree*:
        nobody downstream can hear a message its forwarder never got.  The
        sender's ack timeout means the miss is locally known, so the
        receiver is flagged out of sync immediately; cut-off subtrees are
        silently stale until divergence detection finds them.

        Returns (messages, successful receptions).
        """
        plan = self.fault_plan
        assert plan is not None
        stats = self.fault_stats
        drops = retries = duplicates = delays = missed = 0
        parents = pair.parent_map()
        neighbours: List[List[int]] = [[] for _ in range(pair.n)]
        for v, p in parents.items():
            neighbours[v].append(p)
            neighbours[p].append(v)
        messages = 0
        receptions = 0
        # (node, flood parent, delay inherited from the path so far)
        queue = deque([(origin, -1, 0)])
        while queue:
            x, flood_parent, path_delay = queue.popleft()
            kids = [y for y in sorted(neighbours[x]) if y != flood_parent]
            if kids or x == origin:
                messages += 1  # x's (re)broadcast to its tree neighbours
            for y in kids:
                if y in self._crashed:
                    # Retries into silence: the sender spends them all,
                    # then gives up.  The node reboots stale (flagged at
                    # recovery time), so no flag is needed here.
                    messages += plan.max_retries
                    retries += plan.max_retries
                    drops += 1 + plan.max_retries
                    missed += 1
                    continue
                prr = self.network.prr(x, y)
                outcome = plan.attempt(prr)
                attempt = 0
                while not outcome.delivered and attempt < plan.max_retries:
                    drops += 1
                    attempt += 1
                    messages += 1
                    retries += 1
                    outcome = plan.attempt(prr)
                if not outcome.delivered:
                    drops += 1
                    missed += 1
                    self.nodes[y].out_of_sync = True
                    continue
                receptions += 1
                if outcome.duplicated:
                    # Lost ack: the sender re-forwards, the receiver hears
                    # the same serial twice and ignores the second copy.
                    receptions += 1
                    messages += 1
                    duplicates += 1
                delay_y = path_delay + outcome.delay
                if outcome.delay:
                    delays += 1
                if delay_y > 0:
                    self._pending.append((self._tick + delay_y, y, msg))
                else:
                    self._deliver(self.nodes[y], msg)
                # Delayed or not, y still forwards (its children inherit
                # the path delay — a flood hop cannot outrun its parent).
                queue.append((y, x, delay_y))
        stats.drops += drops
        stats.retries += retries
        stats.duplicates += duplicates
        stats.delays += delays
        stats.missed += missed
        if OBS.enabled:
            reg = OBS.registry
            for name, value in (
                ("faults.drops", drops),
                ("faults.retries", retries),
                ("faults.duplicates", duplicates),
                ("faults.delays", delays),
                ("faults.missed", missed),
            ):
                if value:
                    reg.counter(name).inc(value)
            reg.histogram("faults.retries_per_flood").observe(retries)
        return messages, receptions

    def _deliver(
        self, node: SensorNode, msg: Union[ParentChange, CodeAnnouncement]
    ) -> None:
        """Apply one (possibly late) delivery to a replica.

        A stale :class:`CodeAnnouncement` (strictly older serial than the
        replica already holds) is discarded — applying it would regress
        the replica.  An *equal*-serial announcement is applied: a node can
        be at the sink's serial yet hold a different pair (it applied an
        update the sink missed), and adopting the sink's view at the same
        serial is exactly the repair.  The serial guard inside
        ``on_parent_change`` handles Parent-Changing messages.
        """
        if isinstance(msg, CodeAnnouncement):
            if msg.serial >= node.last_serial:
                node.on_code_announcement(msg)
        else:
            node.on_parent_change(msg)

    def _flush_pending(self) -> None:
        """Deliver every delayed message that has come due at this tick."""
        if not self._pending:
            return
        due = [entry for entry in self._pending if entry[0] <= self._tick]
        if not due:
            return
        self._pending = [entry for entry in self._pending if entry[0] > self._tick]
        for _, node_id, msg in due:
            if node_id in self._crashed:
                continue  # arrived while the node was down; lost for good
            self._deliver(self.nodes[node_id], msg)

    def _crash(self, node: int, recover_round: Optional[int]) -> None:
        if node == 0 or node in self._crashed:
            return  # the sink is mains-powered; double-crash is a no-op
        self._crashed.add(node)
        if recover_round is not None:
            self._recover_at[node] = recover_round
        else:
            self._recover_at.pop(node, None)
        self.fault_stats.crashes += 1
        if OBS.enabled:
            OBS.registry.counter("faults.crashes").inc()
            OBS.tracer.event("faults.crash", node=node, recover_round=recover_round)

    def begin_round(self, round_index: int) -> None:
        """Advance the fault clock at the start of one churn round.

        Flushes delayed deliveries that come due, reboots nodes whose
        outage ends (stale — they are flagged for resync), and applies this
        round's scheduled and probabilistic crash events.  A no-op without
        an active fault plan.
        """
        if not self._faults_active:
            return
        plan = self.fault_plan
        assert plan is not None
        self._tick += 1
        self._flush_pending()
        for node in sorted(
            v for v, r in self._recover_at.items() if r <= round_index
        ):
            del self._recover_at[node]
            self._crashed.discard(node)
            self.nodes[node].out_of_sync = True  # rebooted with a stale replica
            self.fault_stats.recoveries += 1
            if OBS.enabled:
                OBS.registry.counter("faults.recoveries").inc()
                OBS.tracer.event("faults.recovery", node=node)
        for event in plan.scheduled_crashes(round_index):
            self._crash(event.node, event.recover_round)
        if plan.crash_rate > 0.0:
            for v in range(1, len(self.nodes)):
                if v not in self._crashed and plan.draw_crash():
                    self._crash(v, round_index + plan.crash_duration)

    def divergent_nodes(self) -> List[int]:
        """Replicas currently out of step with the sink's.

        Detection combines local knowledge (the ``out_of_sync`` flag set by
        ack timeouts and serial gaps) with a direct pair comparison — the
        simulator stand-in for the code digest a real deployment would
        piggyback on data traffic.  Crashed nodes are skipped: they cannot
        be repaired until they reboot.
        """
        if not self._faults_active:
            return []
        reference = self.pair
        return [
            node.node_id
            for node in self.nodes
            if node.node_id not in self._crashed
            and (node.out_of_sync or node.pair != reference)
        ]

    def _resync(self, *, reliable: bool = False) -> int:
        """Sink rebroadcasts the full code to repair divergence.

        The recovery flood normally travels through the same fault plan as
        any other message (so it too can fail, leaving the repair for the
        next detection round); ``reliable=True`` models the escalation a
        real deployment applies when repeated resyncs fail (per-hop acks
        on every link) and always reaches every live node.  Returns the
        transmissions spent.
        """
        pair = self.pair
        msg = CodeAnnouncement(code=pair.code, order=pair.order, serial=self._serial - 1)
        self.fault_stats.resyncs += 1
        if reliable:
            for node in self.nodes:
                if node.node_id not in self._crashed:
                    self._deliver(node, msg)
            cost = self._broadcast_cost(pair, origin=0)
        else:
            self._deliver(self.nodes[0], msg)  # the sink trusts itself
            cost, _ = self._flood_with_faults(pair, 0, msg)
        self.fault_stats.resync_messages += cost
        if OBS.enabled:
            reg = OBS.registry
            reg.counter("protocol.messages", type="code_resync").inc(cost)
            reg.counter("protocol.bytes", type="code_resync").inc(
                cost * msg.size_bytes()
            )
            reg.counter("protocol.resyncs").inc()
            OBS.tracer.event(
                "protocol.code_resync",
                serial=msg.serial,
                messages=cost,
                reliable=reliable,
            )
        return cost

    def maintain(self) -> Tuple[int, int]:
        """One divergence-detection pass plus (at most) one recovery flood.

        Called by the churn simulator at the end of every round.  Returns
        ``(divergent replica count, recovery messages spent)`` — both zero
        when all replicas agree or no fault plan is active.
        """
        if not self._faults_active:
            return (0, 0)
        divergent = self.divergent_nodes()
        if not divergent:
            return (0, 0)
        self.fault_stats.divergences += len(divergent)
        if OBS.enabled:
            OBS.registry.counter("protocol.divergences").inc(len(divergent))
            OBS.registry.histogram("protocol.divergent_replicas").observe(
                len(divergent)
            )
        messages = self._resync()
        return (len(divergent), messages)

    def settle(self, max_attempts: int = 8) -> int:
        """End-of-run repair: reboot outages, drain delays, fix divergence.

        Still-crashed nodes reboot (stale), all delayed traffic is either
        delivered or discarded as superseded, and the sink resyncs until
        every replica agrees — escalating to a reliable flood after
        ``max_attempts`` faulty ones, so :meth:`assert_consistent` is
        guaranteed to pass afterwards.  Returns the messages spent.
        """
        if not self._faults_active:
            return 0
        for node in sorted(self._crashed):
            self.nodes[node].out_of_sync = True
            self.fault_stats.recoveries += 1
        self._crashed.clear()
        self._recover_at.clear()
        assert self.fault_plan is not None
        self._tick += self.fault_plan.max_delay
        self._flush_pending()
        messages = 0
        attempts = 0
        while True:
            divergent = self.divergent_nodes()
            if not divergent:
                break
            if attempts > max_attempts:  # a reliable resync already ran
                raise AssertionError(
                    f"settle failed to converge: {len(divergent)} replicas "
                    "still divergent after a reliable resync"
                )
            attempts += 1
            self.fault_stats.divergences += len(divergent)
            messages += self._resync(reliable=attempts >= max_attempts)
        # Anything still in flight is older than the resync everyone just
        # applied; delivering it later could only be ignored.
        self._pending.clear()
        return messages

    # ------------------------------------------------------------------
    # Section VI-B1: link getting worse
    # ------------------------------------------------------------------
    def handle_link_worse(self, u: int, v: int) -> UpdateReport:
        """React to a degraded link ``{u, v}``.

        If the link is in the tree, its child endpoint re-evaluates its
        parent choice; a strictly better, constraint-respecting alternative
        triggers one Parent-Changing broadcast.  Degraded non-tree links
        need no action.  A crashed child cannot react at all.
        """
        report = UpdateReport()
        if OBS.enabled:
            OBS.registry.counter("protocol.updates", trigger="link_worse").inc()
        parents = self.pair.parent_map()
        if parents.get(u) == v:
            child = u
        elif parents.get(v) == u:
            child = v
        else:
            return report  # not a tree link; nothing to maintain
        if child in self._crashed:
            return report  # a dead node makes no decisions
        new_parent = self.nodes[child].choose_new_parent()
        if new_parent is None:
            return report
        self._record_announcement(report, child, new_parent)
        return report

    # ------------------------------------------------------------------
    # Section VI-B2: link getting better (Algorithm 4, ILU)
    # ------------------------------------------------------------------
    def handle_link_better(self, u: int, v: int) -> UpdateReport:
        """Iterative Local Updating on the improved non-tree link ``{u, v}``.

        Implements Algorithm 4 with two practical guards the paper leaves
        implicit: a move is skipped when it would create a cycle (new parent
        inside the mover's subtree), and the recursion is capped at ``3n``
        steps (never reached — each accepted move strictly decreases cost).
        Crashed endpoints cannot negotiate, so the trigger is ignored.
        """
        report = UpdateReport()
        if OBS.enabled:
            OBS.registry.counter("protocol.updates", trigger="link_better").inc()
        if u in self._crashed or v in self._crashed:
            return report
        edge: Optional[Tuple[int, int]] = (u, v)
        max_steps = 3 * self.network.n
        while edge is not None and report.ilu_steps < max_steps:
            report.ilu_steps += 1
            edge = self._ilu_step(edge, report)
        if OBS.enabled:
            OBS.registry.counter("protocol.ilu_steps").inc(report.ilu_steps)
        return report

    def _ilu_step(
        self, edge: Tuple[int, int], report: UpdateReport
    ) -> Optional[Tuple[int, int]]:
        """One Algorithm 4 evaluation; returns the displaced edge, if any."""
        a, b = edge
        if a == b or not self.network.has_edge(a, b):
            return None
        pair = self.pair
        parents = pair.parent_map()
        if parents.get(a) == b or parents.get(b) == a:
            return None  # already a tree link

        def parent_cost(x: int) -> float:
            p = parents.get(x)
            if p is None:
                return float("inf")  # the sink never moves
            return self.nodes[x].link_costs[p]

        # Line 3: name the endpoints so cost(v, p_v) <= cost(u, p_u).
        if parent_cost(a) <= parent_cost(b):
            v, u = a, b
        else:
            v, u = b, a
        link_cost = self.nodes[u].link_costs.get(v, float("inf"))
        sink = 0

        # Line 4: the cheaply-attached endpoint v moves under u.
        if (
            v != sink
            and v not in self._crashed
            and self.nodes[u].can_host_child(u)
            and parent_cost(v) > link_cost
            and u not in pair.component(v)
        ):
            old_parent = parents[v]
            self._record_announcement(report, v, u)
            return (v, old_parent)

        # Line 7: the expensively-attached endpoint u moves under v.
        if (
            u != sink
            and u not in self._crashed
            and self.nodes[v].can_host_child(v)
            and parent_cost(u) > link_cost
            and v not in pair.component(u)
        ):
            old_parent = parents[u]
            self._record_announcement(report, u, v)
            return (u, old_parent)

        return None
