"""The distributed updating protocol (Section VI-B) and ILU (Algorithm 4).

Two triggers, two handlers:

* **Link getting worse** — the child endpoint of a degraded tree link picks
  the best replacement parent outside its own component (subject to the
  lifetime constraint) and broadcasts one Parent-Changing message; every
  replica applies the same ``O(n)`` splice.
* **Link getting better** — a non-tree link whose quality improved may enter
  the tree.  The Iterative Local Updating algorithm re-parents one endpoint
  onto the other when that strictly improves cost and the host can take one
  more child, then recurses on the displaced parent link (which has just
  become a candidate "getting better" link for someone else).  Each accepted
  move strictly decreases tree cost, so the recursion terminates.

Message accounting matches the paper's model: each update is flooded over
the tree through non-leaf nodes, so one update costs (non-leaf count ∪
originator) transmissions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.tree import AggregationTree
from repro.distributed.messages import CodeAnnouncement, ParentChange
from repro.distributed.node import SensorNode
from repro.network.model import Network
from repro.obs import OBS
from repro.prufer.updates import SequencePair

__all__ = ["DistributedProtocol", "UpdateReport"]


@dataclass
class UpdateReport:
    """What one protocol invocation did.

    Attributes:
        changed: Accepted parent changes, in order, as (child, new_parent).
        messages: Tree-flooding transmissions spent on the announcements.
        receptions: Packet receptions those floods caused (every non-origin
            node hears each announcement once).
        ilu_steps: ILU recursion steps examined (0 for link-worse updates).
    """

    changed: List[Tuple[int, int]] = field(default_factory=list)
    messages: int = 0
    receptions: int = 0
    ilu_steps: int = 0

    @property
    def did_change(self) -> bool:
        return bool(self.changed)

    def control_energy_j(self, energy_model) -> float:
        """Control-plane energy of this update (Tx per message, Rx per
        reception) — the maintenance overhead the paper's Fig. 13 counts in
        messages, expressed in the same joules as the data plane."""
        return self.messages * energy_model.tx + self.receptions * energy_model.rx


class DistributedProtocol:
    """Simulated deployment of the Section VI protocol over one network.

    Every sensor gets a :class:`SensorNode` replica initialised by the
    sink's code broadcast.  The protocol object moves messages between
    replicas and counts transmissions; all *decisions* are taken inside the
    nodes from their local state.

    Args:
        network: Ground-truth network (its PRRs drive local link costs; the
            simulator mutates it to model churn).
        tree: The initial aggregation tree (typically IRA's output).
        lc: Lifetime bound the maintained tree must keep satisfying.
    """

    def __init__(self, network: Network, tree: AggregationTree, lc: float) -> None:
        if tree.network is not network:
            raise ValueError("tree must be built over the given network")
        self.network = network
        self.lc = float(lc)
        energies = {v: network.initial_energy(v) for v in network.nodes}
        self.nodes: List[SensorNode] = [
            SensorNode(
                node_id=v,
                energy_model=network.energy_model,
                energies=energies,
                lc=self.lc,
                link_costs={
                    e.other(v): e.cost for e in network.incident_edges(v)
                },
            )
            for v in network.nodes
        ]
        self._serial = 0
        self.setup_messages = self._initial_broadcast(tree)

    # ------------------------------------------------------------------
    # Replica plumbing
    # ------------------------------------------------------------------
    def _initial_broadcast(self, tree: AggregationTree) -> int:
        pair = SequencePair.from_tree(tree)
        announcement = CodeAnnouncement(code=pair.code, order=pair.order)
        for node in self.nodes:
            node.on_code_announcement(announcement)
        cost = self._broadcast_cost(pair, origin=0)
        if OBS.enabled:
            reg = OBS.registry
            reg.counter("protocol.messages", type="code_announcement").inc(cost)
            reg.counter("protocol.bytes", type="code_announcement").inc(
                cost * announcement.size_bytes()
            )
            OBS.tracer.event(
                "protocol.code_broadcast",
                n=len(self.nodes),
                messages=cost,
                bytes=cost * announcement.size_bytes(),
            )
        return cost

    def _broadcast_cost(self, pair: SequencePair, origin: int) -> int:
        """Transmissions to flood one message over the tree.

        Every non-leaf node forwards once; the originator transmits once
        even if it is a leaf.
        """
        counts = pair.children_counts()
        transmitters = {v for v in range(pair.n) if counts[v] > 0}
        transmitters.add(origin)
        return len(transmitters)

    def _announce_parent_change(self, child: int, new_parent: int) -> int:
        msg = ParentChange(child=child, new_parent=new_parent, serial=self._serial)
        self._serial += 1
        for node in self.nodes:
            node.on_parent_change(msg)
        cost = self._broadcast_cost(self.pair, origin=child)
        if OBS.enabled:
            reg = OBS.registry
            reg.counter("protocol.messages", type="parent_change").inc(cost)
            reg.counter("protocol.bytes", type="parent_change").inc(
                cost * msg.size_bytes()
            )
            reg.counter("protocol.parent_changes").inc()
            reg.histogram("protocol.messages_per_update").observe(cost)
            OBS.tracer.event(
                "protocol.parent_change",
                child=child,
                new_parent=new_parent,
                serial=msg.serial,
                messages=cost,
                bytes=cost * msg.size_bytes(),
            )
        return cost

    def _record_announcement(
        self, report: UpdateReport, child: int, new_parent: int
    ) -> None:
        report.messages += self._announce_parent_change(child, new_parent)
        report.receptions += len(self.nodes) - 1  # everyone else hears it
        report.changed.append((child, new_parent))
        if OBS.enabled:
            OBS.registry.counter("protocol.receptions").inc(len(self.nodes) - 1)

    @property
    def pair(self) -> SequencePair:
        """The current sequence pair (read from the sink's replica)."""
        pair = self.nodes[0].pair
        assert pair is not None
        return pair

    def tree(self) -> AggregationTree:
        """Materialise the maintained tree against the current network."""
        return self.pair.to_tree(self.network)

    def assert_consistent(self) -> None:
        """All replicas must hold the identical pair (protocol invariant)."""
        reference = self.pair
        for node in self.nodes:
            if node.pair != reference:
                raise AssertionError(
                    f"replica divergence at node {node.node_id}"
                )

    def refresh_link(self, u: int, v: int) -> None:
        """Re-read one link's cost from the network into both endpoints.

        Called by the churn simulator after mutating a PRR — it models the
        endpoints' link estimators noticing the change.
        """
        cost = self.network.cost(u, v)
        self.nodes[u].link_costs[v] = cost
        self.nodes[v].link_costs[u] = cost

    # ------------------------------------------------------------------
    # Section VI-B1: link getting worse
    # ------------------------------------------------------------------
    def handle_link_worse(self, u: int, v: int) -> UpdateReport:
        """React to a degraded link ``{u, v}``.

        If the link is in the tree, its child endpoint re-evaluates its
        parent choice; a strictly better, constraint-respecting alternative
        triggers one Parent-Changing broadcast.  Degraded non-tree links
        need no action.
        """
        report = UpdateReport()
        if OBS.enabled:
            OBS.registry.counter("protocol.updates", trigger="link_worse").inc()
        parents = self.pair.parent_map()
        if parents.get(u) == v:
            child = u
        elif parents.get(v) == u:
            child = v
        else:
            return report  # not a tree link; nothing to maintain
        new_parent = self.nodes[child].choose_new_parent()
        if new_parent is None:
            return report
        self._record_announcement(report, child, new_parent)
        return report

    # ------------------------------------------------------------------
    # Section VI-B2: link getting better (Algorithm 4, ILU)
    # ------------------------------------------------------------------
    def handle_link_better(self, u: int, v: int) -> UpdateReport:
        """Iterative Local Updating on the improved non-tree link ``{u, v}``.

        Implements Algorithm 4 with two practical guards the paper leaves
        implicit: a move is skipped when it would create a cycle (new parent
        inside the mover's subtree), and the recursion is capped at ``3n``
        steps (never reached — each accepted move strictly decreases cost).
        """
        report = UpdateReport()
        if OBS.enabled:
            OBS.registry.counter("protocol.updates", trigger="link_better").inc()
        edge: Optional[Tuple[int, int]] = (u, v)
        max_steps = 3 * self.network.n
        while edge is not None and report.ilu_steps < max_steps:
            report.ilu_steps += 1
            edge = self._ilu_step(edge, report)
        if OBS.enabled:
            OBS.registry.counter("protocol.ilu_steps").inc(report.ilu_steps)
        return report

    def _ilu_step(
        self, edge: Tuple[int, int], report: UpdateReport
    ) -> Optional[Tuple[int, int]]:
        """One Algorithm 4 evaluation; returns the displaced edge, if any."""
        a, b = edge
        if a == b or not self.network.has_edge(a, b):
            return None
        pair = self.pair
        parents = pair.parent_map()
        if parents.get(a) == b or parents.get(b) == a:
            return None  # already a tree link

        def parent_cost(x: int) -> float:
            p = parents.get(x)
            if p is None:
                return float("inf")  # the sink never moves
            return self.nodes[x].link_costs[p]

        # Line 3: name the endpoints so cost(v, p_v) <= cost(u, p_u).
        if parent_cost(a) <= parent_cost(b):
            v, u = a, b
        else:
            v, u = b, a
        link_cost = self.nodes[u].link_costs.get(v, float("inf"))
        sink = 0

        # Line 4: the cheaply-attached endpoint v moves under u.
        if (
            v != sink
            and self.nodes[u].can_host_child(u)
            and parent_cost(v) > link_cost
            and u not in pair.component(v)
        ):
            old_parent = parents[v]
            self._record_announcement(report, v, u)
            return (v, old_parent)

        # Line 7: the expensively-attached endpoint u moves under v.
        if (
            u != sink
            and self.nodes[v].can_host_child(v)
            and parent_cost(u) > link_cost
            and v not in pair.component(u)
        ):
            old_parent = parents[u]
            self._record_announcement(report, u, v)
            return (u, old_parent)

        return None
