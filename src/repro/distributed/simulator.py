"""Churn simulation driving the distributed protocol (Figs. 11–13).

Section VII-C: "We use the DFL system as the initial state of the
simulation. A data aggregation tree has been constructed and every node is
aware of the Prüfer code ... We simulate the distributed protocol by 100
rounds of update. ... we randomly select a tree edge [and] make it
unreliable (cost of selected edge increases 1e-3) in each round."

Each round this simulator degrades one random tree link of the *maintained*
tree, lets the protocol react (link-getting-worse handler), re-runs the
centralized IRA on the same mutated network for comparison, and records
cost, reliability, and message counts — the three series of Figs. 11, 12
and 13.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import math

from repro.core.tree import AggregationTree
from repro.engine import build_tree, get_builder
from repro.distributed.protocol import DistributedProtocol
from repro.network.model import Network
from repro.obs import OBS
from repro.utils.rng import SeedLike, as_rng

__all__ = ["MaintenanceRecord", "ChurnSimulation"]


@dataclass(frozen=True)
class MaintenanceRecord:
    """Per-round observation of the maintenance simulation.

    Attributes:
        round_index: 1-based round number.
        degraded_edge: The tree link whose cost was increased this round.
        distributed_cost / centralized_cost: Tree costs (natural-log units)
            of the protocol-maintained tree and the freshly recomputed IRA
            tree (Fig. 11's two curves).
        distributed_reliability / centralized_reliability: The same trees'
            reliabilities (Fig. 12).
        messages: Transmissions spent by the protocol this round.
        cumulative_messages: Running total (Fig. 13's rising curve).
        cumulative_updates: Rounds so far in which a re-parenting happened.
        changed: Whether the protocol re-parented a node this round.
    """

    round_index: int
    degraded_edge: tuple
    distributed_cost: float
    centralized_cost: float
    distributed_reliability: float
    centralized_reliability: float
    messages: int
    cumulative_messages: int
    cumulative_updates: int
    changed: bool

    @property
    def avg_messages_per_update(self) -> float:
        """Fig. 13's second curve: messages per *actual* update so far.

        0.0 before the first update happens (the paper's curve only starts
        once updates exist).
        """
        if self.cumulative_updates == 0:
            return 0.0
        return self.cumulative_messages / self.cumulative_updates


class ChurnSimulation:
    """Degrade-one-link-per-round maintenance experiment.

    Args:
        network: Ground-truth network; **mutated in place** round by round
            (pass a copy to keep the original).
        initial_tree: Starting aggregation tree (typically IRA's output).
        lc: Lifetime bound the protocol must keep.
        cost_delta: Natural-log cost increase per degradation (paper: 1e-3);
            the degraded link's PRR is multiplied by ``exp(-cost_delta)``.
        improve_probability: Per-round probability of an *improvement*
            event on a random non-tree link (exercising ILU, the paper's
            second trigger).  The paper's Fig. 11-13 workload is pure
            degradation (the default 0.0); mixed churn is an extension.
        improve_delta: Natural-log cost decrease applied by an improvement
            event (PRR multiplied by ``exp(+improve_delta)``, capped at 1).
        recompute_centralized: Re-run the centralized builder each round
            for the comparison curves (disable for pure protocol
            benchmarking).
        centralized_builder: Registry name of the comparison builder
            (default ``"ira"``; any :func:`repro.engine.available_builders`
            entry works).
        centralized_config: Extra config knobs for that builder.  When the
            builder declares an ``lc`` knob and the config does not set it,
            the simulation's own ``lc`` is passed automatically.
        seed: Randomness for the event choices.
    """

    def __init__(
        self,
        network: Network,
        initial_tree: AggregationTree,
        lc: float,
        *,
        cost_delta: float = 1e-3,
        improve_probability: float = 0.0,
        improve_delta: float = 5e-3,
        recompute_centralized: bool = True,
        centralized_builder: str = "ira",
        centralized_config: Optional[dict] = None,
        seed: SeedLike = None,
    ) -> None:
        if cost_delta <= 0:
            raise ValueError(f"cost_delta must be positive, got {cost_delta}")
        if not (0.0 <= improve_probability <= 1.0):
            raise ValueError(
                f"improve_probability must be in [0, 1], got {improve_probability}"
            )
        if improve_delta <= 0:
            raise ValueError(f"improve_delta must be positive, got {improve_delta}")
        self.network = network
        self.lc = float(lc)
        self.cost_delta = float(cost_delta)
        self.improve_probability = float(improve_probability)
        self.improve_delta = float(improve_delta)
        self.recompute_centralized = recompute_centralized
        self.centralized_builder = centralized_builder
        self.centralized_config = dict(centralized_config or {})
        get_builder(centralized_builder)  # fail fast on unknown names
        self.rng = as_rng(seed)
        self.protocol = DistributedProtocol(network, initial_tree, lc)
        self.records: List[MaintenanceRecord] = []
        self._cumulative_messages = 0
        self._cumulative_updates = 0

    def degrade_random_tree_link(self) -> tuple:
        """Pick a uniform random link of the maintained tree and degrade it."""
        edges = self.protocol.tree().edges()
        u, v = edges[int(self.rng.integers(0, len(edges)))]
        new_prr = self.network.prr(u, v) * math.exp(-self.cost_delta)
        self.network.set_prr(u, v, max(new_prr, 1e-12))
        self.protocol.refresh_link(u, v)
        return (u, v)

    def improve_random_non_tree_link(self):
        """Boost a random non-tree link's quality; returns it (or None)."""
        parents = self.protocol.pair.parent_map()
        candidates = [
            e.key
            for e in self.network.edges()
            if parents.get(e.u) != e.v and parents.get(e.v) != e.u
        ]
        if not candidates:
            return None
        u, v = candidates[int(self.rng.integers(0, len(candidates)))]
        new_prr = min(self.network.prr(u, v) * math.exp(self.improve_delta), 1.0)
        self.network.set_prr(u, v, new_prr)
        self.protocol.refresh_link(u, v)
        return (u, v)

    def step(self) -> MaintenanceRecord:
        """Run one churn round and record the comparison."""
        edge = self.degrade_random_tree_link()
        report = self.protocol.handle_link_worse(*edge)
        self._cumulative_messages += report.messages
        if report.did_change:
            self._cumulative_updates += 1
        round_messages = report.messages

        if self.improve_probability and self.rng.random() < self.improve_probability:
            improved = self.improve_random_non_tree_link()
            if improved is not None:
                better = self.protocol.handle_link_better(*improved)
                self._cumulative_messages += better.messages
                round_messages += better.messages
                if better.did_change:
                    self._cumulative_updates += 1
                if OBS.enabled:
                    OBS.registry.counter("churn.improvements").inc()

        if OBS.enabled:
            reg = OBS.registry
            reg.counter("churn.rounds").inc()
            reg.counter("churn.degradations").inc()
            reg.gauge("churn.cumulative_messages").set(self._cumulative_messages)
            reg.gauge("churn.cumulative_updates").set(self._cumulative_updates)
            reg.histogram("churn.messages_per_round").observe(round_messages)
            OBS.tracer.event(
                "churn.round",
                round=len(self.records) + 1,
                degraded=list(edge),
                messages=round_messages,
                changed=report.did_change,
            )

        maintained = self.protocol.tree()
        if self.recompute_centralized:
            central = self._centralized_tree()
        else:
            central = maintained

        record = MaintenanceRecord(
            round_index=len(self.records) + 1,
            degraded_edge=edge,
            distributed_cost=maintained.cost(),
            centralized_cost=central.cost(),
            distributed_reliability=maintained.reliability(),
            centralized_reliability=central.reliability(),
            messages=report.messages,
            cumulative_messages=self._cumulative_messages,
            cumulative_updates=self._cumulative_updates,
            changed=report.did_change,
        )
        self.records.append(record)
        return record

    def _centralized_tree(self) -> AggregationTree:
        """Recompute the comparison tree via the registry-resolved builder."""
        config = dict(self.centralized_config)
        if "lc" in get_builder(self.centralized_builder).knobs:
            config.setdefault("lc", self.lc)
        return build_tree(self.centralized_builder, self.network, **config).tree

    def run(self, rounds: int = 100) -> List[MaintenanceRecord]:
        """Run *rounds* degradation rounds; returns all records."""
        if rounds <= 0:
            raise ValueError(f"rounds must be positive, got {rounds}")
        for _ in range(rounds):
            self.step()
        self.protocol.assert_consistent()
        return list(self.records)
