"""Churn simulation driving the distributed protocol (Figs. 11–13).

Section VII-C: "We use the DFL system as the initial state of the
simulation. A data aggregation tree has been constructed and every node is
aware of the Prüfer code ... We simulate the distributed protocol by 100
rounds of update. ... we randomly select a tree edge [and] make it
unreliable (cost of selected edge increases 1e-3) in each round."

Each round this simulator degrades one random tree link of the *maintained*
tree, lets the protocol react (link-getting-worse handler), re-runs the
centralized IRA on the same mutated network for comparison, and records
cost, reliability, and message counts — the three series of Figs. 11, 12
and 13.

Two extensions ride on top of the paper's workload:

* **Mixed churn** (``improve_probability``) — occasional link improvements
  exercising the ILU trigger.
* **Control-plane faults** (``fault_plan``) — a
  :class:`repro.faults.FaultPlan` makes the protocol's own announcements
  lossy; each round then starts with the fault clock
  (:meth:`DistributedProtocol.begin_round`) and ends with divergence
  detection/recovery (:meth:`DistributedProtocol.maintain`), and the run
  finishes with a :meth:`DistributedProtocol.settle` pass so the end-of-run
  consistency invariant still holds.
"""

from __future__ import annotations

import warnings

from dataclasses import dataclass
from typing import List, Optional, Tuple

import math

import numpy as np

from repro.core.tree import AggregationTree
from repro.engine import build_tree, get_builder
from repro.distributed.protocol import DistributedProtocol
from repro.faults import FaultPlan
from repro.network.model import Network, edge_key
from repro.obs import OBS
from repro.utils.rng import SeedLike, as_rng

__all__ = ["MaintenanceRecord", "ChurnSimulation", "PRR_FLOOR"]

#: Degradations never push a PRR below this floor: the log-cost model needs
#: a strictly positive PRR.  Once a link sits on the floor further
#: degradation rounds are (partially) inert — which the simulation now
#: reports instead of hiding (see ``MaintenanceRecord.prr_clamped``).
PRR_FLOOR = 1e-12


@dataclass(frozen=True)
class MaintenanceRecord:
    """Per-round observation of the maintenance simulation.

    Attributes:
        round_index: 1-based round number.
        degraded_edge: The tree link whose cost was increased this round.
        distributed_cost / centralized_cost: Tree costs (natural-log units)
            of the protocol-maintained tree and the freshly recomputed IRA
            tree (Fig. 11's two curves).
        distributed_reliability / centralized_reliability: The same trees'
            reliabilities (Fig. 12).
        messages: Transmissions spent by the link-worse reaction this round.
        cumulative_messages: Running total of *all* control traffic so far —
            updates, ILU moves, and fault-recovery floods (Fig. 13's rising
            curve).
        cumulative_updates: Rounds so far in which a re-parenting happened.
        changed: Whether the protocol re-parented a node this round.
        applied_cost_delta: The log-cost increase actually applied to the
            degraded link this round.  Equals ``cost_delta`` normally;
            smaller (possibly 0) when the link's PRR hit :data:`PRR_FLOOR`.
        prr_clamped: Whether this round's degradation was truncated by the
            PRR floor (the old silent-saturation bug, now surfaced).
        divergences: Divergent replicas detected at the end of this round
            (always 0 without an active fault plan).
        recovery_messages: Transmissions spent on this round's resync
            flood, if any.
    """

    round_index: int
    degraded_edge: tuple
    distributed_cost: float
    centralized_cost: float
    distributed_reliability: float
    centralized_reliability: float
    messages: int
    cumulative_messages: int
    cumulative_updates: int
    changed: bool
    applied_cost_delta: float = 0.0
    prr_clamped: bool = False
    divergences: int = 0
    recovery_messages: int = 0

    @property
    def avg_messages_per_update(self) -> float:
        """Fig. 13's second curve: messages per *actual* update so far.

        0.0 before the first update happens (the paper's curve only starts
        once updates exist).
        """
        if self.cumulative_updates == 0:
            return 0.0
        return self.cumulative_messages / self.cumulative_updates


class ChurnSimulation:
    """Degrade-one-link-per-round maintenance experiment.

    Args:
        network: Ground-truth network; **mutated in place** round by round
            (pass a copy to keep the original).
        initial_tree: Starting aggregation tree (typically IRA's output).
        lc: Lifetime bound the protocol must keep.
        cost_delta: Natural-log cost increase per degradation (paper: 1e-3);
            the degraded link's PRR is multiplied by ``exp(-cost_delta)``.
        improve_probability: Per-round probability of an *improvement*
            event on a random non-tree link (exercising ILU, the paper's
            second trigger).  The paper's Fig. 11-13 workload is pure
            degradation (the default 0.0); mixed churn is an extension.
        improve_delta: Natural-log cost decrease applied by an improvement
            event (PRR multiplied by ``exp(+improve_delta)``, capped at 1).
        recompute_centralized: Re-run the centralized builder each round
            for the comparison curves (disable for pure protocol
            benchmarking).
        centralized_builder: Registry name of the comparison builder
            (default ``"ira"``; any :func:`repro.engine.available_builders`
            entry works).
        centralized_config: Extra config knobs for that builder.  When the
            builder declares an ``lc`` knob and the config does not set it,
            the simulation's own ``lc`` is passed automatically.
        fault_plan: Optional :class:`repro.faults.FaultPlan` applied to the
            protocol's control traffic.  ``None`` (or an inactive plan)
            reproduces the perfect-channel results bit for bit; the plan's
            own seed drives its randomness, so enabling it never perturbs
            this simulation's churn stream either.
        seed: Randomness for the event choices.
    """

    def __init__(
        self,
        network: Network,
        initial_tree: AggregationTree,
        lc: float,
        *,
        cost_delta: float = 1e-3,
        improve_probability: float = 0.0,
        improve_delta: float = 5e-3,
        recompute_centralized: bool = True,
        centralized_builder: str = "ira",
        centralized_config: Optional[dict] = None,
        fault_plan: Optional[FaultPlan] = None,
        seed: SeedLike = None,
    ) -> None:
        if cost_delta <= 0:
            raise ValueError(f"cost_delta must be positive, got {cost_delta}")
        if not (0.0 <= improve_probability <= 1.0):
            raise ValueError(
                f"improve_probability must be in [0, 1], got {improve_probability}"
            )
        if improve_delta <= 0:
            raise ValueError(f"improve_delta must be positive, got {improve_delta}")
        self.network = network
        self.lc = float(lc)
        self.cost_delta = float(cost_delta)
        self.improve_probability = float(improve_probability)
        self.improve_delta = float(improve_delta)
        self.recompute_centralized = recompute_centralized
        self.centralized_builder = centralized_builder
        self.centralized_config = dict(centralized_config or {})
        get_builder(centralized_builder)  # fail fast on unknown names
        self.rng = as_rng(seed)
        self.fault_plan = fault_plan
        self.protocol = DistributedProtocol(
            network, initial_tree, lc, fault_plan=fault_plan
        )
        self.records: List[MaintenanceRecord] = []
        self.settle_messages = 0
        self._cumulative_messages = 0
        self._cumulative_updates = 0
        self._last_applied_delta = 0.0
        self._last_clamped = False
        self._clamp_warned = False
        # Network links never appear or disappear under churn (only their
        # PRRs move), so the canonical-key edge list is a loop invariant —
        # snapshot it once as endpoint arrays for the batched candidate
        # scans below.
        keys = [e.key for e in network.edges()]
        self._edge_u = np.asarray([k[0] for k in keys], dtype=np.int64)
        self._edge_v = np.asarray([k[1] for k in keys], dtype=np.int64)

    def degrade_random_tree_link(self) -> tuple:
        """Pick a uniform random link of the maintained tree and degrade it.

        The link's PRR is multiplied by ``exp(-cost_delta)`` but never
        pushed below :data:`PRR_FLOOR`.  Hitting the floor used to be
        silent — long runs would quietly stop degrading while every record
        still claimed a full ``cost_delta`` of churn.  The *actually
        applied* log-cost delta is now measured and exposed (and a clamped
        round warns once per simulation and bumps the
        ``churn.prr_clamped`` counter).
        """
        # Same sorted canonical-key list AggregationTree.edges() returns,
        # read straight off the maintained pair — no per-round tree
        # materialisation (and validation) just to pick an edge.
        edges = sorted(
            edge_key(v, p) for v, p in self.protocol.pair.parent_map().items()
        )
        u, v = edges[int(self.rng.integers(0, len(edges)))]
        old_prr = self.network.prr(u, v)
        new_prr = max(old_prr * math.exp(-self.cost_delta), PRR_FLOOR)
        self._last_applied_delta = math.log(old_prr / new_prr)
        self._last_clamped = self._last_applied_delta < self.cost_delta * (1.0 - 1e-9)
        if self._last_clamped:
            if OBS.enabled:
                OBS.registry.counter("churn.prr_clamped").inc()
            if not self._clamp_warned:
                self._clamp_warned = True
                warnings.warn(
                    f"degradation of link ({u}, {v}) clamped at the PRR floor "
                    f"({PRR_FLOOR:g}): applied cost delta "
                    f"{self._last_applied_delta:.3g} < requested "
                    f"{self.cost_delta:.3g}; further churn on saturated links "
                    "is partially inert (see MaintenanceRecord.prr_clamped)",
                    RuntimeWarning,
                    stacklevel=2,
                )
        self.network.set_prr(u, v, new_prr)
        self.protocol.refresh_link(u, v)
        return (u, v)

    def improve_random_non_tree_link(self):
        """Boost a random non-tree link's quality; returns it (or None)."""
        parents = self.protocol.pair.parent_map()
        # Batched candidate mask over the snapshotted endpoint arrays; the
        # sink maps to -1, which compares unequal to every node id — the
        # same "no parent" semantics the dict scan had.  Candidate order is
        # the canonical edge order either way, so the uniform pick below
        # consumes the RNG identically.
        pa = np.full(self.network.n, -1, dtype=np.int64)
        pa[list(parents.keys())] = list(parents.values())
        mask = (pa[self._edge_u] != self._edge_v) & (pa[self._edge_v] != self._edge_u)
        idx = np.nonzero(mask)[0]
        if len(idx) == 0:
            return None
        pick = idx[int(self.rng.integers(0, len(idx)))]
        u, v = int(self._edge_u[pick]), int(self._edge_v[pick])
        new_prr = min(self.network.prr(u, v) * math.exp(self.improve_delta), 1.0)
        self.network.set_prr(u, v, new_prr)
        self.protocol.refresh_link(u, v)
        return (u, v)

    def step(self) -> MaintenanceRecord:
        """Run one churn round and record the comparison."""
        self.protocol.begin_round(len(self.records) + 1)
        edge = self.degrade_random_tree_link()
        applied_delta = self._last_applied_delta
        clamped = self._last_clamped
        report = self.protocol.handle_link_worse(*edge)
        self._cumulative_messages += report.messages
        if report.did_change:
            self._cumulative_updates += 1
        round_messages = report.messages

        if self.improve_probability and self.rng.random() < self.improve_probability:
            improved = self.improve_random_non_tree_link()
            if improved is not None:
                better = self.protocol.handle_link_better(*improved)
                self._cumulative_messages += better.messages
                round_messages += better.messages
                if better.did_change:
                    self._cumulative_updates += 1
                if OBS.enabled:
                    OBS.registry.counter("churn.improvements").inc()

        divergences, recovery_messages = self.protocol.maintain()
        self._cumulative_messages += recovery_messages
        round_messages += recovery_messages

        if OBS.enabled:
            reg = OBS.registry
            reg.counter("churn.rounds").inc()
            reg.counter("churn.degradations").inc()
            reg.gauge("churn.cumulative_messages").set(self._cumulative_messages)
            reg.gauge("churn.cumulative_updates").set(self._cumulative_updates)
            reg.histogram("churn.messages_per_round").observe(round_messages)
            OBS.tracer.event(
                "churn.round",
                round=len(self.records) + 1,
                degraded=list(edge),
                messages=round_messages,
                changed=report.did_change,
            )

        maintained = self.protocol.tree()
        if self.recompute_centralized:
            central = self._centralized_tree()
        else:
            central = maintained

        record = MaintenanceRecord(
            round_index=len(self.records) + 1,
            degraded_edge=edge,
            distributed_cost=maintained.cost(),
            centralized_cost=central.cost(),
            distributed_reliability=maintained.reliability(),
            centralized_reliability=central.reliability(),
            messages=report.messages,
            cumulative_messages=self._cumulative_messages,
            cumulative_updates=self._cumulative_updates,
            changed=report.did_change,
            applied_cost_delta=applied_delta,
            prr_clamped=clamped,
            divergences=divergences,
            recovery_messages=recovery_messages,
        )
        self.records.append(record)
        return record

    def _centralized_tree(self) -> AggregationTree:
        """Recompute the comparison tree via the registry-resolved builder."""
        config = dict(self.centralized_config)
        if "lc" in get_builder(self.centralized_builder).knobs:
            config.setdefault("lc", self.lc)
        return build_tree(self.centralized_builder, self.network, **config).tree

    def run(self, rounds: int = 100) -> List[MaintenanceRecord]:
        """Run *rounds* degradation rounds; returns all records.

        Under an active fault plan the run ends with a settle pass
        (:meth:`DistributedProtocol.settle`): outstanding outages reboot,
        in-flight delayed messages land, and the sink resyncs whatever
        diverged — so the closing consistency assertion holds under faults
        too.  Its message cost lands in :attr:`settle_messages`.
        """
        if rounds <= 0:
            raise ValueError(f"rounds must be positive, got {rounds}")
        for _ in range(rounds):
            self.step()
        self.settle_messages = self.protocol.settle()
        self._cumulative_messages += self.settle_messages
        self.protocol.assert_consistent()
        return list(self.records)
