"""Message types exchanged by the distributed updating protocol (Section VI).

The protocol is deliberately thin: after the sink's initial code broadcast,
the only steady-state traffic is Parent-Changing announcements — "4 only
needs to broadcast a Parent-Changing information to other nodes and every
node could get the same P' and D'".

Each message knows its encoded wire size (``size_bytes``) under a simple
TelosB-style model — 16-bit node ids, a 32-bit serial, a 1-byte type tag —
so the instrumentation layer can report maintenance overhead in bytes as
well as transmissions (the unit Fig. 13 counts in).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = [
    "CodeAnnouncement",
    "ParentChange",
    "HEADER_BYTES",
    "NODE_ID_BYTES",
    "SERIAL_BYTES",
]

#: 1-byte message-type tag.
HEADER_BYTES = 1
#: Node ids fit 16 bits (WSN deployments are well under 65k nodes).
NODE_ID_BYTES = 2
#: 32-bit monotone serial on parent-change announcements.
SERIAL_BYTES = 4


@dataclass(frozen=True)
class CodeAnnouncement:
    """Sink broadcast carrying the full sequence pair.

    Sent once at setup, and again as the *resync* recovery message when
    replica divergence is detected under control-plane faults: a node that
    missed a Parent-Changing announcement adopts the sink's pair wholesale
    and fast-forwards to its serial.

    Attributes:
        code: The Prüfer sequence ``P``.
        order: The removal sequence ``D``.
        serial: Serial the receiver is current up to after applying the
            pair; ``-1`` on the setup broadcast (no updates issued yet),
            the protocol's last issued serial on resync rebroadcasts.
    """

    code: Tuple[int, ...]
    order: Tuple[int, ...]
    serial: int = -1

    def size_bytes(self) -> int:
        """Encoded size: type tag + both sequences at 2 bytes per id.

        Resync rebroadcasts (``serial >= 0``) additionally carry the
        serial; the setup broadcast predates any serial and omits it.
        """
        size = HEADER_BYTES + NODE_ID_BYTES * (len(self.code) + len(self.order))
        if self.serial >= 0:
            size += SERIAL_BYTES
        return size


@dataclass(frozen=True)
class ParentChange:
    """A node announcing that it re-attached under a new parent.

    Every receiver applies the same deterministic splice to its local
    ``(P, D)`` replica, so replicas stay identical without shipping the
    whole sequence.

    Attributes:
        child: The node whose parent changed.
        new_parent: Its new parent.
        serial: Monotone per-protocol sequence number (duplicate/ordering
            guard; real deployments need it, and the simulator asserts it).
    """

    child: int
    new_parent: int
    serial: int

    def size_bytes(self) -> int:
        """Encoded size: type tag + two node ids + the serial."""
        return HEADER_BYTES + 2 * NODE_ID_BYTES + SERIAL_BYTES
