"""Message types exchanged by the distributed updating protocol (Section VI).

The protocol is deliberately thin: after the sink's initial code broadcast,
the only steady-state traffic is Parent-Changing announcements — "4 only
needs to broadcast a Parent-Changing information to other nodes and every
node could get the same P' and D'".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["CodeAnnouncement", "ParentChange"]


@dataclass(frozen=True)
class CodeAnnouncement:
    """Initial broadcast from the sink carrying the full sequence pair.

    Attributes:
        code: The Prüfer sequence ``P``.
        order: The removal sequence ``D``.
    """

    code: Tuple[int, ...]
    order: Tuple[int, ...]


@dataclass(frozen=True)
class ParentChange:
    """A node announcing that it re-attached under a new parent.

    Every receiver applies the same deterministic splice to its local
    ``(P, D)`` replica, so replicas stay identical without shipping the
    whole sequence.

    Attributes:
        child: The node whose parent changed.
        new_parent: Its new parent.
        serial: Monotone per-protocol sequence number (duplicate/ordering
            guard; real deployments need it, and the simulator asserts it).
    """

    child: int
    new_parent: int
    serial: int
