"""repro.lint — AST-based invariant checker for this reproduction.

The correctness claims of the repo (decision-identical TreeState deltas,
Lemma 3's ``Q(T) = e^{-C(T)}``, per-seed determinism of every figure) rest
on code conventions that no type checker knows about.  This package encodes
them as lint rules with a registry (:func:`lint_rule`), a per-file driver
with ``# repro: ignore[RULE-ID]`` suppressions, JSON/text reporters, and a
committed baseline for grandfathered findings.  Run it as ``repro lint`` /
``mrlc lint``; see :mod:`repro.lint.rules` for the rule table and
``docs/static_analysis.md`` for the workflow.
"""

from repro.lint.baseline import DEFAULT_BASELINE_NAME, Baseline, BaselineError
from repro.lint.cli import build_lint_parser, lint_main
from repro.lint.context import FileContext, Project, module_name_for
from repro.lint.driver import (
    PARSE_ERROR_RULE,
    LintResult,
    lint_paths,
    select_rules,
)
from repro.lint.findings import Finding, Severity
from repro.lint.registry import (
    LintRule,
    UnknownRuleError,
    all_rules,
    get_rule,
    lint_rule,
)
from repro.lint.report import render_json, render_text

__all__ = [
    "Baseline",
    "BaselineError",
    "DEFAULT_BASELINE_NAME",
    "FileContext",
    "Finding",
    "LintResult",
    "LintRule",
    "PARSE_ERROR_RULE",
    "Project",
    "Severity",
    "UnknownRuleError",
    "all_rules",
    "build_lint_parser",
    "get_rule",
    "lint_main",
    "lint_paths",
    "module_name_for",
    "render_json",
    "render_text",
    "select_rules",
]
