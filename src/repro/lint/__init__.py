"""repro.lint — static analysis engine for this reproduction.

The correctness claims of the repo (decision-identical TreeState deltas,
Lemma 3's ``Q(T) = e^{-C(T)}``, per-seed determinism of every figure) rest
on code conventions that no type checker knows about.  This package encodes
them in two layers:

* **per-file rules** — AST checks with a registry (:func:`lint_rule`),
  ``# repro: ignore[RULE-ID]`` suppressions, and a committed baseline for
  grandfathered findings;
* **whole-program passes** — module summaries, an import/call graph
  (:mod:`repro.lint.graph`), and a fixpoint effect inference
  (:mod:`repro.lint.effects`) feeding the interprocedural rules
  (REP108–REP112: async blocking reachability, await races,
  process-boundary RNG discipline, backend parity, aliased mutation).

Per-file analyses cache by content hash (:class:`LintCache`) so warm runs
re-parse nothing.  Run it as ``repro lint`` / ``mrlc lint``; see
:mod:`repro.lint.rules` for the rule table and ``docs/static_analysis.md``
for the architecture and workflow.
"""

from repro.lint.baseline import DEFAULT_BASELINE_NAME, Baseline, BaselineError
from repro.lint.cache import DEFAULT_CACHE_DIR, LintCache
from repro.lint.cli import build_lint_parser, lint_main
from repro.lint.context import FileContext, Project, module_name_for
from repro.lint.driver import (
    PARSE_ERROR_RULE,
    LintResult,
    lint_paths,
    select_rules,
)
from repro.lint.effects import EffectAnalysis, analyze_effects
from repro.lint.findings import Finding, Loc, Severity
from repro.lint.graph import (
    CallGraph,
    ImportGraph,
    ModuleSummary,
    build_call_graph,
    build_import_graph,
    extract_summary,
)
from repro.lint.registry import (
    LintRule,
    UnknownRuleError,
    all_rules,
    get_rule,
    lint_rule,
)
from repro.lint.report import render_json, render_sarif, render_text

__all__ = [
    "Baseline",
    "BaselineError",
    "CallGraph",
    "DEFAULT_BASELINE_NAME",
    "DEFAULT_CACHE_DIR",
    "EffectAnalysis",
    "FileContext",
    "Finding",
    "ImportGraph",
    "LintCache",
    "LintResult",
    "LintRule",
    "Loc",
    "ModuleSummary",
    "PARSE_ERROR_RULE",
    "Project",
    "Severity",
    "UnknownRuleError",
    "all_rules",
    "analyze_effects",
    "build_call_graph",
    "build_import_graph",
    "build_lint_parser",
    "extract_summary",
    "get_rule",
    "lint_main",
    "lint_paths",
    "module_name_for",
    "render_json",
    "render_sarif",
    "render_text",
    "select_rules",
]
