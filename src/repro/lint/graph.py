"""Whole-program substrate: module summaries, import graph, call graph.

The per-file rules of PR 4 see one AST at a time; the interprocedural
rules (REP108–REP112) need the *project*.  This module provides the three
layers they stand on:

1. :class:`ModuleSummary` — a JSON-serializable digest of one parsed file:
   top-level symbols, import aliases, every function with its call sites,
   attribute writes, and async event ordering.  Summaries are the unit of
   the incremental cache (:mod:`repro.lint.cache`): a warm run rebuilds
   the whole-program analyses below from cached summaries without ever
   re-parsing an unchanged file.
2. :class:`ImportGraph` — module → imported-project-module edges,
   including ``from x import *`` and lazy function-level imports (the
   engine's backend loaders import inside functions).
3. :class:`CallGraph` — a name-resolved call graph.  Resolution is
   deliberately conservative: bare names resolve through local nested
   defs, module functions/classes, import aliases, and star imports;
   ``self.method()`` resolves through the defining class and its
   project-resolvable bases; anything else stays unresolved rather than
   guessed.  Every call site also gets a *canonical* dotted name
   (aliases substituted, e.g. ``sleep`` → ``time.sleep``) so the effect
   pass (:mod:`repro.lint.effects`) can classify external primitives.

Nothing here imports the rules; the rules read these structures through
:class:`~repro.lint.context.Project` accessors.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - types only, avoids an import cycle
    from repro.lint.context import FileContext, Project

__all__ = [
    "ArgInfo",
    "AllDecl",
    "CallGraph",
    "CallSite",
    "ClassSummary",
    "Event",
    "FunctionSummary",
    "ImportGraph",
    "ImportRecord",
    "ModuleSummary",
    "ResolvedCall",
    "build_call_graph",
    "build_import_graph",
    "extract_summary",
    "graph_to_doc",
    "graph_to_dot",
]

#: Longest argument-source snippet kept in a summary.
_ARG_TEXT_LIMIT = 80


def _is_tree_name(name: str) -> bool:
    return name == "tree" or name.endswith("_tree")


def _is_rng_name(name: str) -> bool:
    return name == "rng" or name.endswith("_rng")


def _dotted_chain(node: ast.expr) -> str:
    """``a.b.c`` for a Name/Attribute chain, else ``""``."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return ""
    parts.append(current.id)
    return ".".join(reversed(parts))


def _is_tree_valued(node: ast.expr) -> bool:
    """REP105's heuristic: tree-valued by naming convention."""
    if isinstance(node, ast.Name):
        return _is_tree_name(node.id)
    if isinstance(node, ast.Attribute):
        return _is_tree_name(node.attr)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id == "AggregationTree"
    return False


def _is_rng_valued(node: ast.expr) -> bool:
    """Whether an expression looks like a *live* numpy Generator.

    ``spawn_rngs(...)`` results are deliberately not matched: spawning
    fresh child streams for handoff is the sanctioned pattern REP110
    points violators at.
    """
    if isinstance(node, ast.Name):
        return _is_rng_name(node.id)
    if isinstance(node, ast.Attribute):
        return _is_rng_name(node.attr)
    if isinstance(node, ast.Call):
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else ""
        )
        return name in {"as_rng", "default_rng"}
    return False


def _lambda_touches_rng(node: ast.expr) -> bool:
    if not isinstance(node, ast.Lambda):
        return False
    lambda_params = {a.arg for a in node.args.args + node.args.kwonlyargs}
    for sub in ast.walk(node.body):
        if isinstance(sub, ast.Name) and _is_rng_name(sub.id):
            if sub.id not in lambda_params:
                return True
    return False


def _trim(text: str) -> str:
    return text if len(text) <= _ARG_TEXT_LIMIT else text[: _ARG_TEXT_LIMIT - 1] + "…"


# ----------------------------------------------------------------------
# Summary data model (everything below serializes to plain JSON)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ArgInfo:
    """One argument at a call site, classified for the boundary rules."""

    text: str
    name: Optional[str]  # bare-Name id, else None
    keyword: Optional[str]  # keyword name, None for positional
    tree: bool  # looks tree-valued (REP105/REP112 heuristic)
    rng: bool  # looks like a live Generator (REP110 heuristic)
    lambda_rng: bool  # a lambda whose body references an rng name

    def to_doc(self) -> Dict[str, Any]:
        return {
            "text": self.text,
            "name": self.name,
            "keyword": self.keyword,
            "tree": self.tree,
            "rng": self.rng,
            "lambda_rng": self.lambda_rng,
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "ArgInfo":
        return cls(
            text=doc["text"],
            name=doc["name"],
            keyword=doc["keyword"],
            tree=doc["tree"],
            rng=doc["rng"],
            lambda_rng=doc["lambda_rng"],
        )


@dataclass(frozen=True)
class CallSite:
    """One syntactic call inside a function body."""

    chain: str  # dotted callee expression ("" when not a name chain)
    lineno: int
    col: int
    awaited: bool
    args: Tuple[ArgInfo, ...] = ()

    def to_doc(self) -> Dict[str, Any]:
        return {
            "chain": self.chain,
            "lineno": self.lineno,
            "col": self.col,
            "awaited": self.awaited,
            "args": [a.to_doc() for a in self.args],
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "CallSite":
        return cls(
            chain=doc["chain"],
            lineno=doc["lineno"],
            col=doc["col"],
            awaited=doc["awaited"],
            args=tuple(ArgInfo.from_doc(a) for a in doc["args"]),
        )


@dataclass(frozen=True)
class Event:
    """One ordered execution event inside an ``async def`` body.

    ``kind`` is ``"read"``/``"write"`` (of a ``self`` attribute, the
    detail), ``"await"``, or ``"call"`` (detail = the dotted chain).
    Events are recorded in evaluation order — for an assignment the value
    side (including awaits) precedes the store — which is exactly the
    order REP109's read-modify-write scan needs.
    """

    kind: str
    detail: str
    lineno: int
    col: int

    def to_doc(self) -> List[Any]:
        return [self.kind, self.detail, self.lineno, self.col]

    @classmethod
    def from_doc(cls, doc: Sequence[Any]) -> "Event":
        return cls(kind=doc[0], detail=doc[1], lineno=doc[2], col=doc[3])


@dataclass(frozen=True)
class FunctionSummary:
    """One function/method/nested def, digested for whole-program passes."""

    name: str
    qualname: str  # "f", "C.m", or "f.<locals>.g"
    lineno: int
    col: int
    is_async: bool
    parent_class: Optional[str]
    nested: bool
    decorators: Tuple[str, ...]
    builder_name: Optional[str]
    pos_params: Tuple[str, ...]  # posonly + regular, including self
    kwonly_params: Tuple[str, ...]
    has_vararg: bool
    has_kwarg: bool
    calls: Tuple[CallSite, ...]
    events: Tuple[Event, ...]  # populated for async functions only
    self_attr_writes: Tuple[str, ...]
    param_attr_writes: Tuple[str, ...]
    tree_attr_writes: Tuple[Tuple[str, int, int], ...]  # (expr text, line, col)
    rng_capture: bool  # reads an rng-named name it does not bind

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_")

    @property
    def params(self) -> Tuple[str, ...]:
        return self.pos_params + self.kwonly_params

    def to_doc(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "qualname": self.qualname,
            "lineno": self.lineno,
            "col": self.col,
            "is_async": self.is_async,
            "parent_class": self.parent_class,
            "nested": self.nested,
            "decorators": list(self.decorators),
            "builder_name": self.builder_name,
            "pos_params": list(self.pos_params),
            "kwonly_params": list(self.kwonly_params),
            "has_vararg": self.has_vararg,
            "has_kwarg": self.has_kwarg,
            "calls": [c.to_doc() for c in self.calls],
            "events": [e.to_doc() for e in self.events],
            "self_attr_writes": list(self.self_attr_writes),
            "param_attr_writes": list(self.param_attr_writes),
            "tree_attr_writes": [list(t) for t in self.tree_attr_writes],
            "rng_capture": self.rng_capture,
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "FunctionSummary":
        return cls(
            name=doc["name"],
            qualname=doc["qualname"],
            lineno=doc["lineno"],
            col=doc["col"],
            is_async=doc["is_async"],
            parent_class=doc["parent_class"],
            nested=doc["nested"],
            decorators=tuple(doc["decorators"]),
            builder_name=doc["builder_name"],
            pos_params=tuple(doc["pos_params"]),
            kwonly_params=tuple(doc["kwonly_params"]),
            has_vararg=doc["has_vararg"],
            has_kwarg=doc["has_kwarg"],
            calls=tuple(CallSite.from_doc(c) for c in doc["calls"]),
            events=tuple(Event.from_doc(e) for e in doc["events"]),
            self_attr_writes=tuple(doc["self_attr_writes"]),
            param_attr_writes=tuple(doc["param_attr_writes"]),
            tree_attr_writes=tuple(
                (t[0], t[1], t[2]) for t in doc["tree_attr_writes"]
            ),
            rng_capture=doc["rng_capture"],
        )


@dataclass(frozen=True)
class ClassSummary:
    """One class: bases, class-level constant assigns, async-ness."""

    name: str
    lineno: int
    col: int
    bases: Tuple[str, ...]  # dotted chains as written
    assigns: Tuple[Tuple[str, Optional[str]], ...]  # (name, constant repr)
    has_async_method: bool

    def assign_value(self, name: str) -> Optional[str]:
        for key, value in self.assigns:
            if key == name:
                return value
        return None

    def has_assign(self, name: str) -> bool:
        return any(key == name for key, _ in self.assigns)

    def to_doc(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "lineno": self.lineno,
            "col": self.col,
            "bases": list(self.bases),
            "assigns": [list(a) for a in self.assigns],
            "has_async_method": self.has_async_method,
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "ClassSummary":
        return cls(
            name=doc["name"],
            lineno=doc["lineno"],
            col=doc["col"],
            bases=tuple(doc["bases"]),
            assigns=tuple((a[0], a[1]) for a in doc["assigns"]),
            has_async_method=doc["has_async_method"],
        )


@dataclass(frozen=True)
class AllDecl:
    """One top-level ``__all__`` assignment, pre-evaluated for REP106."""

    lineno: int
    col: int
    kind: str  # "ok" | "dynamic" | "badtype"
    names: Tuple[str, ...]

    def to_doc(self) -> Dict[str, Any]:
        return {
            "lineno": self.lineno,
            "col": self.col,
            "kind": self.kind,
            "names": list(self.names),
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "AllDecl":
        return cls(
            lineno=doc["lineno"],
            col=doc["col"],
            kind=doc["kind"],
            names=tuple(doc["names"]),
        )


@dataclass(frozen=True)
class ImportRecord:
    """One import statement (module- or function-level)."""

    kind: str  # "import" | "from"
    target: Optional[str]  # absolute source module for "from" (resolved)
    names: Tuple[Tuple[str, Optional[str]], ...]  # (name, asname)
    lineno: int
    col: int
    star: bool

    def to_doc(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "target": self.target,
            "names": [list(n) for n in self.names],
            "lineno": self.lineno,
            "col": self.col,
            "star": self.star,
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "ImportRecord":
        return cls(
            kind=doc["kind"],
            target=doc["target"],
            names=tuple((n[0], n[1]) for n in doc["names"]),
            lineno=doc["lineno"],
            col=doc["col"],
            star=doc["star"],
        )


@dataclass
class ModuleSummary:
    """Everything the whole-program passes need from one parsed file."""

    module: Optional[str]
    display_path: str
    is_package: bool
    top_symbols: FrozenSet[str]
    name_loads: FrozenSet[str]
    aliases: Dict[str, str]  # local name -> dotted target
    star_imports: Tuple[str, ...]
    imports: Tuple[ImportRecord, ...]
    all_decls: Tuple[AllDecl, ...]
    functions: Tuple[FunctionSummary, ...]  # flat: module-level + methods + nested
    classes: Tuple[ClassSummary, ...]

    def module_functions(self) -> Iterator[FunctionSummary]:
        """Module top-level defs (no methods, no nested defs)."""
        for fn in self.functions:
            if fn.parent_class is None and not fn.nested:
                yield fn

    def methods_of(self, class_name: str) -> Iterator[FunctionSummary]:
        for fn in self.functions:
            if fn.parent_class == class_name and not fn.nested:
                yield fn

    def class_named(self, name: str) -> Optional[ClassSummary]:
        for cls_sum in self.classes:
            if cls_sum.name == name:
                return cls_sum
        return None

    def to_doc(self) -> Dict[str, Any]:
        return {
            "module": self.module,
            "display_path": self.display_path,
            "is_package": self.is_package,
            "top_symbols": sorted(self.top_symbols),
            "name_loads": sorted(self.name_loads),
            "aliases": dict(self.aliases),
            "star_imports": list(self.star_imports),
            "imports": [i.to_doc() for i in self.imports],
            "all_decls": [a.to_doc() for a in self.all_decls],
            "functions": [f.to_doc() for f in self.functions],
            "classes": [c.to_doc() for c in self.classes],
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "ModuleSummary":
        return cls(
            module=doc["module"],
            display_path=doc["display_path"],
            is_package=doc["is_package"],
            top_symbols=frozenset(doc["top_symbols"]),
            name_loads=frozenset(doc["name_loads"]),
            aliases=dict(doc["aliases"]),
            star_imports=tuple(doc["star_imports"]),
            imports=tuple(ImportRecord.from_doc(i) for i in doc["imports"]),
            all_decls=tuple(AllDecl.from_doc(a) for a in doc["all_decls"]),
            functions=tuple(FunctionSummary.from_doc(f) for f in doc["functions"]),
            classes=tuple(ClassSummary.from_doc(c) for c in doc["classes"]),
        )


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------


def _resolve_relative(
    module: Optional[str], is_package: bool, node: ast.ImportFrom
) -> Optional[str]:
    """Absolute module an ImportFrom pulls from, resolving relative levels."""
    if node.level == 0:
        return node.module
    if module is None:
        return None
    base_parts = module.split(".")
    if not is_package:
        base_parts = base_parts[:-1]
    drop = node.level - 1
    if drop > len(base_parts):
        return None
    if drop:
        base_parts = base_parts[:-drop]
    if node.module:
        base_parts = base_parts + node.module.split(".")
    return ".".join(base_parts) if base_parts else None


def _tree_builder_literal(deco: ast.expr) -> Optional[str]:
    """The name literal of a ``@tree_builder("name", ...)`` decorator."""
    if not isinstance(deco, ast.Call):
        return None
    func = deco.func
    func_name = (
        func.id
        if isinstance(func, ast.Name)
        else func.attr if isinstance(func, ast.Attribute) else None
    )
    if func_name != "tree_builder":
        return None
    if deco.args and isinstance(deco.args[0], ast.Constant):
        value = deco.args[0].value
        if isinstance(value, str):
            return value
    return None


def _arg_info(node: ast.expr, keyword: Optional[str]) -> ArgInfo:
    try:
        text = _trim(ast.unparse(node))
    except Exception:  # pragma: no cover - unparse is total on valid ASTs
        text = "<expr>"
    return ArgInfo(
        text=text,
        name=node.id if isinstance(node, ast.Name) else None,
        keyword=keyword,
        tree=_is_tree_valued(node),
        rng=_is_rng_valued(node),
        lambda_rng=_lambda_touches_rng(node),
    )


class _FunctionCollector:
    """Accumulates one function's call sites, events, and attribute writes."""

    def __init__(self, node: ast.AST, record_events: bool) -> None:
        self.node = node
        self.record_events = record_events
        self.calls: List[CallSite] = []
        self.events: List[Event] = []
        self.self_writes: Set[str] = set()
        self.param_writes: Set[str] = set()
        self.tree_writes: List[Tuple[str, int, int]] = []
        self.bound_names: Set[str] = set()
        self.loaded_rng_names: Set[str] = set()

    def event(self, kind: str, detail: str, node: ast.AST) -> None:
        if self.record_events:
            self.events.append(
                Event(
                    kind=kind,
                    detail=detail,
                    lineno=getattr(node, "lineno", 0),
                    col=getattr(node, "col_offset", 0),
                )
            )


class _Extractor:
    """Single-pass recursive walker producing a :class:`ModuleSummary`.

    Evaluation-order fidelity matters only inside ``async def`` bodies
    (REP109's event stream); elsewhere plain field order is fine.
    """

    def __init__(self, module: Optional[str], is_package: bool) -> None:
        self.module = module
        self.is_package = is_package
        self.aliases: Dict[str, str] = {}
        self.star_imports: List[str] = []
        self.imports: List[ImportRecord] = []
        self.functions: List[FunctionSummary] = []
        self.classes: List[ClassSummary] = []
        self._fn_stack: List[_FunctionCollector] = []
        self._class_stack: List[str] = []
        self._qual_stack: List[str] = []

    # -- imports --------------------------------------------------------

    def _record_import(self, node: ast.Import) -> None:
        names = tuple((alias.name, alias.asname) for alias in node.names)
        self.imports.append(
            ImportRecord(
                kind="import",
                target=None,
                names=names,
                lineno=node.lineno,
                col=node.col_offset,
                star=False,
            )
        )
        for alias in node.names:
            if alias.asname:
                self.aliases[alias.asname] = alias.name
            else:
                head = alias.name.split(".")[0]
                self.aliases.setdefault(head, head)

    def _record_import_from(self, node: ast.ImportFrom) -> None:
        target = _resolve_relative(self.module, self.is_package, node)
        star = any(alias.name == "*" for alias in node.names)
        names = tuple(
            (alias.name, alias.asname)
            for alias in node.names
            if alias.name != "*"
        )
        self.imports.append(
            ImportRecord(
                kind="from",
                target=target,
                names=names,
                lineno=node.lineno,
                col=node.col_offset,
                star=star,
            )
        )
        if star and target:
            self.star_imports.append(target)
        if target:
            for name, asname in names:
                self.aliases[asname or name] = f"{target}.{name}"

    # -- statements -----------------------------------------------------

    def visit_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self.visit_stmt(stmt)

    def visit_stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Import):
            self._record_import(node)
        elif isinstance(node, ast.ImportFrom):
            self._record_import_from(node)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._visit_function(node)
        elif isinstance(node, ast.ClassDef):
            self._visit_class(node)
        elif isinstance(node, ast.Assign):
            # Evaluation order: value first, then the stores.
            self.visit_expr(node.value)
            for target in node.targets:
                self._visit_store_target(target, node)
        elif isinstance(node, ast.AugAssign):
            self._visit_aug_assign(node)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self.visit_expr(node.value)
            self._visit_store_target(node.target, node)
        elif isinstance(node, (ast.Return, ast.Expr)):
            if node.value is not None:
                self.visit_expr(node.value)
        elif isinstance(node, (ast.If, ast.While)):
            self.visit_expr(node.test)
            self.visit_body(node.body)
            self.visit_body(node.orelse)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self.visit_expr(node.iter)
            self._visit_store_target(node.target, node)
            self.visit_body(node.body)
            self.visit_body(node.orelse)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                self.visit_expr(item.context_expr)
                if item.optional_vars is not None:
                    self._visit_store_target(item.optional_vars, node)
            self.visit_body(node.body)
        elif isinstance(node, ast.Try):
            self.visit_body(node.body)
            for handler in node.handlers:
                self.visit_body(handler.body)
            self.visit_body(node.orelse)
            self.visit_body(node.finalbody)
        elif isinstance(node, (ast.Raise, ast.Assert, ast.Delete)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.visit_expr(child)
        elif isinstance(node, (ast.Global, ast.Nonlocal, ast.Pass, ast.Break, ast.Continue)):
            pass
        elif isinstance(node, ast.Match):
            self.visit_expr(node.subject)
            for case in node.cases:
                self.visit_body(case.body)
        else:  # pragma: no cover - future statement kinds degrade gracefully
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.visit_expr(child)
                elif isinstance(child, ast.stmt):
                    self.visit_stmt(child)

    def _visit_aug_assign(self, node: ast.AugAssign) -> None:
        # Execution order: load target, evaluate value, store target —
        # `self.x += await g()` really is a read-await-write.
        target = node.target
        fn = self._fn_stack[-1] if self._fn_stack else None
        if fn is not None and isinstance(target, ast.Attribute):
            chain = _dotted_chain(target)
            if chain.startswith("self.") and chain.count(".") == 1:
                fn.event("read", chain.split(".", 1)[1], node)
        self.visit_expr(node.value)
        self._visit_store_target(target, node)

    def _visit_store_target(self, target: ast.expr, stmt: ast.stmt) -> None:
        fn = self._fn_stack[-1] if self._fn_stack else None
        if isinstance(target, ast.Name):
            if fn is not None:
                fn.bound_names.add(target.id)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._visit_store_target(element, stmt)
            return
        if isinstance(target, ast.Starred):
            self._visit_store_target(target.value, stmt)
            return
        if isinstance(target, ast.Subscript):
            self.visit_expr(target.value)
            self.visit_expr(target.slice)
            return
        if isinstance(target, ast.Attribute):
            base = target.value
            if fn is not None:
                if isinstance(base, ast.Name) and base.id == "self":
                    fn.self_writes.add(target.attr)
                    fn.event("write", target.attr, stmt)
                if isinstance(base, ast.Name) and base.id in self._current_params():
                    fn.param_writes.add(base.id)
                if _is_tree_valued(base):
                    try:
                        text = _trim(ast.unparse(base))
                    except Exception:  # pragma: no cover
                        text = "<expr>"
                    fn.tree_writes.append(
                        (
                            text,
                            getattr(stmt, "lineno", 0),
                            getattr(stmt, "col_offset", 0),
                        )
                    )
            # Reads hidden in the base expression (e.g. self.a.b = x reads self.a).
            self.visit_expr(base)

    def _current_params(self) -> Set[str]:
        if not self._fn_stack:
            return set()
        node = self._fn_stack[-1].node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return set()
        args = node.args
        return {
            a.arg
            for a in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
            )
        }

    # -- expressions ----------------------------------------------------

    def visit_expr(self, node: ast.expr) -> None:
        fn = self._fn_stack[-1] if self._fn_stack else None
        if isinstance(node, ast.Await):
            if isinstance(node.value, ast.Call):
                self._visit_call(node.value, awaited=True)
            else:
                self.visit_expr(node.value)
            if fn is not None:
                fn.event("await", "", node)
            return
        if isinstance(node, ast.Call):
            self._visit_call(node, awaited=False)
            return
        if isinstance(node, ast.Lambda):
            return  # bodies analyzed only via the arg-level rng heuristic
        if isinstance(node, ast.Attribute):
            chain = _dotted_chain(node)
            if (
                fn is not None
                and isinstance(node.ctx, ast.Load)
                and chain.startswith("self.")
                and chain.count(".") == 1
            ):
                fn.event("read", node.attr, node)
            self.visit_expr(node.value)
            return
        if isinstance(node, ast.Name):
            if fn is not None and isinstance(node.ctx, ast.Load):
                if _is_rng_name(node.id):
                    fn.loaded_rng_names.add(node.id)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.visit_expr(child)
            elif isinstance(child, ast.comprehension):
                self.visit_expr(child.iter)
                self._visit_store_target(child.target, ast.Pass())
                for cond in child.ifs:
                    self.visit_expr(cond)

    def _visit_call(self, node: ast.Call, awaited: bool) -> None:
        fn = self._fn_stack[-1] if self._fn_stack else None
        chain = _dotted_chain(node.func)
        if not chain:
            self.visit_expr(node.func)
        elif fn is not None:
            # Record reads hiding in a self.<attr>... receiver chain.
            if chain.startswith("self.") and chain.count(".") >= 2:
                fn.event("read", chain.split(".")[1], node)
            # The receiver of `rng.random()` is a read of `rng` even though
            # no bare Name node is visited — capture detection needs it.
            head = chain.split(".", 1)[0]
            if head != "self" and _is_rng_name(head):
                fn.loaded_rng_names.add(head)
        args = [_arg_info(a, None) for a in node.args if not isinstance(a, ast.Starred)]
        args += [
            _arg_info(kw.value, kw.arg)
            for kw in node.keywords
            if kw.arg is not None
        ]
        if fn is not None:
            fn.calls.append(
                CallSite(
                    chain=chain,
                    lineno=node.lineno,
                    col=node.col_offset,
                    awaited=awaited,
                    args=tuple(args),
                )
            )
            fn.event("call", chain, node)
        for arg in node.args:
            target = arg.value if isinstance(arg, ast.Starred) else arg
            self.visit_expr(target)
        for kw in node.keywords:
            self.visit_expr(kw.value)

    # -- definitions ----------------------------------------------------

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        is_async = isinstance(node, ast.AsyncFunctionDef)
        parent_class = self._class_stack[-1] if self._class_stack else None
        nested = bool(self._fn_stack)
        if nested:
            qual = self._qual_stack[-1] + ".<locals>." + node.name
        elif parent_class is not None:
            qual = f"{parent_class}.{node.name}"
        else:
            qual = node.name

        for deco in node.decorator_list:
            self.visit_expr(deco)

        collector = _FunctionCollector(node, record_events=is_async)
        self._fn_stack.append(collector)
        self._qual_stack.append(qual)
        self.visit_body(node.body)
        self._qual_stack.pop()
        self._fn_stack.pop()

        args = node.args
        pos = tuple(a.arg for a in list(args.posonlyargs) + list(args.args))
        kwonly = tuple(a.arg for a in args.kwonlyargs)
        params = set(pos) | set(kwonly)
        captured_rng = any(
            name not in params and name not in collector.bound_names
            for name in collector.loaded_rng_names
        )
        builder_name = None
        for deco in node.decorator_list:
            builder_name = _tree_builder_literal(deco)
            if builder_name is not None:
                break
        self.functions.append(
            FunctionSummary(
                name=node.name,
                qualname=qual,
                lineno=node.lineno,
                col=node.col_offset,
                is_async=is_async,
                parent_class=parent_class if not nested else None,
                nested=nested,
                decorators=tuple(
                    filter(None, (_dotted_chain(d if not isinstance(d, ast.Call) else d.func) for d in node.decorator_list))
                ),
                builder_name=builder_name,
                pos_params=pos,
                kwonly_params=kwonly,
                has_vararg=args.vararg is not None,
                has_kwarg=args.kwarg is not None,
                calls=tuple(collector.calls),
                events=tuple(collector.events),
                self_attr_writes=tuple(sorted(collector.self_writes)),
                param_attr_writes=tuple(sorted(collector.param_writes)),
                tree_attr_writes=tuple(collector.tree_writes),
                rng_capture=captured_rng,
            )
        )

    def _visit_class(self, node: ast.ClassDef) -> None:
        if self._fn_stack or self._class_stack:
            # Function-local / doubly nested classes: record methods with a
            # best-effort qualname but keep the class out of the flat index.
            self._class_stack.append(node.name)
            self.visit_body(node.body)
            self._class_stack.pop()
            return
        assigns: List[Tuple[str, Optional[str]]] = []
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        value = (
                            repr(stmt.value.value)
                            if isinstance(stmt.value, ast.Constant)
                            else None
                        )
                        assigns.append((target.id, value))
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                value = (
                    repr(stmt.value.value)
                    if isinstance(stmt.value, ast.Constant)
                    else None
                )
                assigns.append((stmt.target.id, value))
        self._class_stack.append(node.name)
        n_before = len(self.functions)
        self.visit_body(node.body)
        self._class_stack.pop()
        has_async = any(
            fn.is_async and fn.parent_class == node.name
            for fn in self.functions[n_before:]
        )
        self.classes.append(
            ClassSummary(
                name=node.name,
                lineno=node.lineno,
                col=node.col_offset,
                bases=tuple(filter(None, (_dotted_chain(b) for b in node.bases))),
                assigns=tuple(assigns),
                has_async_method=has_async,
            )
        )


def _top_level_symbols(tree: ast.Module) -> Set[str]:
    """Names bound at module top level, descending into If/Try/With bodies."""
    symbols: Set[str] = set()

    def collect_targets(target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            symbols.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                collect_targets(element)

    def visit_body(body: List[ast.stmt]) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                symbols.add(node.name)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    symbols.add((alias.asname or alias.name).split(".")[0])
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    collect_targets(target)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                symbols.add(node.target.id)
            elif isinstance(node, ast.If):
                visit_body(node.body)
                visit_body(node.orelse)
            elif isinstance(node, ast.Try):
                visit_body(node.body)
                for handler in node.handlers:
                    visit_body(handler.body)
                visit_body(node.orelse)
                visit_body(node.finalbody)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                visit_body(node.body)

    visit_body(tree.body)
    return symbols


def _all_decls(tree: ast.Module) -> List[AllDecl]:
    decls: List[AllDecl] = []
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = list(node.targets), node.value
        elif isinstance(node, ast.AnnAssign):
            targets, value = [node.target], node.value
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in targets
        ):
            continue
        if value is None:
            continue  # bare annotation, nothing to check
        try:
            names = ast.literal_eval(value)
        except ValueError:
            decls.append(
                AllDecl(node.lineno, node.col_offset, kind="dynamic", names=())
            )
            continue
        if not isinstance(names, (list, tuple)) or not all(
            isinstance(name, str) for name in names
        ):
            decls.append(
                AllDecl(node.lineno, node.col_offset, kind="badtype", names=())
            )
            continue
        decls.append(
            AllDecl(node.lineno, node.col_offset, kind="ok", names=tuple(names))
        )
    return decls


def extract_summary(ctx: "FileContext") -> ModuleSummary:
    """Digest *ctx* (parses it if needed) into a :class:`ModuleSummary`."""
    tree = ctx.tree
    extractor = _Extractor(ctx.module, ctx.is_package)
    extractor.visit_body(tree.body)
    loads = frozenset(
        node.id for node in ast.walk(tree) if isinstance(node, ast.Name)
    )
    return ModuleSummary(
        module=ctx.module,
        display_path=ctx.display_path,
        is_package=ctx.is_package,
        top_symbols=frozenset(_top_level_symbols(tree)),
        name_loads=loads,
        aliases=extractor.aliases,
        star_imports=tuple(extractor.star_imports),
        imports=tuple(extractor.imports),
        all_decls=tuple(_all_decls(tree)),
        functions=tuple(extractor.functions),
        classes=tuple(extractor.classes),
    )


# ----------------------------------------------------------------------
# Import graph
# ----------------------------------------------------------------------


@dataclass
class ImportGraph:
    """Module → imported project modules (aliases, star, lazy imports)."""

    edges: Dict[str, Set[str]] = field(default_factory=dict)

    def imports_of(self, module: str) -> Set[str]:
        return self.edges.get(module, set())

    def to_doc(self) -> Dict[str, List[str]]:
        return {mod: sorted(deps) for mod, deps in sorted(self.edges.items())}


def build_import_graph(project: "Project") -> ImportGraph:
    """Project-module import edges from every file's summary."""
    modules = set(project.modules)
    graph = ImportGraph()
    for ctx in project.files:
        if ctx.module is None:
            continue
        summary = project.summary(ctx)
        deps: Set[str] = set()
        for record in summary.imports:
            if record.kind == "import":
                for name, _ in record.names:
                    parts = name.split(".")
                    for depth in range(len(parts), 0, -1):
                        prefix = ".".join(parts[:depth])
                        if prefix in modules:
                            deps.add(prefix)
                            break
            elif record.target:
                if record.target in modules:
                    deps.add(record.target)
                for name, _ in record.names:
                    candidate = f"{record.target}.{name}"
                    if candidate in modules:
                        deps.add(candidate)
        deps.discard(ctx.module)
        graph.edges[ctx.module] = deps
    return graph


# ----------------------------------------------------------------------
# Call graph
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ResolvedCall:
    """One call site plus what name resolution made of it."""

    site: CallSite
    target: Optional[str]  # node id "module:qualname", or None
    canonical: str  # alias-substituted dotted name ("" when unknown)


@dataclass
class FunctionNode:
    id: str
    module: str
    summary: FunctionSummary


@dataclass
class CallGraph:
    """Name-resolved call graph over every summarized function."""

    nodes: Dict[str, FunctionNode] = field(default_factory=dict)
    calls: Dict[str, List[ResolvedCall]] = field(default_factory=dict)
    classes: Dict[str, ClassSummary] = field(default_factory=dict)  # "mod:Cls"
    class_bases: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    builders: Dict[str, str] = field(default_factory=dict)  # name -> node id
    unresolved: int = 0

    @property
    def edges(self) -> Dict[str, Set[str]]:
        out: Dict[str, Set[str]] = {}
        for caller, resolved in self.calls.items():
            out[caller] = {rc.target for rc in resolved if rc.target is not None}
        return out

    def callers_of(self) -> Dict[str, Set[str]]:
        reverse: Dict[str, Set[str]] = {}
        for caller, resolved in self.calls.items():
            for rc in resolved:
                if rc.target is not None:
                    reverse.setdefault(rc.target, set()).add(caller)
        return reverse

    def resolve_method(self, class_id: str, name: str) -> Optional[str]:
        """Find ``name`` on *class_id* or its project-resolvable bases."""
        seen: Set[str] = set()
        stack = [class_id]
        while stack:
            cid = stack.pop()
            if cid in seen:
                continue
            seen.add(cid)
            candidate = f"{cid.split(':', 1)[0]}:{cid.split(':', 1)[1]}.{name}"
            if candidate in self.nodes:
                return candidate
            stack.extend(self.class_bases.get(cid, ()))
        return None


def _canonicalize(summary: ModuleSummary, chain: str) -> str:
    """Substitute the chain head through the module's import aliases."""
    head, _, rest = chain.partition(".")
    target = summary.aliases.get(head)
    if target is None:
        return chain
    return f"{target}.{rest}" if rest else target


def build_call_graph(project: "Project") -> CallGraph:
    """Resolve every summarized call site against the project's symbols."""
    graph = CallGraph()
    summaries: Dict[str, ModuleSummary] = {}
    for ctx in project.files:
        summary = project.summary(ctx)
        if summary.module is None:
            continue
        summaries[summary.module] = summary
        for fn in summary.functions:
            node_id = f"{summary.module}:{fn.qualname}"
            graph.nodes[node_id] = FunctionNode(
                id=node_id, module=summary.module, summary=fn
            )
            if fn.builder_name is not None:
                graph.builders.setdefault(fn.builder_name, node_id)
        for cls_sum in summary.classes:
            graph.classes[f"{summary.module}:{cls_sum.name}"] = cls_sum

    # Resolve class bases to project class ids (for method lookup / MRO-ish).
    for class_id, cls_sum in graph.classes.items():
        module = class_id.split(":", 1)[0]
        summary = summaries[module]
        resolved_bases: List[str] = []
        for base_chain in cls_sum.bases:
            base_id = _resolve_class(graph, summaries, summary, base_chain)
            if base_id is not None:
                resolved_bases.append(base_id)
        graph.class_bases[class_id] = tuple(resolved_bases)

    for module, summary in summaries.items():
        for fn in summary.functions:
            caller_id = f"{module}:{fn.qualname}"
            resolved: List[ResolvedCall] = []
            for site in fn.calls:
                target, canonical = _resolve_call(
                    graph, summaries, summary, fn, site.chain
                )
                if target is None and site.chain:
                    graph.unresolved += 1
                resolved.append(
                    ResolvedCall(site=site, target=target, canonical=canonical)
                )
            graph.calls[caller_id] = resolved
    return graph


def _resolve_class(
    graph: CallGraph,
    summaries: Dict[str, ModuleSummary],
    summary: ModuleSummary,
    chain: str,
) -> Optional[str]:
    """Resolve a dotted class reference to a project class id."""
    if not chain:
        return None
    if "." not in chain:
        local = f"{summary.module}:{chain}"
        if local in graph.classes:
            return local
        for star_target in summary.star_imports:
            candidate = f"{star_target}:{chain}"
            if candidate in graph.classes:
                return candidate
    canonical = _canonicalize(summary, chain)
    module, _, attr = canonical.rpartition(".")
    if module and attr:
        candidate = f"{module}:{attr}"
        if candidate in graph.classes:
            return candidate
    return None


def _resolve_call(
    graph: CallGraph,
    summaries: Dict[str, ModuleSummary],
    summary: ModuleSummary,
    fn: FunctionSummary,
    chain: str,
) -> Tuple[Optional[str], str]:
    """Resolve one call chain → (node id or None, canonical dotted name)."""
    if not chain:
        return None, ""
    module = summary.module
    assert module is not None
    parts = chain.split(".")

    if parts[0] == "self" and fn.parent_class is not None:
        if len(parts) == 2:
            target = graph.resolve_method(f"{module}:{fn.parent_class}", parts[1])
            return target, chain
        return None, chain

    if len(parts) == 1:
        name = parts[0]
        # A nested def of this very function shadows everything else.
        nested_id = f"{module}:{fn.qualname}.<locals>.{name}"
        if nested_id in graph.nodes:
            return nested_id, chain
        local_fn = f"{module}:{name}"
        if local_fn in graph.nodes and not graph.nodes[local_fn].summary.nested:
            node = graph.nodes[local_fn]
            if node.summary.parent_class is None:
                return local_fn, chain
        if local_fn in graph.classes:
            init = graph.resolve_method(local_fn, "__init__")
            return init, chain
        alias_target = summary.aliases.get(name)
        if alias_target is not None:
            resolved = _project_lookup(graph, summaries, alias_target)
            return resolved, alias_target
        for star_target in summary.star_imports:
            star_summary = summaries.get(star_target)
            if star_summary is None:
                continue
            if any(f.name == name for f in star_summary.module_functions()):
                return f"{star_target}:{name}", f"{star_target}.{name}"
            if star_summary.class_named(name) is not None:
                init = graph.resolve_method(f"{star_target}:{name}", "__init__")
                return init, f"{star_target}.{name}"
        return None, name

    canonical = _canonicalize(summary, chain)
    resolved = _project_lookup(graph, summaries, canonical)
    return resolved, canonical


def _project_lookup(
    graph: CallGraph, summaries: Dict[str, ModuleSummary], canonical: str
) -> Optional[str]:
    """Map a canonical dotted name to a project function/class-init node."""
    parts = canonical.split(".")
    # Longest module prefix wins: "repro.engine.treestate.TreeState.from_tree"
    for depth in range(len(parts) - 1, 0, -1):
        module = ".".join(parts[:depth])
        if module not in summaries:
            continue
        rest = parts[depth:]
        if len(rest) == 1:
            candidate = f"{module}:{rest[0]}"
            if candidate in graph.nodes and not graph.nodes[candidate].summary.nested:
                node = graph.nodes[candidate]
                if node.summary.parent_class is None:
                    return candidate
            if candidate in graph.classes:
                return graph.resolve_method(candidate, "__init__")
        elif len(rest) == 2:
            class_id = f"{module}:{rest[0]}"
            if class_id in graph.classes:
                return graph.resolve_method(class_id, rest[1])
        return None
    return None


# ----------------------------------------------------------------------
# Exports (``repro lint --graph``)
# ----------------------------------------------------------------------


def graph_to_doc(graph: CallGraph, imports: ImportGraph) -> Dict[str, Any]:
    """JSON document for ``repro lint --graph --format json``."""
    return {
        "modules": sorted(imports.edges),
        "imports": imports.to_doc(),
        "functions": sorted(graph.nodes),
        "edges": sorted(
            [caller, target]
            for caller, targets in graph.edges.items()
            for target in targets
        ),
        "builders": dict(sorted(graph.builders.items())),
        "unresolved_calls": graph.unresolved,
        "summary": {
            "n_modules": len(imports.edges),
            "n_functions": len(graph.nodes),
            "n_edges": sum(len(t) for t in graph.edges.values()),
        },
    }


def graph_to_dot(graph: CallGraph) -> str:
    """Graphviz DOT rendering of the resolved call edges."""
    lines = ["digraph repro_lint_callgraph {", "  rankdir=LR;"]
    for caller, targets in sorted(graph.edges.items()):
        for target in sorted(targets):
            lines.append(f'  "{caller}" -> "{target}";')
    lines.append("}")
    return "\n".join(lines) + "\n"
