"""``python -m repro.lint`` — delegates to the lint CLI."""

import sys

from repro.lint.cli import lint_main

if __name__ == "__main__":
    sys.exit(lint_main())
