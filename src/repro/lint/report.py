"""Reporters for lint results: human text and machine JSON."""

from __future__ import annotations

import json
from typing import List, Sequence

from repro.lint.driver import LintResult
from repro.lint.findings import Finding, Severity

__all__ = ["render_json", "render_text"]


def _summary_line(
    fresh: Sequence[Finding],
    grandfathered: Sequence[Finding],
    result: LintResult,
) -> str:
    errors = sum(1 for f in fresh if f.severity is Severity.ERROR)
    warnings = len(fresh) - errors
    parts = [
        f"{result.checked_files} files checked",
        f"{len(fresh)} findings ({errors} errors, {warnings} warnings)",
    ]
    if grandfathered:
        parts.append(f"{len(grandfathered)} baselined")
    if result.suppressed:
        parts.append(f"{result.suppressed} suppressed")
    return ", ".join(parts)


def render_text(
    result: LintResult,
    fresh: Sequence[Finding],
    grandfathered: Sequence[Finding],
) -> str:
    """One line per fresh finding plus a summary; clean runs say so."""
    lines: List[str] = [finding.render() for finding in fresh]
    if lines:
        lines.append("")
    lines.append(_summary_line(fresh, grandfathered, result))
    return "\n".join(lines)


def render_json(
    result: LintResult,
    fresh: Sequence[Finding],
    grandfathered: Sequence[Finding],
) -> str:
    """Full structured report, stable key order, for tooling and CI artifacts."""
    payload = {
        "checked_files": result.checked_files,
        "rules": list(result.rules_run),
        "findings": [finding.to_dict() for finding in fresh],
        "baselined": [finding.to_dict() for finding in grandfathered],
        "suppressed": result.suppressed,
        "summary": {
            "errors": sum(1 for f in fresh if f.severity is Severity.ERROR),
            "warnings": sum(1 for f in fresh if f.severity is Severity.WARNING),
            "total": len(fresh),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)
