"""Reporters for lint results: human text, machine JSON, and SARIF.

SARIF (Static Analysis Results Interchange Format 2.1.0) is the shape CI
annotation tooling ingests: the rule registry becomes
``tool.driver.rules``, fresh findings become failing ``results``, and
baselined findings travel along with an ``external`` suppression so the
upload shows them without failing the gate.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.lint.driver import PARSE_ERROR_RULE, LintResult
from repro.lint.findings import Finding, Severity
from repro.lint.registry import all_rules

__all__ = ["render_json", "render_sarif", "render_text"]


def _summary_line(
    fresh: Sequence[Finding],
    grandfathered: Sequence[Finding],
    result: LintResult,
) -> str:
    errors = sum(1 for f in fresh if f.severity is Severity.ERROR)
    warnings = len(fresh) - errors
    parts = [
        f"{result.checked_files} files checked",
        f"{len(fresh)} findings ({errors} errors, {warnings} warnings)",
    ]
    if grandfathered:
        parts.append(f"{len(grandfathered)} baselined")
    if result.suppressed:
        parts.append(f"{result.suppressed} suppressed")
    if result.cache_hits or result.cache_misses:
        parts.append(
            f"cache {result.cache_hits} hits / {result.cache_misses} misses"
        )
    return ", ".join(parts)


def render_text(
    result: LintResult,
    fresh: Sequence[Finding],
    grandfathered: Sequence[Finding],
) -> str:
    """One line per fresh finding plus a summary; clean runs say so."""
    lines: List[str] = [finding.render() for finding in fresh]
    if lines:
        lines.append("")
    lines.append(_summary_line(fresh, grandfathered, result))
    return "\n".join(lines)


def render_json(
    result: LintResult,
    fresh: Sequence[Finding],
    grandfathered: Sequence[Finding],
) -> str:
    """Full structured report, stable key order, for tooling and CI artifacts."""
    payload = {
        "checked_files": result.checked_files,
        "rules": list(result.rules_run),
        "findings": [finding.to_dict() for finding in fresh],
        "baselined": [finding.to_dict() for finding in grandfathered],
        "suppressed": result.suppressed,
        "summary": {
            "errors": sum(1 for f in fresh if f.severity is Severity.ERROR),
            "warnings": sum(1 for f in fresh if f.severity is Severity.WARNING),
            "total": len(fresh),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _sarif_level(severity: Severity) -> str:
    return "error" if severity is Severity.ERROR else "warning"


def _sarif_result(finding: Finding, suppressed: bool) -> Dict[str, Any]:
    doc: Dict[str, Any] = {
        "ruleId": finding.rule,
        "level": _sarif_level(finding.severity),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }
    if suppressed:
        doc["suppressions"] = [{"kind": "external"}]
    return doc


def render_sarif(
    result: LintResult,
    fresh: Sequence[Finding],
    grandfathered: Sequence[Finding],
) -> str:
    """SARIF 2.1.0 log: fresh findings fail, baselined ride along suppressed."""
    rules: List[Dict[str, Any]] = [
        {
            "id": PARSE_ERROR_RULE,
            "shortDescription": {"text": "file does not parse"},
            "defaultConfiguration": {"level": "error"},
        }
    ]
    for rule in all_rules():
        doc: Dict[str, Any] = {
            "id": rule.id,
            "shortDescription": {"text": rule.summary},
            "defaultConfiguration": {"level": _sarif_level(rule.severity)},
            "properties": {"scope": rule.scope},
        }
        if rule.doc:
            doc["fullDescription"] = {"text": rule.doc}
        rules.append(doc)
    payload = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "docs/static_analysis.md",
                        "rules": rules,
                    }
                },
                "results": (
                    [_sarif_result(f, suppressed=False) for f in fresh]
                    + [_sarif_result(f, suppressed=True) for f in grandfathered]
                ),
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
