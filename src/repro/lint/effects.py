"""Fixpoint effect inference over the lint call graph.

Each function node gets a set of *effects* — facts about what running it
may do — seeded from its own body and propagated along call edges with a
worklist until nothing changes:

``uses-rng``
    Draws randomness: calls ``numpy.random`` primitives outside the
    explicit-Generator allow list, calls methods on an rng-named
    receiver, or calls ``as_rng``/``spawn_rngs``/``default_rng``.
``emits-obs``
    Touches the observability plane (``repro.obs`` call targets or the
    ``OBS`` facade).
``blocks``
    May block the calling thread: ``time.sleep``, socket/DNS calls,
    ``subprocess``, ``urllib``, file IO.  Deliberately **not** propagated
    from ``async def`` callees — awaiting a coroutine suspends instead of
    blocking, and the coroutine's own blocking calls are its own REP108
    finding.
``mutates-frozen``
    Assigns attributes on a tree-valued expression (REP105's heuristic),
    directly or transitively.
``mutates-shared-attr``
    Writes ``self.<attr>``.  Propagated only along same-class
    ``self.method()`` edges — a method that calls a sibling mutator
    effectively mutates shared state, but calling another object's
    method does not make *this* object's state shared.
``unpicklable-capture``
    Closes over a live rng-named name it neither binds nor receives as a
    parameter; shipping such a function across a process boundary either
    fails to pickle or silently forks the stream (REP110's target).

The analysis also computes, per function, which *parameters* it mutates
attributes on (directly or by passing them onward), which is what REP112
needs to follow a frozen tree through aliases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.graph import ArgInfo, CallGraph, CallSite, FunctionSummary, ResolvedCall

__all__ = [
    "BLOCKS",
    "EMITS_OBS",
    "EffectAnalysis",
    "MUTATES_FROZEN",
    "MUTATES_SHARED_ATTR",
    "UNPICKLABLE_CAPTURE",
    "USES_RNG",
    "analyze_effects",
    "arg_param_pairs",
    "is_blocking_chain",
]

USES_RNG = "uses-rng"
EMITS_OBS = "emits-obs"
BLOCKS = "blocks"
MUTATES_FROZEN = "mutates-frozen"
MUTATES_SHARED_ATTR = "mutates-shared-attr"
UNPICKLABLE_CAPTURE = "unpicklable-capture"

#: Canonical dotted names that block the calling thread outright.
_BLOCKING_EXACT = frozenset(
    {
        "time.sleep",
        "os.system",
        "os.waitpid",
        "socket.create_connection",
        "socket.getaddrinfo",
        "socket.gethostbyname",
        "urllib.request.urlopen",
        "open",
        "io.open",
    }
)

#: Canonical prefixes that block (any call into these modules).
_BLOCKING_PREFIXES = ("subprocess.",)

#: Method tails that block regardless of receiver (pathlib-style file IO,
#: socket method calls on a connected socket).
_BLOCKING_TAILS = frozenset(
    {
        "read_text",
        "write_text",
        "read_bytes",
        "write_bytes",
        "recv",
        "sendall",
        "accept",
        "connect",
    }
)

#: ``numpy.random`` members that are fine to *name* (explicit Generator
#: construction), mirroring REP101's allow list.
_ALLOWED_NUMPY_RANDOM = frozenset(
    {
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "MT19937",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "default_rng",
    }
)

#: Longest rendered witness chain (in hops) for findings.
_WITNESS_DEPTH = 6


def _is_rng_name(name: str) -> bool:
    return name == "rng" or name.endswith("_rng")


def is_blocking_chain(chain: str, canonical: str) -> bool:
    """Whether a call chain / canonical name is a known blocking primitive."""
    for name in (canonical, chain):
        if not name:
            continue
        if name in _BLOCKING_EXACT:
            return True
        if any(name.startswith(prefix) for prefix in _BLOCKING_PREFIXES):
            return True
    tail = (canonical or chain).rpartition(".")[2]
    return tail in _BLOCKING_TAILS and "." in (canonical or chain)


def _direct_effects(fn: FunctionSummary, resolved: List[ResolvedCall]) -> Set[str]:
    """Effects evident from one function's own body."""
    effects: Set[str] = set()
    if fn.tree_attr_writes:
        effects.add(MUTATES_FROZEN)
    if fn.self_attr_writes:
        effects.add(MUTATES_SHARED_ATTR)
    if fn.rng_capture:
        effects.add(UNPICKLABLE_CAPTURE)
    for rc in resolved:
        chain, canonical = rc.site.chain, rc.canonical
        if not chain:
            continue
        if is_blocking_chain(chain, canonical):
            effects.add(BLOCKS)
        if chain.startswith("OBS.") or canonical.startswith("repro.obs."):
            effects.add(EMITS_OBS)
        parts = (canonical or chain).split(".")
        if "random" in parts:
            idx = parts.index("random")
            member = parts[idx + 1] if idx + 1 < len(parts) else ""
            if parts[0] in {"numpy", "np"} and member not in _ALLOWED_NUMPY_RANDOM:
                effects.add(USES_RNG)
        head = chain.split(".")[0]
        if "." in chain and _is_rng_name(head):
            effects.add(USES_RNG)
        tail = chain.rpartition(".")[2]
        if tail in {"as_rng", "spawn_rngs", "default_rng"}:
            effects.add(USES_RNG)
    return effects


@dataclass
class EffectAnalysis:
    """Result of the fixpoint: per-node effect sets plus provenance."""

    graph: CallGraph
    effects: Dict[str, Set[str]] = field(default_factory=dict)
    #: (node id, effect) → the callee edge that introduced it (None = own body).
    provenance: Dict[Tuple[str, str], Optional[str]] = field(default_factory=dict)
    #: node id → parameter names it mutates attributes on (transitively).
    mutated_params: Dict[str, Set[str]] = field(default_factory=dict)
    iterations: int = 0

    def effects_of(self, node_id: str) -> Set[str]:
        return self.effects.get(node_id, set())

    def has_effect(self, node_id: str, effect: str) -> bool:
        return effect in self.effects.get(node_id, ())

    def witness(self, node_id: str, effect: str) -> str:
        """A ``f() → g() → time.sleep``-style chain explaining an effect."""
        hops: List[str] = []
        current: Optional[str] = node_id
        seen: Set[str] = set()
        while current is not None and current not in seen and len(hops) < _WITNESS_DEPTH:
            seen.add(current)
            hops.append(_short(current) + "()")
            current = self.provenance.get((current, effect))
        if effect == BLOCKS:
            # Terminate the chain at the primitive when we can name it.
            origin = _last_id(node_id, self.provenance, effect)
            for rc in self.graph.calls.get(origin, []):
                if is_blocking_chain(rc.site.chain, rc.canonical):
                    hops.append(rc.canonical or rc.site.chain)
                    break
        return " → ".join(hops)

    def params_mutated_by(self, node_id: str) -> Set[str]:
        return self.mutated_params.get(node_id, set())


def _short(node_id: str) -> str:
    return node_id.split(":", 1)[1]


def _last_id(
    node_id: str, provenance: Dict[Tuple[str, str], Optional[str]], effect: str
) -> str:
    current = node_id
    seen: Set[str] = set()
    while current not in seen:
        seen.add(current)
        nxt = provenance.get((current, effect))
        if nxt is None:
            return current
        current = nxt
    return current


def arg_param_pairs(
    site: CallSite, callee: FunctionSummary
) -> List[Tuple[ArgInfo, Optional[str]]]:
    """Map each call-site argument to the callee parameter it binds."""
    pairs: List[Tuple[ArgInfo, Optional[str]]] = []
    pos_params = list(callee.pos_params)
    if callee.parent_class is not None and pos_params and pos_params[0] == "self":
        pos_params = pos_params[1:]
    pos_index = 0
    for arg in site.args:
        if arg.keyword is not None:
            param = (
                arg.keyword
                if arg.keyword in callee.pos_params or arg.keyword in callee.kwonly_params
                else (arg.keyword if callee.has_kwarg else None)
            )
            pairs.append((arg, param))
        else:
            param = pos_params[pos_index] if pos_index < len(pos_params) else None
            pairs.append((arg, param))
            pos_index += 1
    return pairs


def analyze_effects(graph: CallGraph) -> EffectAnalysis:
    """Run the worklist fixpoint over *graph* and return the analysis."""
    analysis = EffectAnalysis(graph=graph)
    effects = analysis.effects
    provenance = analysis.provenance
    mutated = analysis.mutated_params

    for node_id, node in graph.nodes.items():
        resolved = graph.calls.get(node_id, [])
        direct = _direct_effects(node.summary, resolved)
        effects[node_id] = set(direct)
        for effect in direct:
            provenance[(node_id, effect)] = None
        mutated[node_id] = set(node.summary.param_attr_writes)

    callers_of = graph.callers_of()
    worklist: List[str] = list(graph.nodes)
    in_worklist: Set[str] = set(worklist)

    while worklist:
        analysis.iterations += 1
        callee_id = worklist.pop()
        in_worklist.discard(callee_id)
        callee_node = graph.nodes[callee_id]
        callee_fx = effects[callee_id]
        callee_mut = mutated[callee_id]

        for caller_id in callers_of.get(callee_id, ()):
            caller_node = graph.nodes[caller_id]
            changed = False
            for effect in callee_fx:
                if effect in effects[caller_id]:
                    continue
                if effect == BLOCKS and callee_node.summary.is_async:
                    continue  # awaiting suspends; it does not block
                if effect == MUTATES_SHARED_ATTR and not _same_class_self_edge(
                    graph, caller_id, callee_id
                ):
                    continue
                if effect == UNPICKLABLE_CAPTURE:
                    continue  # a capture is a property of the callee object
                effects[caller_id].add(effect)
                provenance[(caller_id, effect)] = callee_id
                changed = True
            # Parameter-mutation flow: an argument bound to a mutated
            # callee parameter marks the caller's own parameter (if the
            # argument is a bare name that is one).
            if callee_mut:
                caller_params = set(caller_node.summary.params)
                for rc in graph.calls.get(caller_id, []):
                    if rc.target != callee_id:
                        continue
                    for arg, param in arg_param_pairs(rc.site, callee_node.summary):
                        if (
                            param in callee_mut
                            and arg.name is not None
                            and arg.name in caller_params
                            and arg.name not in mutated[caller_id]
                        ):
                            mutated[caller_id].add(arg.name)
                            changed = True
            if changed and caller_id not in in_worklist:
                worklist.append(caller_id)
                in_worklist.add(caller_id)
    return analysis


def _same_class_self_edge(graph: CallGraph, caller_id: str, callee_id: str) -> bool:
    """Whether caller→callee is a ``self.method()`` edge within one class."""
    caller = graph.nodes[caller_id].summary
    callee = graph.nodes[callee_id].summary
    if caller.parent_class is None or callee.parent_class is None:
        return False
    if graph.nodes[caller_id].module != graph.nodes[callee_id].module:
        return False
    for rc in graph.calls.get(caller_id, []):
        if rc.target == callee_id and rc.site.chain.startswith("self."):
            return True
    return False
