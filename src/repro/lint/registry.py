"""Lint-rule registry: ``@lint_rule(id, severity)`` and rule lookup.

Mirrors the tree-builder registry's shape (:mod:`repro.engine.registry`):
rules self-register at decoration time, the stock rule modules are imported
lazily on first lookup, and consumers address rules by their stable string
id.  A rule is a generator over ``(ast_node, message)`` pairs; the driver
stamps rule id, severity, file, and location onto each yielded pair to form
:class:`~repro.lint.findings.Finding` objects.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterable, Optional, Tuple

from repro.lint.findings import Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.lint.context import FileContext, Project

__all__ = [
    "LintRule",
    "RuleCheck",
    "UnknownRuleError",
    "all_rules",
    "get_rule",
    "lint_rule",
]

#: A rule implementation: yields ``(node, message)`` for each violation in
#: *ctx*; *project* provides cross-file context (symbol tables, registries).
RuleCheck = Callable[
    ["FileContext", "Project"], Iterable[Tuple[ast.AST, str]]
]


class UnknownRuleError(KeyError):
    """Raised when resolving a rule id that is not registered."""


@dataclass(frozen=True)
class LintRule:
    """A registered rule: id, severity, one-line summary, and the checker."""

    id: str
    severity: Severity
    summary: str
    check: RuleCheck

    def describe(self) -> str:
        return f"{self.id} [{self.severity}] {self.summary}"


_RULES: Dict[str, LintRule] = {}
_DEFAULTS_LOADED = False


def _ensure_defaults() -> None:
    global _DEFAULTS_LOADED
    if not _DEFAULTS_LOADED:
        _DEFAULTS_LOADED = True
        # Imported for its registration side effects.
        import repro.lint.rules  # noqa: F401


def lint_rule(
    rule_id: str,
    severity: Severity,
    summary: Optional[str] = None,
) -> Callable[[RuleCheck], RuleCheck]:
    """Decorator registering *fn* as the checker for *rule_id*.

    ``summary`` defaults to the first line of the checker's docstring.
    Duplicate ids are an error: rule ids are the suppression/baseline
    vocabulary and must stay unambiguous.
    """

    def decorator(fn: RuleCheck) -> RuleCheck:
        if rule_id in _RULES:
            raise ValueError(f"lint rule {rule_id!r} is already registered")
        doc = summary
        if doc is None:
            doc_lines = (fn.__doc__ or "").strip().splitlines()
            doc = doc_lines[0] if doc_lines else rule_id
        _RULES[rule_id] = LintRule(
            id=rule_id, severity=severity, summary=doc, check=fn
        )
        return fn

    return decorator


def all_rules() -> Tuple[LintRule, ...]:
    """Every registered rule, sorted by id."""
    _ensure_defaults()
    return tuple(_RULES[rule_id] for rule_id in sorted(_RULES))


def get_rule(rule_id: str) -> LintRule:
    """Resolve a rule by id; raises :class:`UnknownRuleError`."""
    _ensure_defaults()
    try:
        return _RULES[rule_id]
    except KeyError:
        raise UnknownRuleError(
            f"unknown lint rule {rule_id!r}; available: " + ", ".join(sorted(_RULES))
        ) from None
