"""Lint-rule registry: ``@lint_rule(id, severity)`` and rule lookup.

Mirrors the tree-builder registry's shape (:mod:`repro.engine.registry`):
rules self-register at decoration time, the stock rule modules are imported
lazily on first lookup, and consumers address rules by their stable string
id.  A rule is a generator over ``(ast_node, message)`` pairs; the driver
stamps rule id, severity, file, and location onto each yielded pair to form
:class:`~repro.lint.findings.Finding` objects.
"""

from __future__ import annotations

import ast
import inspect
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterable, Optional, Tuple

from repro.lint.findings import Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.lint.context import FileContext, Project

__all__ = [
    "LintRule",
    "RuleCheck",
    "UnknownRuleError",
    "all_rules",
    "get_rule",
    "lint_rule",
]

#: A rule implementation: yields ``(node, message)`` for each violation in
#: *ctx*; *project* provides cross-file context (symbol tables, registries).
RuleCheck = Callable[
    ["FileContext", "Project"], Iterable[Tuple[ast.AST, str]]
]


class UnknownRuleError(KeyError):
    """Raised when resolving a rule id that is not registered."""


@dataclass(frozen=True)
class LintRule:
    """A registered rule: id, severity, summary, scope, and the checker.

    ``scope`` partitions the run for the incremental cache:

    * ``"file"`` — the rule reads only the one file it is visiting, so
      its findings can be cached per file and replayed on a warm run.
    * ``"project"`` — the rule reads cross-file state (symbol tables,
      call graph, effects) and must re-run whenever *any* file changed;
      it works from module summaries, never raw ASTs.

    ``doc`` is the checker's full docstring — the shared source of truth
    for ``repro lint --explain`` and ``docs/static_analysis.md``.
    """

    id: str
    severity: Severity
    summary: str
    check: RuleCheck
    scope: str = "file"
    doc: str = ""

    def describe(self) -> str:
        return f"{self.id} [{self.severity}] {self.summary}"


_RULES: Dict[str, LintRule] = {}
_DEFAULTS_LOADED = False


def _ensure_defaults() -> None:
    global _DEFAULTS_LOADED
    if not _DEFAULTS_LOADED:
        _DEFAULTS_LOADED = True
        # Imported for its registration side effects.
        import repro.lint.rules  # noqa: F401


def lint_rule(
    rule_id: str,
    severity: Severity,
    summary: Optional[str] = None,
    *,
    scope: str = "file",
) -> Callable[[RuleCheck], RuleCheck]:
    """Decorator registering *fn* as the checker for *rule_id*.

    ``summary`` defaults to the first line of the checker's docstring;
    the full docstring is kept as the rule's ``doc`` (the ``--explain``
    text).  ``scope`` is ``"file"`` (cacheable per file) or ``"project"``
    (cross-file; reruns whole-program).  Duplicate ids are an error: rule
    ids are the suppression/baseline vocabulary and must stay unambiguous.
    """
    if scope not in ("file", "project"):
        raise ValueError(f"scope must be 'file' or 'project', got {scope!r}")

    def decorator(fn: RuleCheck) -> RuleCheck:
        if rule_id in _RULES:
            raise ValueError(f"lint rule {rule_id!r} is already registered")
        full_doc = inspect.cleandoc(fn.__doc__ or "")
        one_line = summary
        if one_line is None:
            doc_lines = full_doc.splitlines()
            one_line = doc_lines[0] if doc_lines else rule_id
        _RULES[rule_id] = LintRule(
            id=rule_id,
            severity=severity,
            summary=one_line,
            check=fn,
            scope=scope,
            doc=full_doc,
        )
        return fn

    return decorator


def all_rules() -> Tuple[LintRule, ...]:
    """Every registered rule, sorted by id."""
    _ensure_defaults()
    return tuple(_RULES[rule_id] for rule_id in sorted(_RULES))


def get_rule(rule_id: str) -> LintRule:
    """Resolve a rule by id; raises :class:`UnknownRuleError`."""
    _ensure_defaults()
    try:
        return _RULES[rule_id]
    except KeyError:
        raise UnknownRuleError(
            f"unknown lint rule {rule_id!r}; available: " + ", ".join(sorted(_RULES))
        ) from None
