"""Committed baseline of grandfathered findings.

The baseline is a JSON file listing fingerprints (rule, path, message — no
line numbers, so it survives unrelated edits) of findings that predate a
rule's introduction.  ``repro lint`` subtracts baselined findings from its
exit status: old debt is visible but non-fatal, new findings fail.  The
workflow is a ratchet — regenerate with ``--write-baseline`` only when
introducing a rule, then shrink the file as debt is paid down; it should
never grow.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.lint.findings import Finding

__all__ = ["Baseline", "BaselineError", "DEFAULT_BASELINE_NAME"]

#: Filename probed in the working directory when ``--baseline`` is not given.
DEFAULT_BASELINE_NAME = "lint-baseline.json"

_FORMAT_VERSION = 1


class BaselineError(ValueError):
    """Raised when a baseline file is malformed."""


@dataclass
class Baseline:
    """A multiset of grandfathered finding fingerprints."""

    counts: Counter = field(default_factory=Counter)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        """Read *path*; a missing file is an empty baseline."""
        file_path = Path(path)
        if not file_path.exists():
            return cls()
        try:
            data = json.loads(file_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise BaselineError(f"baseline {file_path} is not valid JSON: {exc}") from exc
        if not isinstance(data, dict) or data.get("version") != _FORMAT_VERSION:
            raise BaselineError(
                f"baseline {file_path} has unsupported format "
                f"(expected version {_FORMAT_VERSION})"
            )
        entries = data.get("findings")
        if not isinstance(entries, list):
            raise BaselineError(f"baseline {file_path}: 'findings' must be a list")
        counts: Counter = Counter()
        for entry in entries:
            if not isinstance(entry, dict) or not {
                "rule",
                "path",
                "message",
            } <= entry.keys():
                raise BaselineError(
                    f"baseline {file_path}: each finding needs rule/path/message"
                )
            counts[(entry["rule"], entry["path"], entry["message"])] += 1
        return cls(counts=counts)

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        return cls(counts=Counter(f.fingerprint for f in findings))

    def write(self, path: Union[str, Path]) -> None:
        """Serialize to *path*, sorted for stable diffs."""
        entries: List[Dict[str, str]] = []
        for (rule, fpath, message), count in sorted(self.counts.items()):
            entries.extend(
                {"rule": rule, "path": fpath, "message": message}
                for _ in range(count)
            )
        payload = {"version": _FORMAT_VERSION, "findings": entries}
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    def split(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Partition *findings* into ``(fresh, grandfathered)``.

        Each baseline entry absorbs at most its multiplicity, so adding a
        second identical violation to a file with one baselined instance
        still fails the gate.
        """
        remaining = Counter(self.counts)
        fresh: List[Finding] = []
        grandfathered: List[Finding] = []
        for finding in findings:
            if remaining[finding.fingerprint] > 0:
                remaining[finding.fingerprint] -= 1
                grandfathered.append(finding)
            else:
                fresh.append(finding)
        return fresh, grandfathered
