"""Parsed-file and whole-project context handed to lint rules.

Two layers live here:

* :class:`FileContext` — one source file.  Loading (read + content hash)
  is separated from parsing: the AST is built lazily on first access to
  :attr:`~FileContext.tree`, so a warm incremental run that answers every
  file from the summary cache never parses at all (``parsed`` stays
  ``False`` and the driver's re-parse counter can prove it).
* :class:`Project` — all files of one lint run plus cached cross-file
  lookups.  The lookups are backed by :class:`~repro.lint.graph.ModuleSummary`
  digests (attached from the cache or extracted on demand), so cross-file
  rules (builder-registry wiring, import resolution, the interprocedural
  passes) read from serialized summaries rather than re-walking ASTs.
"""

from __future__ import annotations

import ast
import hashlib
import os
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.lint.effects import EffectAnalysis
    from repro.lint.graph import CallGraph, ImportGraph, ModuleSummary

__all__ = ["FileContext", "Project", "module_name_for"]

#: Top of the package tree: paths are mapped to dotted module names by
#: locating this component, so fixtures in temp dirs lint identically.
ROOT_PACKAGE = "repro"


def module_name_for(path: Path) -> Optional[str]:
    """Dotted module name of *path*, or ``None`` if outside the package tree.

    Keyed on the last ``repro`` path component so both the real tree
    (``src/repro/core/lp.py`` → ``repro.core.lp``) and synthetic test trees
    (``/tmp/x/src/repro/core/bad.py``) resolve.  ``__init__.py`` maps to its
    package name.
    """
    parts = list(path.resolve().parts)
    if ROOT_PACKAGE not in parts:
        return None
    idx = len(parts) - 1 - parts[::-1].index(ROOT_PACKAGE)
    module_parts = parts[idx:]
    leaf = module_parts[-1]
    if leaf.endswith(".py"):
        leaf = leaf[: -len(".py")]
    if leaf == "__init__":
        module_parts = module_parts[:-1]
    else:
        module_parts[-1] = leaf
    return ".".join(module_parts)


def _display_path(path: Path) -> str:
    """Path as reported/fingerprinted: cwd-relative posix when possible."""
    resolved = path.resolve()
    rel = os.path.relpath(resolved, os.getcwd())
    if rel.startswith(".."):
        return resolved.as_posix()
    return Path(rel).as_posix()


class FileContext:
    """One source file, parsed lazily.

    Attributes:
        path: The file on disk.
        display_path: Normalized path used in reports and fingerprints.
        module: Dotted module name, or ``None`` outside the package tree.
        is_package: Whether the file is a package ``__init__.py``.
        source: Raw text.
        lines: ``source`` split into physical lines.
        content_hash: ``sha256`` hex digest of the raw bytes (cache key).
    """

    def __init__(
        self,
        path: Path,
        display_path: str,
        module: Optional[str],
        is_package: bool,
        source: str,
        lines: List[str],
        content_hash: str,
        tree: Optional[ast.Module] = None,
    ) -> None:
        self.path = path
        self.display_path = display_path
        self.module = module
        self.is_package = is_package
        self.source = source
        self.lines = lines
        self.content_hash = content_hash
        self._tree = tree

    @classmethod
    def load(cls, path: Path) -> "FileContext":
        """Read and hash *path* without parsing it."""
        raw = path.read_bytes()
        source = raw.decode("utf-8")
        return cls(
            path=path,
            display_path=_display_path(path),
            module=module_name_for(path),
            is_package=path.name == "__init__.py",
            source=source,
            lines=source.splitlines(),
            content_hash=hashlib.sha256(raw).hexdigest(),
        )

    @classmethod
    def parse(cls, path: Path) -> "FileContext":
        """Read and parse *path*; raises ``SyntaxError`` on unparsable input."""
        ctx = cls.load(path)
        ctx.tree  # force the parse so errors surface here
        return ctx

    @property
    def tree(self) -> ast.Module:
        """The parsed AST; parsing happens on first access."""
        if self._tree is None:
            self._tree = ast.parse(self.source, filename=str(self.path))
        return self._tree

    @property
    def parsed(self) -> bool:
        """Whether this file's AST has been built in this run."""
        return self._tree is not None

    def in_package(self, *packages: str) -> bool:
        """Whether this module lives in (or is) one of the dotted *packages*."""
        if self.module is None:
            return False
        return any(
            self.module == pkg or self.module.startswith(pkg + ".")
            for pkg in packages
        )


class Project:
    """All files of one lint run plus cached cross-file lookups.

    Cross-file queries read from per-module summaries.  A summary is
    attached by the driver when the incremental cache has a current one
    (:meth:`attach_summary`), otherwise extracted lazily from the AST on
    first use (:meth:`summary`).  The whole-program structures — import
    graph, call graph, effect analysis — are built once per run from
    those summaries and shared by every interprocedural rule.
    """

    def __init__(self, files: List[FileContext]) -> None:
        self.files = files
        self.modules: Dict[str, FileContext] = {
            ctx.module: ctx for ctx in files if ctx.module is not None
        }
        self._summaries: Dict[str, "ModuleSummary"] = {}
        self._builders: Optional[Dict[str, List[Tuple[str, int]]]] = None
        self._call_graph: Optional["CallGraph"] = None
        self._import_graph: Optional["ImportGraph"] = None
        self._effects: Optional["EffectAnalysis"] = None

    # -- summaries ------------------------------------------------------

    def attach_summary(self, ctx: FileContext, summary: "ModuleSummary") -> None:
        """Install a (cached) summary so :meth:`summary` never parses *ctx*."""
        self._summaries[ctx.display_path] = summary

    def summary(self, ctx: FileContext) -> "ModuleSummary":
        """The module summary for *ctx*, extracting it from the AST if needed."""
        cached = self._summaries.get(ctx.display_path)
        if cached is None:
            from repro.lint.graph import extract_summary

            cached = extract_summary(ctx)
            self._summaries[ctx.display_path] = cached
        return cached

    def module_summary(self, module: str) -> Optional["ModuleSummary"]:
        """Summary of a dotted *module* name, or ``None`` if not in this run."""
        ctx = self.modules.get(module)
        if ctx is None:
            return None
        return self.summary(ctx)

    # -- symbol-table queries (kept API-compatible with PR 4) -----------

    def top_level_symbols(self, module: str) -> Optional[Set[str]]:
        """Top-level bound names of *module*, or ``None`` if not in this run."""
        summary = self.module_summary(module)
        if summary is None:
            return None
        return set(summary.top_symbols)

    def name_loads(self, module: str) -> Optional[Set[str]]:
        """Every ``Name`` referenced anywhere in *module* (any context)."""
        summary = self.module_summary(module)
        if summary is None:
            return None
        return set(summary.name_loads)

    def tree_builder_registrations(self) -> Dict[str, List[Tuple[str, int]]]:
        """Map of ``@tree_builder`` name literal → [(display_path, line), ...]."""
        if self._builders is None:
            registrations: Dict[str, List[Tuple[str, int]]] = {}
            for ctx in self.files:
                summary = self.summary(ctx)
                for fn in summary.functions:
                    if fn.builder_name is not None:
                        registrations.setdefault(fn.builder_name, []).append(
                            (ctx.display_path, fn.lineno)
                        )
            self._builders = registrations
        return self._builders

    # -- whole-program analyses -----------------------------------------

    def import_graph(self) -> "ImportGraph":
        """The project import graph (built once per run)."""
        if self._import_graph is None:
            from repro.lint.graph import build_import_graph

            self._import_graph = build_import_graph(self)
        return self._import_graph

    def call_graph(self) -> "CallGraph":
        """The name-resolved call graph (built once per run)."""
        if self._call_graph is None:
            from repro.lint.graph import build_call_graph

            self._call_graph = build_call_graph(self)
        return self._call_graph

    def effect_analysis(self) -> "EffectAnalysis":
        """The fixpoint effect analysis over the call graph (once per run)."""
        if self._effects is None:
            from repro.lint.effects import analyze_effects

            self._effects = analyze_effects(self.call_graph())
        return self._effects
