"""Parsed-file and whole-project context handed to lint rules.

The driver parses every file once up front and wraps the results in a
:class:`Project` so that cross-file rules (builder-registry wiring, import
resolution) read from one shared, cached symbol table instead of re-parsing
on every lookup.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

__all__ = ["FileContext", "Project", "module_name_for"]

#: Top of the package tree: paths are mapped to dotted module names by
#: locating this component, so fixtures in temp dirs lint identically.
ROOT_PACKAGE = "repro"


def module_name_for(path: Path) -> Optional[str]:
    """Dotted module name of *path*, or ``None`` if outside the package tree.

    Keyed on the last ``repro`` path component so both the real tree
    (``src/repro/core/lp.py`` → ``repro.core.lp``) and synthetic test trees
    (``/tmp/x/src/repro/core/bad.py``) resolve.  ``__init__.py`` maps to its
    package name.
    """
    parts = list(path.resolve().parts)
    if ROOT_PACKAGE not in parts:
        return None
    idx = len(parts) - 1 - parts[::-1].index(ROOT_PACKAGE)
    module_parts = parts[idx:]
    leaf = module_parts[-1]
    if leaf.endswith(".py"):
        leaf = leaf[: -len(".py")]
    if leaf == "__init__":
        module_parts = module_parts[:-1]
    else:
        module_parts[-1] = leaf
    return ".".join(module_parts)


def _display_path(path: Path) -> str:
    """Path as reported/fingerprinted: cwd-relative posix when possible."""
    resolved = path.resolve()
    rel = os.path.relpath(resolved, os.getcwd())
    if rel.startswith(".."):
        return resolved.as_posix()
    return Path(rel).as_posix()


@dataclass
class FileContext:
    """One parsed source file.

    Attributes:
        path: The file on disk.
        display_path: Normalized path used in reports and fingerprints.
        module: Dotted module name, or ``None`` outside the package tree.
        is_package: Whether the file is a package ``__init__.py``.
        source: Raw text.
        lines: ``source`` split into physical lines.
        tree: The parsed AST.
    """

    path: Path
    display_path: str
    module: Optional[str]
    is_package: bool
    source: str
    lines: List[str]
    tree: ast.Module

    @classmethod
    def parse(cls, path: Path) -> "FileContext":
        """Read and parse *path*; raises ``SyntaxError`` on unparsable input."""
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return cls(
            path=path,
            display_path=_display_path(path),
            module=module_name_for(path),
            is_package=path.name == "__init__.py",
            source=source,
            lines=source.splitlines(),
            tree=tree,
        )

    def in_package(self, *packages: str) -> bool:
        """Whether this module lives in (or is) one of the dotted *packages*."""
        if self.module is None:
            return False
        return any(
            self.module == pkg or self.module.startswith(pkg + ".")
            for pkg in packages
        )


def _top_level_symbols(tree: ast.Module) -> Set[str]:
    """Names bound at module top level, descending into If/Try/With bodies."""
    symbols: Set[str] = set()

    def visit_body(body: List[ast.stmt]) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                symbols.add(node.name)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    symbols.add((alias.asname or alias.name).split(".")[0])
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    _collect_targets(target)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                symbols.add(node.target.id)
            elif isinstance(node, ast.If):
                visit_body(node.body)
                visit_body(node.orelse)
            elif isinstance(node, ast.Try):
                visit_body(node.body)
                for handler in node.handlers:
                    visit_body(handler.body)
                visit_body(node.orelse)
                visit_body(node.finalbody)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                visit_body(node.body)

    def _collect_targets(target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            symbols.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                _collect_targets(element)

    visit_body(tree.body)
    return symbols


@dataclass
class Project:
    """All files of one lint run plus cached cross-file lookups."""

    files: List[FileContext]
    modules: Dict[str, FileContext] = field(init=False)
    _symbols: Dict[str, Set[str]] = field(init=False, default_factory=dict)
    _loads: Dict[str, Set[str]] = field(init=False, default_factory=dict)
    _builders: Optional[Dict[str, List[Tuple[str, int]]]] = field(
        init=False, default=None
    )

    def __post_init__(self) -> None:
        self.modules = {
            ctx.module: ctx for ctx in self.files if ctx.module is not None
        }

    def top_level_symbols(self, module: str) -> Optional[Set[str]]:
        """Top-level bound names of *module*, or ``None`` if not in this run."""
        ctx = self.modules.get(module)
        if ctx is None:
            return None
        if module not in self._symbols:
            self._symbols[module] = _top_level_symbols(ctx.tree)
        return self._symbols[module]

    def name_loads(self, module: str) -> Optional[Set[str]]:
        """Every ``Name`` referenced anywhere in *module* (any context)."""
        ctx = self.modules.get(module)
        if ctx is None:
            return None
        if module not in self._loads:
            self._loads[module] = {
                node.id for node in ast.walk(ctx.tree) if isinstance(node, ast.Name)
            }
        return self._loads[module]

    def tree_builder_registrations(self) -> Dict[str, List[Tuple[str, int]]]:
        """Map of ``@tree_builder`` name literal → [(display_path, line), ...]."""
        if self._builders is None:
            registrations: Dict[str, List[Tuple[str, int]]] = {}
            for ctx in self.files:
                for node in ast.walk(ctx.tree):
                    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        continue
                    for deco in node.decorator_list:
                        name = _tree_builder_name(deco)
                        if name is not None:
                            registrations.setdefault(name, []).append(
                                (ctx.display_path, node.lineno)
                            )
            self._builders = registrations
        return self._builders


def _tree_builder_name(deco: ast.expr) -> Optional[str]:
    """The name literal of a ``@tree_builder("name", ...)`` decorator, if any."""
    if not isinstance(deco, ast.Call):
        return None
    func = deco.func
    func_name = (
        func.id
        if isinstance(func, ast.Name)
        else func.attr if isinstance(func, ast.Attribute) else None
    )
    if func_name != "tree_builder":
        return None
    if deco.args and isinstance(deco.args[0], ast.Constant):
        value = deco.args[0].value
        if isinstance(value, str):
            return value
    return None
