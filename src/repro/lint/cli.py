"""``repro lint`` / ``mrlc lint`` — the repo-invariant checker's CLI.

Usage::

    repro lint                       # lint src/ against lint-baseline.json
    repro lint src/repro/core        # lint a subtree
    repro lint --format json src/    # machine-readable report
    repro lint --select REP101 src/  # run one rule
    repro lint --list-rules          # rule table
    repro lint --write-baseline src/ # grandfather current findings

Exit codes: 0 clean (modulo baseline), 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.baseline import DEFAULT_BASELINE_NAME, Baseline, BaselineError
from repro.lint.driver import lint_paths
from repro.lint.registry import UnknownRuleError, all_rules
from repro.lint.report import render_json, render_text

__all__ = ["build_lint_parser", "lint_main"]


def build_lint_parser() -> argparse.ArgumentParser:
    """Construct the ``repro lint`` argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "AST-based invariant checker for the reproduction: RNG "
            "discipline, obs guarding, float-equality bans, builder-registry "
            "contract, frozen-tree mutation, export drift."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        type=str,
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        type=str,
        default=None,
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--baseline",
        type=str,
        default=None,
        help=f"baseline file (default: ./{DEFAULT_BASELINE_NAME} if present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report all findings as fresh",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="grandfather the current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _split_ids(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def lint_main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_lint_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(rule.describe())
        return 0

    if args.no_baseline and (args.baseline or args.write_baseline):
        parser.error("--no-baseline conflicts with --baseline/--write-baseline")

    try:
        result = lint_paths(
            args.paths,
            select=_split_ids(args.select),
            ignore=_split_ids(args.ignore),
        )
    except UnknownRuleError as exc:
        parser.error(str(exc.args[0]))
    except FileNotFoundError as exc:
        parser.error(str(exc))

    findings = result.all_findings

    baseline_path = Path(args.baseline) if args.baseline else Path(DEFAULT_BASELINE_NAME)
    if args.write_baseline:
        Baseline.from_findings(findings).write(baseline_path)
        print(f"wrote {len(findings)} grandfathered findings to {baseline_path}")
        return 0

    if args.no_baseline:
        baseline = Baseline()
    elif args.baseline:
        if not baseline_path.exists():
            parser.error(f"baseline file not found: {baseline_path}")
        try:
            baseline = Baseline.load(baseline_path)
        except BaselineError as exc:
            parser.error(str(exc))
    else:
        try:
            baseline = Baseline.load(baseline_path)  # missing default -> empty
        except BaselineError as exc:
            parser.error(str(exc))

    fresh, grandfathered = baseline.split(findings)
    renderer = render_json if args.format == "json" else render_text
    print(renderer(result, fresh, grandfathered))
    return 1 if fresh else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(lint_main())
