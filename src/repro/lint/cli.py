"""``repro lint`` / ``mrlc lint`` — the repo-invariant checker's CLI.

Usage::

    repro lint                       # lint src/ against lint-baseline.json
    repro lint src/repro/core        # lint a subtree
    repro lint --format json src/    # machine-readable report
    repro lint --format sarif src/   # SARIF 2.1.0 for CI annotation
    repro lint --cache src/          # incremental (.repro-lint-cache/)
    repro lint --select REP101 src/  # run one rule
    repro lint --graph src/          # export the call graph (json or dot)
    repro lint --explain REP108      # rule doc, rationale, fix pattern
    repro lint --list-rules          # rule table
    repro lint --write-baseline src/ # grandfather current findings

Exit codes: 0 clean (modulo baseline), 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.baseline import DEFAULT_BASELINE_NAME, Baseline, BaselineError
from repro.lint.driver import lint_paths
from repro.lint.registry import UnknownRuleError, all_rules, get_rule
from repro.lint.report import render_json, render_sarif, render_text

__all__ = ["build_lint_parser", "lint_main"]


def build_lint_parser() -> argparse.ArgumentParser:
    """Construct the ``repro lint`` argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Static analysis for the reproduction: per-file invariants (RNG "
            "discipline, obs guarding, float-equality bans, frozen-tree "
            "mutation) plus whole-program passes (builder-registry contract, "
            "export drift, async blocking reachability, await races, "
            "process-boundary RNG discipline, backend parity, aliased "
            "mutation)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif", "dot"],
        default="text",
        help=(
            "report format (default: text); sarif emits SARIF 2.1.0, "
            "dot is only meaningful with --graph"
        ),
    )
    parser.add_argument(
        "--select",
        type=str,
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        type=str,
        default=None,
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help=(
            "enable the content-hash incremental cache "
            "(default dir: .repro-lint-cache)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        metavar="DIR",
        help="cache directory (implies --cache)",
    )
    parser.add_argument(
        "--graph",
        action="store_true",
        help=(
            "export the import/call graph instead of linting "
            "(--format json for the full document, dot for Graphviz edges)"
        ),
    )
    parser.add_argument(
        "--explain",
        type=str,
        default=None,
        metavar="RULE",
        help="print one rule's full documentation (rationale + fix pattern)",
    )
    parser.add_argument(
        "--baseline",
        type=str,
        default=None,
        help=f"baseline file (default: ./{DEFAULT_BASELINE_NAME} if present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report all findings as fresh",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="grandfather the current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _split_ids(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def _explain(rule_id: str, parser: argparse.ArgumentParser) -> int:
    try:
        rule = get_rule(rule_id)
    except UnknownRuleError as exc:
        parser.error(str(exc.args[0]))
    header = f"{rule.id} [{rule.severity}] ({rule.scope}-scope)"
    print(header)
    print("=" * len(header))
    print(rule.doc or rule.summary)
    return 0


def _export_graph(paths: List[str], fmt: str, parser: argparse.ArgumentParser) -> int:
    import json

    from repro.lint.driver import build_project
    from repro.lint.graph import graph_to_doc, graph_to_dot

    try:
        project, parse_errors = build_project(paths)
    except FileNotFoundError as exc:
        parser.error(str(exc))
    graph = project.call_graph()
    if fmt == "dot":
        print(graph_to_dot(graph), end="")
    else:
        doc = graph_to_doc(graph, project.import_graph())
        if parse_errors:
            doc["parse_errors"] = [f.to_dict() for f in parse_errors]
        print(json.dumps(doc, indent=2, sort_keys=True))
    return 0


def lint_main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_lint_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(rule.describe())
        return 0

    if args.explain:
        return _explain(args.explain, parser)

    if args.graph:
        fmt = "json" if args.format == "text" else args.format
        if fmt not in ("json", "dot"):
            parser.error("--graph supports --format json or dot")
        return _export_graph(args.paths, fmt, parser)

    if args.format == "dot":
        parser.error("--format dot requires --graph")

    if args.no_baseline and (args.baseline or args.write_baseline):
        parser.error("--no-baseline conflicts with --baseline/--write-baseline")

    cache_dir: Optional[str] = args.cache_dir
    if cache_dir is None and args.cache:
        from repro.lint.cache import DEFAULT_CACHE_DIR

        cache_dir = DEFAULT_CACHE_DIR

    try:
        result = lint_paths(
            args.paths,
            select=_split_ids(args.select),
            ignore=_split_ids(args.ignore),
            cache_dir=cache_dir,
        )
    except UnknownRuleError as exc:
        parser.error(str(exc.args[0]))
    except FileNotFoundError as exc:
        parser.error(str(exc))

    findings = result.all_findings

    baseline_path = Path(args.baseline) if args.baseline else Path(DEFAULT_BASELINE_NAME)
    if args.write_baseline:
        Baseline.from_findings(findings).write(baseline_path)
        print(f"wrote {len(findings)} grandfathered findings to {baseline_path}")
        return 0

    if args.no_baseline:
        baseline = Baseline()
    elif args.baseline:
        if not baseline_path.exists():
            parser.error(f"baseline file not found: {baseline_path}")
        try:
            baseline = Baseline.load(baseline_path)
        except BaselineError as exc:
            parser.error(str(exc))
    else:
        try:
            baseline = Baseline.load(baseline_path)  # missing default -> empty
        except BaselineError as exc:
            parser.error(str(exc))

    fresh, grandfathered = baseline.split(findings)
    if args.format == "json":
        renderer = render_json
    elif args.format == "sarif":
        renderer = render_sarif
    else:
        renderer = render_text
    print(renderer(result, fresh, grandfathered))
    return 1 if fresh else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(lint_main())
