"""Finding model shared by the lint driver, reporters, and baseline.

A :class:`Finding` is one rule violation at one source location.  Its
:attr:`~Finding.fingerprint` deliberately excludes the line and column so a
committed baseline keeps matching after unrelated edits shift code around;
two findings with the same rule, file, and message are interchangeable for
baseline accounting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Tuple

__all__ = ["Finding", "Loc", "Severity"]


class Severity(enum.Enum):
    """How bad a finding is; both levels fail the gate, the label is for humans."""

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation.

    Attributes:
        rule: Rule identifier, e.g. ``"REP101"``.
        severity: :class:`Severity` of the owning rule.
        path: Display path of the offending file (posix separators).
        line: 1-based line of the violation.
        col: 0-based column of the violation.
        message: Human-readable description with the suggested fix.
    """

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str

    @property
    def fingerprint(self) -> Tuple[str, str, str]:
        """Baseline identity: location-free so line drift doesn't invalidate it."""
        return (self.rule, self.path, self.message)

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def render(self) -> str:
        """``path:line:col RULE severity: message`` — one line per finding."""
        return (
            f"{self.path}:{self.line}:{self.col} "
            f"{self.rule} {self.severity}: {self.message}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": str(self.severity),
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "Finding":
        """Inverse of :meth:`to_dict` (used by the incremental cache)."""
        return cls(
            rule=doc["rule"],
            severity=Severity(doc["severity"]),
            path=doc["path"],
            line=doc["line"],
            col=doc["col"],
            message=doc["message"],
        )


@dataclass(frozen=True)
class Loc:
    """A bare source location a rule may yield instead of an AST node.

    Summary-based (project-scope) rules work from serialized module
    digests, not live ASTs; the driver only reads ``lineno``/``col_offset``
    off whatever a rule yields, so this stand-in slots in transparently.
    """

    lineno: int
    col_offset: int = 0
