"""Lint driver: collect files, run rules (two layers), apply suppressions.

Two rule layers run over one :class:`~repro.lint.context.Project`:

* **file-scope** rules see one file at a time; their findings depend only
  on that file's bytes, so with ``cache_dir`` set they are answered from
  the content-hash cache (:mod:`repro.lint.cache`) without re-parsing.
* **project-scope** rules (builder wiring, exports, the interprocedural
  REP108–REP112 passes) read cross-file state through the project's
  module summaries, call graph, and effect analysis.  Summaries come from
  the cache on a warm run, so even the whole-program layer re-parses
  nothing when no file changed — :attr:`LintResult.parsed_files` proves it.

Suppression is comment-based::

    x = np.random.default_rng()          # repro: ignore[REP101]
    y = something_else()                 # repro: ignore          (all rules)

and a whole file can opt out of one rule with a top-of-file marker::

    # repro: ignore-file[REP103]

Suppressions are deliberately line- and file-scoped only — there is no
block scope, so each exemption is visible next to the code it excuses.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.lint.context import FileContext, Project

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.lint.graph import ModuleSummary
from repro.lint.findings import Finding, Severity
from repro.lint.registry import LintRule, all_rules, get_rule

__all__ = ["LintResult", "lint_paths", "select_rules", "PARSE_ERROR_RULE"]

#: Pseudo-rule id for unparsable files; not suppressible or selectable.
PARSE_ERROR_RULE = "REP000"

_IGNORE_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s-]+)\])?"
)
_IGNORE_FILE_RE = re.compile(
    r"#\s*repro:\s*ignore-file\[(?P<rules>[A-Za-z0-9_,\s-]+)\]"
)
#: File-level markers must appear in this many leading lines to take effect.
_FILE_MARKER_WINDOW = 20


@dataclass
class LintResult:
    """Outcome of one lint run, before baseline subtraction."""

    findings: List[Finding]
    suppressed: int = 0
    checked_files: int = 0
    rules_run: Tuple[str, ...] = ()
    parse_errors: List[Finding] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    parsed_files: int = 0

    @property
    def all_findings(self) -> List[Finding]:
        """Parse errors plus rule findings, in report order."""
        merged = self.parse_errors + self.findings
        return sorted(merged, key=lambda f: f.sort_key)


def iter_python_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand *paths* (files or directories) into a sorted list of .py files."""
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in path.rglob("*.py"):
                if "__pycache__" in sub.parts:
                    continue
                seen.add(sub.resolve())
        elif path.suffix == ".py":
            seen.add(path.resolve())
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return sorted(seen)


def _parse_error_finding(path: Path, exc: SyntaxError) -> Finding:
    return Finding(
        rule=PARSE_ERROR_RULE,
        severity=Severity.ERROR,
        path=str(path),
        line=exc.lineno or 1,
        col=(exc.offset or 1) - 1,
        message=f"file does not parse: {exc.msg}",
    )


def build_project(
    paths: Sequence[Union[str, Path]],
) -> Tuple[Project, List[Finding]]:
    """Parse every file under *paths*; unparsable files become findings.

    Retained as the eager, cache-free construction path (tests and tools
    that want a fully parsed project); :func:`lint_paths` uses the lazy
    incremental flow below instead.
    """
    contexts: List[FileContext] = []
    parse_errors: List[Finding] = []
    for file_path in iter_python_files(paths):
        try:
            contexts.append(FileContext.parse(file_path))
        except SyntaxError as exc:
            parse_errors.append(_parse_error_finding(file_path, exc))
    return Project(contexts), parse_errors


def select_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> Tuple[LintRule, ...]:
    """Resolve the rule set for a run; unknown ids raise ``UnknownRuleError``."""
    if select is not None:
        rules = tuple(get_rule(rule_id) for rule_id in select)
    else:
        rules = all_rules()
    if ignore:
        ignored = set(ignore)
        for rule_id in ignored:
            get_rule(rule_id)  # validate
        rules = tuple(rule for rule in rules if rule.id not in ignored)
    return rules


def _file_ignores(ctx: FileContext) -> FrozenSet[str]:
    """Rule ids disabled for the whole file via ``# repro: ignore-file[...]``."""
    ids: Set[str] = set()
    for line in ctx.lines[:_FILE_MARKER_WINDOW]:
        match = _IGNORE_FILE_RE.search(line)
        if match:
            ids.update(part.strip() for part in match.group("rules").split(","))
    return frozenset(filter(None, ids))


def _line_suppresses(line: str, rule_id: str) -> bool:
    """Whether *line* carries an ignore comment covering *rule_id*."""
    match = _IGNORE_RE.search(line)
    if match is None:
        return False
    rules = match.group("rules")
    if rules is None:
        return True  # bare `# repro: ignore` silences every rule on the line
    return rule_id in {part.strip() for part in rules.split(",")}


def _run_rules_on_file(
    ctx: FileContext, project: Project, rules: Sequence[LintRule]
) -> Tuple[List[Finding], Dict[str, int]]:
    """Run *rules* over one file; returns (findings, suppressed-per-rule)."""
    findings: List[Finding] = []
    suppressed: Dict[str, int] = {}
    file_ignores = _file_ignores(ctx)
    for rule in rules:
        if rule.id in file_ignores:
            continue
        for node, message in rule.check(ctx, project):
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
            source_line = ctx.lines[line - 1] if 0 < line <= len(ctx.lines) else ""
            if _line_suppresses(source_line, rule.id):
                suppressed[rule.id] = suppressed.get(rule.id, 0) + 1
                continue
            findings.append(
                Finding(
                    rule=rule.id,
                    severity=rule.severity,
                    path=ctx.display_path,
                    line=line,
                    col=col,
                    message=message,
                )
            )
    return findings, suppressed


def run_rules(
    project: Project, rules: Sequence[LintRule]
) -> Tuple[List[Finding], int]:
    """Run *rules* over every file; returns ``(findings, suppressed_count)``."""
    findings: List[Finding] = []
    suppressed = 0
    for ctx in project.files:
        file_findings, file_suppressed = _run_rules_on_file(ctx, project, rules)
        findings.extend(file_findings)
        suppressed += sum(file_suppressed.values())
    findings.sort(key=lambda f: f.sort_key)
    return findings, suppressed


def lint_paths(
    paths: Sequence[Union[str, Path]],
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    cache_dir: Optional[Union[str, Path]] = None,
) -> LintResult:
    """Lint *paths* with the selected rules — the library entry point.

    With ``cache_dir`` set, per-file analyses (file-scope findings plus
    the module summary the whole-program passes consume) are answered
    from a content-hash cache; unchanged files are neither re-parsed nor
    re-visited.  Without it every file is analyzed fresh (the default, so
    ad-hoc runs never leave cache directories behind).
    """
    rules = select_rules(select=select, ignore=ignore)
    file_rules = [rule for rule in rules if rule.scope == "file"]
    project_rules = [rule for rule in rules if rule.scope == "project"]

    cache = None
    if cache_dir is not None:
        from repro.lint.cache import LintCache

        cache = LintCache(Path(cache_dir), [rule.id for rule in file_rules])

    contexts: List[FileContext] = []
    parse_errors: List[Finding] = []
    for file_path in iter_python_files(paths):
        try:
            contexts.append(FileContext.load(file_path))
        except (OSError, UnicodeDecodeError) as exc:
            parse_errors.append(
                Finding(
                    rule=PARSE_ERROR_RULE,
                    severity=Severity.ERROR,
                    path=str(file_path),
                    line=1,
                    col=0,
                    message=f"file does not parse: {exc}",
                )
            )

    good_contexts: List[FileContext] = []
    cached_summaries: List[Tuple[FileContext, "ModuleSummary"]] = []
    findings: List[Finding] = []
    suppressed = 0
    cache_hits = 0
    cache_misses = 0

    pending_summaries: List[FileContext] = []
    for ctx in contexts:
        hit = (
            cache.lookup(ctx.display_path, ctx.content_hash)
            if cache is not None
            else None
        )
        if hit is not None:
            summary, cached_findings, cached_suppressed = hit
            cached_summaries.append((ctx, summary))
            findings.extend(cached_findings)
            suppressed += sum(cached_suppressed.values())
            good_contexts.append(ctx)
            cache_hits += 1
            continue
        try:
            ctx.tree  # force the parse; SyntaxError excludes the file
        except SyntaxError as exc:
            parse_errors.append(_parse_error_finding(ctx.path, exc))
            continue
        good_contexts.append(ctx)
        pending_summaries.append(ctx)
        if cache is not None:
            cache_misses += 1

    project = Project(good_contexts)
    for ctx, summary in cached_summaries:
        project.attach_summary(ctx, summary)

    for ctx in pending_summaries:
        file_findings, file_suppressed = _run_rules_on_file(
            ctx, project, file_rules
        )
        findings.extend(file_findings)
        suppressed += sum(file_suppressed.values())
        summary = project.summary(ctx)
        if cache is not None:
            cache.store(
                ctx.display_path,
                ctx.content_hash,
                summary,
                file_findings,
                file_suppressed,
            )

    if project_rules:
        for ctx in project.files:
            file_findings, file_suppressed = _run_rules_on_file(
                ctx, project, project_rules
            )
            findings.extend(file_findings)
            suppressed += sum(file_suppressed.values())

    if cache is not None:
        cache.evict_missing([ctx.display_path for ctx in contexts])
        cache.save()

    findings.sort(key=lambda f: f.sort_key)
    return LintResult(
        findings=findings,
        suppressed=suppressed,
        checked_files=len(project.files),
        rules_run=tuple(rule.id for rule in rules),
        parse_errors=parse_errors,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
        parsed_files=sum(1 for ctx in contexts if ctx.parsed),
    )
