"""Per-file lint driver: collect files, run rules, apply suppressions.

Two-phase design: every file is parsed first and wrapped in a
:class:`~repro.lint.context.Project`, then each rule visits each file with
that shared cross-file context.  Suppression is comment-based::

    x = np.random.default_rng()          # repro: ignore[REP101]
    y = something_else()                 # repro: ignore          (all rules)

and a whole file can opt out of one rule with a top-of-file marker::

    # repro: ignore-file[REP103]

Suppressions are deliberately line- and file-scoped only — there is no
block scope, so each exemption is visible next to the code it excuses.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.lint.context import FileContext, Project
from repro.lint.findings import Finding, Severity
from repro.lint.registry import LintRule, all_rules, get_rule

__all__ = ["LintResult", "lint_paths", "select_rules", "PARSE_ERROR_RULE"]

#: Pseudo-rule id for unparsable files; not suppressible or selectable.
PARSE_ERROR_RULE = "REP000"

_IGNORE_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s-]+)\])?"
)
_IGNORE_FILE_RE = re.compile(
    r"#\s*repro:\s*ignore-file\[(?P<rules>[A-Za-z0-9_,\s-]+)\]"
)
#: File-level markers must appear in this many leading lines to take effect.
_FILE_MARKER_WINDOW = 20


@dataclass
class LintResult:
    """Outcome of one lint run, before baseline subtraction."""

    findings: List[Finding]
    suppressed: int = 0
    checked_files: int = 0
    rules_run: Tuple[str, ...] = ()
    parse_errors: List[Finding] = field(default_factory=list)

    @property
    def all_findings(self) -> List[Finding]:
        """Parse errors plus rule findings, in report order."""
        merged = self.parse_errors + self.findings
        return sorted(merged, key=lambda f: f.sort_key)


def iter_python_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand *paths* (files or directories) into a sorted list of .py files."""
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in path.rglob("*.py"):
                if "__pycache__" in sub.parts:
                    continue
                seen.add(sub.resolve())
        elif path.suffix == ".py":
            seen.add(path.resolve())
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return sorted(seen)


def build_project(
    paths: Sequence[Union[str, Path]],
) -> Tuple[Project, List[Finding]]:
    """Parse every file under *paths*; unparsable files become findings."""
    contexts: List[FileContext] = []
    parse_errors: List[Finding] = []
    for file_path in iter_python_files(paths):
        try:
            contexts.append(FileContext.parse(file_path))
        except SyntaxError as exc:
            parse_errors.append(
                Finding(
                    rule=PARSE_ERROR_RULE,
                    severity=Severity.ERROR,
                    path=str(file_path),
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"file does not parse: {exc.msg}",
                )
            )
    return Project(files=contexts), parse_errors


def select_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> Tuple[LintRule, ...]:
    """Resolve the rule set for a run; unknown ids raise ``UnknownRuleError``."""
    if select is not None:
        rules = tuple(get_rule(rule_id) for rule_id in select)
    else:
        rules = all_rules()
    if ignore:
        ignored = set(ignore)
        for rule_id in ignored:
            get_rule(rule_id)  # validate
        rules = tuple(rule for rule in rules if rule.id not in ignored)
    return rules


def _file_ignores(ctx: FileContext) -> FrozenSet[str]:
    """Rule ids disabled for the whole file via ``# repro: ignore-file[...]``."""
    ids: Set[str] = set()
    for line in ctx.lines[:_FILE_MARKER_WINDOW]:
        match = _IGNORE_FILE_RE.search(line)
        if match:
            ids.update(part.strip() for part in match.group("rules").split(","))
    return frozenset(filter(None, ids))


def _line_suppresses(line: str, rule_id: str) -> bool:
    """Whether *line* carries an ignore comment covering *rule_id*."""
    match = _IGNORE_RE.search(line)
    if match is None:
        return False
    rules = match.group("rules")
    if rules is None:
        return True  # bare `# repro: ignore` silences every rule on the line
    return rule_id in {part.strip() for part in rules.split(",")}


def run_rules(
    project: Project, rules: Sequence[LintRule]
) -> Tuple[List[Finding], int]:
    """Run *rules* over every file; returns ``(findings, suppressed_count)``."""
    findings: List[Finding] = []
    suppressed = 0
    for ctx in project.files:
        file_ignores = _file_ignores(ctx)
        for rule in rules:
            if rule.id in file_ignores:
                continue
            for node, message in rule.check(ctx, project):
                line = getattr(node, "lineno", 1)
                col = getattr(node, "col_offset", 0)
                source_line = ctx.lines[line - 1] if 0 < line <= len(ctx.lines) else ""
                if _line_suppresses(source_line, rule.id):
                    suppressed += 1
                    continue
                findings.append(
                    Finding(
                        rule=rule.id,
                        severity=rule.severity,
                        path=ctx.display_path,
                        line=line,
                        col=col,
                        message=message,
                    )
                )
    findings.sort(key=lambda f: f.sort_key)
    return findings, suppressed


def lint_paths(
    paths: Sequence[Union[str, Path]],
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> LintResult:
    """Lint *paths* with the selected rules — the library entry point."""
    rules = select_rules(select=select, ignore=ignore)
    project, parse_errors = build_project(paths)
    findings, suppressed = run_rules(project, rules)
    return LintResult(
        findings=findings,
        suppressed=suppressed,
        checked_files=len(project.files),
        rules_run=tuple(rule.id for rule in rules),
        parse_errors=parse_errors,
    )
