"""Content-hash incremental cache for per-file lint analyses.

One manifest (``<dir>/manifest.json``) maps each display path to the
``sha256`` of the file's bytes plus everything a warm run needs to skip
the file entirely: its serialized :class:`~repro.lint.graph.ModuleSummary`
(fuel for the whole-program passes) and the file-scope findings /
suppression counts produced last time.  Keying on content hashes — the
same discipline as the serve result store — means renames, re-orderings
of the file list, and timestamp churn never cause spurious misses, while
any byte change invalidates exactly that file.

A cache hit therefore avoids *all* AST work for the file: no parse, no
rule visits, no summary extraction.  The driver counts hits and misses
(:attr:`~repro.lint.driver.LintResult.cache_hits`) so tests — and the CI
step log — can prove a warm run re-parses nothing.

The cache is invalidated wholesale when the schema version or the set of
file-scope rules changes (new rules must see every file once).
Corruption is never fatal: an unreadable manifest is treated as empty.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.lint.findings import Finding
from repro.lint.graph import ModuleSummary

__all__ = ["DEFAULT_CACHE_DIR", "LintCache"]

#: Directory name used by ``repro lint --cache`` with no argument.
DEFAULT_CACHE_DIR = ".repro-lint-cache"

_MANIFEST_NAME = "manifest.json"
_SCHEMA_VERSION = 1


class LintCache:
    """Manifest-backed per-file analysis cache.

    Args:
        directory: Cache directory (created on first save).
        rule_ids: The file-scope rule ids active this run; a manifest
            written under a different rule set is discarded wholesale.
    """

    def __init__(self, directory: Path, rule_ids: Sequence[str]) -> None:
        self.directory = Path(directory)
        self.rule_ids = sorted(rule_ids)
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._dirty = False
        self._load()

    @property
    def manifest_path(self) -> Path:
        return self.directory / _MANIFEST_NAME

    def _load(self) -> None:
        try:
            doc = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(doc, dict):
            return
        if doc.get("schema") != _SCHEMA_VERSION:
            return
        if doc.get("rules") != self.rule_ids:
            return  # rule set changed: every file must be re-analyzed
        entries = doc.get("entries")
        if isinstance(entries, dict):
            self._entries = entries

    # -- queries --------------------------------------------------------

    def lookup(
        self, display_path: str, content_hash: str
    ) -> Optional[Tuple[ModuleSummary, List[Finding], Dict[str, int]]]:
        """Cached (summary, file-scope findings, suppressed counts) or ``None``."""
        entry = self._entries.get(display_path)
        if entry is None or entry.get("hash") != content_hash:
            return None
        try:
            summary = ModuleSummary.from_doc(entry["summary"])
            findings = [Finding.from_dict(doc) for doc in entry["findings"]]
            suppressed = {str(k): int(v) for k, v in entry["suppressed"].items()}
        except (KeyError, TypeError, ValueError):
            return None
        return summary, findings, suppressed

    def store(
        self,
        display_path: str,
        content_hash: str,
        summary: ModuleSummary,
        findings: Sequence[Finding],
        suppressed: Dict[str, int],
    ) -> None:
        """Record one freshly analyzed file."""
        self._entries[display_path] = {
            "hash": content_hash,
            "summary": summary.to_doc(),
            "findings": [f.to_dict() for f in findings],
            "suppressed": dict(suppressed),
        }
        self._dirty = True

    def evict_missing(self, live_paths: Sequence[str]) -> None:
        """Drop entries for files no longer in the lint set."""
        live = set(live_paths)
        stale = [path for path in self._entries if path not in live]
        for path in stale:
            del self._entries[path]
            self._dirty = True

    def save(self) -> None:
        """Write the manifest atomically (no-op when nothing changed)."""
        if not self._dirty:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        doc = {
            "schema": _SCHEMA_VERSION,
            "rules": self.rule_ids,
            "entries": self._entries,
        }
        tmp = self.manifest_path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n",
            encoding="utf-8",
        )
        tmp.replace(self.manifest_path)
        self._dirty = False
