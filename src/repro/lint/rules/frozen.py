"""REP105 — frozen-tree discipline: no attribute writes on AggregationTree.

:class:`~repro.core.tree.AggregationTree` is validated once at construction
(spanning, acyclic, edges exist) and cached-metric consumers assume it never
changes afterwards; all mutation goes through the engine's
:class:`~repro.engine.treestate.TreeState`, whose ``freeze()`` produces a
fresh tree.  This rule flags attribute assignment (and ``setattr``) on
tree-valued expressions outside the two modules that own the invariant —
``repro.core.tree`` (construction) and ``repro.engine.treestate`` (the
freeze path).

Detection is name-based, matching the codebase's pervasive convention:
a bare ``tree``, any ``*_tree`` variable, or a ``.tree`` /
``.*_tree`` attribute (e.g. ``result.tree``) is treated as tree-valued.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.lint.context import FileContext, Project
from repro.lint.findings import Severity
from repro.lint.registry import lint_rule

__all__ = ["check_frozen_tree"]

#: Modules allowed to touch AggregationTree internals.
_EXEMPT_MODULES = frozenset({"repro.core.tree", "repro.engine.treestate"})


def _is_tree_name(name: str) -> bool:
    return name == "tree" or name.endswith("_tree")


def _is_tree_valued(node: ast.expr) -> bool:
    """Whether an expression is tree-valued by naming convention."""
    if isinstance(node, ast.Name):
        return _is_tree_name(node.id)
    if isinstance(node, ast.Attribute):
        return _is_tree_name(node.attr)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id == "AggregationTree"
    return False


def _message(target: str) -> str:
    return (
        f"attribute assignment on tree value {target!r}: AggregationTree is "
        "frozen after construction — mutate a TreeState "
        "(repro.engine.treestate) and freeze() it instead"
    )


@lint_rule("REP105", Severity.ERROR)
def check_frozen_tree(
    ctx: FileContext, project: Project
) -> Iterator[Tuple[ast.AST, str]]:
    """attribute writes on AggregationTree values outside the freeze path"""
    if ctx.module in _EXEMPT_MODULES:
        return
    for node in ast.walk(ctx.tree):
        targets: Tuple[ast.expr, ...] = ()
        if isinstance(node, ast.Assign):
            targets = tuple(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = (node.target,)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "setattr"
            and node.args
            and _is_tree_valued(node.args[0])
        ):
            yield (node, _message(ast.unparse(node.args[0])))
            continue
        for target in targets:
            if isinstance(target, ast.Attribute) and _is_tree_valued(target.value):
                yield (node, _message(ast.unparse(target.value)))
