"""REP104 — builder-registry contract.

The engine's registry (:mod:`repro.engine.registry`) is the single front
door for tree construction: experiments, both CLIs, and the distributed
simulator resolve builders by name.  An algorithm that exists but is not
registered silently falls out of every sweep, and a registered function
whose signature cannot be invoked as ``fn(network, **config)`` blows up at
resolve time instead of import time.  Three checks:

* every public ``build_*`` entry point defined in ``repro.baselines`` or
  ``repro.core`` must be referenced by the stock registration module
  ``repro.engine.builders`` (skipped when that module is outside the
  linted path set) — ``solve_*`` names are deliberately not matched, since
  ``solve_mrlc_lp`` returns an LP solution rather than a tree;
* every ``@tree_builder(...)``-decorated function must take ``network`` as
  its only positional parameter, with all config knobs keyword-only — the
  shape :meth:`RegisteredBuilder.build` invokes;
* a builder name literal must be registered exactly once across the
  project (duplicates raise at import time, but only on the import order
  that loads both).
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.lint.context import FileContext, Project, _tree_builder_name
from repro.lint.findings import Severity
from repro.lint.registry import lint_rule

__all__ = ["check_builder_contract"]

#: Where the stock registrations live; part (a) checks references in here.
REGISTRATION_MODULE = "repro.engine.builders"

#: Packages whose public entry points must be registry-reachable.
ALGORITHM_PACKAGES = ("repro.baselines", "repro.core")

_ENTRY_PREFIXES = ("build_",)


def _check_entry_points(
    ctx: FileContext, project: Project
) -> Iterator[Tuple[ast.AST, str]]:
    if not ctx.in_package(*ALGORITHM_PACKAGES):
        return
    if ctx.module == REGISTRATION_MODULE:
        return
    references = project.name_loads(REGISTRATION_MODULE)
    if references is None:
        return  # registration module not part of this lint run
    for node in ctx.tree.body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        name = node.name
        if name.startswith("_") or not name.startswith(_ENTRY_PREFIXES):
            continue
        if name not in references:
            yield (
                node,
                f"public entry point {name}() is not wired into the "
                f"tree-builder registry ({REGISTRATION_MODULE}); register it "
                "with @tree_builder so sweeps and CLIs can resolve it by name",
            )


def _check_signatures(ctx: FileContext) -> Iterator[Tuple[ast.AST, str]]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not any(_tree_builder_name(d) is not None for d in node.decorator_list):
            continue
        args = node.args
        positional = list(args.posonlyargs) + list(args.args)
        if not positional or positional[0].arg != "network":
            yield (
                node,
                f"@tree_builder function {node.name}() must take 'network' "
                "as its first parameter (RegisteredBuilder.build invokes "
                "fn(network, **config))",
            )
        if len(positional) > 1 or args.vararg is not None:
            yield (
                node,
                f"@tree_builder function {node.name}() declares extra "
                "positional parameters; config knobs must be keyword-only "
                "to stay compatible with fn(network, **config)",
            )


def _check_duplicate_names(
    ctx: FileContext, project: Project
) -> Iterator[Tuple[ast.AST, str]]:
    registrations = project.tree_builder_registrations()
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for deco in node.decorator_list:
            name = _tree_builder_name(deco)
            if name is None:
                continue
            sites = registrations.get(name, [])
            if len(sites) > 1:
                others = [
                    f"{path}:{line}"
                    for path, line in sites
                    if (path, line) != (ctx.display_path, node.lineno)
                ]
                yield (
                    node,
                    f"builder name {name!r} is registered more than once "
                    f"(also at {', '.join(others)}); registry names must be "
                    "unique",
                )


@lint_rule("REP104", Severity.ERROR)
def check_builder_contract(
    ctx: FileContext, project: Project
) -> Iterator[Tuple[ast.AST, str]]:
    """tree builders must be registered, uniquely named, and (network, **config)-shaped"""
    yield from _check_entry_points(ctx, project)
    yield from _check_signatures(ctx)
    yield from _check_duplicate_names(ctx, project)
