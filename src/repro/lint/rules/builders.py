"""REP104 — builder-registry contract.

The engine's registry (:mod:`repro.engine.registry`) is the single front
door for tree construction: experiments, both CLIs, and the distributed
simulator resolve builders by name.  An algorithm that exists but is not
registered silently falls out of every sweep, and a registered function
whose signature cannot be invoked as ``fn(network, **config)`` blows up at
resolve time instead of import time.  Three checks:

* every public ``build_*`` entry point defined in ``repro.baselines`` or
  ``repro.core`` must be referenced by the stock registration module
  ``repro.engine.builders`` (skipped when that module is outside the
  linted path set) — ``solve_*`` names are deliberately not matched, since
  ``solve_mrlc_lp`` returns an LP solution rather than a tree;
* every ``@tree_builder(...)``-decorated function must take ``network`` as
  its only positional parameter, with all config knobs keyword-only — the
  shape :meth:`RegisteredBuilder.build` invokes;
* a builder name literal must be registered exactly once across the
  project (duplicates raise at import time, but only on the import order
  that loads both).

This is a project-scope rule: it reads only module summaries
(:class:`~repro.lint.graph.ModuleSummary`), so on a warm cached run it
re-checks the whole contract without re-parsing a single file.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple, Union

from repro.lint.context import FileContext, Project
from repro.lint.findings import Loc, Severity
from repro.lint.registry import lint_rule

__all__ = ["check_builder_contract"]

#: Where the stock registrations live; part (a) checks references in here.
REGISTRATION_MODULE = "repro.engine.builders"

#: Packages whose public entry points must be registry-reachable.
ALGORITHM_PACKAGES = ("repro.baselines", "repro.core")

_ENTRY_PREFIXES = ("build_",)

_Yield = Tuple[Union[ast.AST, Loc], str]


def _check_entry_points(
    ctx: FileContext, project: Project
) -> Iterator[_Yield]:
    if not ctx.in_package(*ALGORITHM_PACKAGES):
        return
    if ctx.module == REGISTRATION_MODULE:
        return
    references = project.name_loads(REGISTRATION_MODULE)
    if references is None:
        return  # registration module not part of this lint run
    summary = project.summary(ctx)
    for fn in summary.module_functions():
        name = fn.name
        if name.startswith("_") or not name.startswith(_ENTRY_PREFIXES):
            continue
        if name not in references:
            yield (
                Loc(fn.lineno, fn.col),
                f"public entry point {name}() is not wired into the "
                f"tree-builder registry ({REGISTRATION_MODULE}); register it "
                "with @tree_builder so sweeps and CLIs can resolve it by name",
            )


def _check_signatures(ctx: FileContext, project: Project) -> Iterator[_Yield]:
    summary = project.summary(ctx)
    for fn in summary.functions:
        if fn.builder_name is None:
            continue
        if not fn.pos_params or fn.pos_params[0] != "network":
            yield (
                Loc(fn.lineno, fn.col),
                f"@tree_builder function {fn.name}() must take 'network' "
                "as its first parameter (RegisteredBuilder.build invokes "
                "fn(network, **config))",
            )
        if len(fn.pos_params) > 1 or fn.has_vararg:
            yield (
                Loc(fn.lineno, fn.col),
                f"@tree_builder function {fn.name}() declares extra "
                "positional parameters; config knobs must be keyword-only "
                "to stay compatible with fn(network, **config)",
            )


def _check_duplicate_names(
    ctx: FileContext, project: Project
) -> Iterator[_Yield]:
    registrations = project.tree_builder_registrations()
    summary = project.summary(ctx)
    for fn in summary.functions:
        name = fn.builder_name
        if name is None:
            continue
        sites = registrations.get(name, [])
        if len(sites) > 1:
            others = [
                f"{path}:{line}"
                for path, line in sites
                if (path, line) != (ctx.display_path, fn.lineno)
            ]
            yield (
                Loc(fn.lineno, fn.col),
                f"builder name {name!r} is registered more than once "
                f"(also at {', '.join(others)}); registry names must be "
                "unique",
            )


@lint_rule("REP104", Severity.ERROR, scope="project")
def check_builder_contract(
    ctx: FileContext, project: Project
) -> Iterator[_Yield]:
    """tree builders must be registered, uniquely named, and (network, **config)-shaped

    Rationale: the registry is the only front door for tree construction —
    sweeps, CLIs, and the serve plane all resolve builders by name.  An
    unregistered ``build_*`` silently drops out of every experiment; a
    builder whose signature is not ``fn(network, **config)`` fails at
    resolve time; a duplicate name literal raises only on the unlucky
    import order.

    Fix pattern: register the entry point in ``repro.engine.builders``
    with ``@tree_builder("name")``, move config knobs after a ``*`` so
    they are keyword-only, and pick a unique registry name.
    """
    yield from _check_entry_points(ctx, project)
    yield from _check_signatures(ctx, project)
    yield from _check_duplicate_names(ctx, project)
