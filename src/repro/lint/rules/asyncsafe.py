"""REP108/REP109 — asyncio safety: blocking reachability and await races.

The serve plane (:mod:`repro.serve`) runs every request on one event
loop; :mod:`repro.obs.top` polls it.  Two failure modes are invisible to
per-file linting because they live in the *call structure*:

* REP108 — an ``async def`` that (transitively, through ordinary sync
  helpers) reaches a blocking primitive: ``time.sleep``, socket/DNS
  calls, ``subprocess``, file IO.  One such call stalls every in-flight
  request.  Awaited calls are exempt (awaiting suspends), and the
  ``blocks`` effect deliberately does not propagate out of async callees
  — their own blocking calls are their own finding.  Shipping a blocking
  function *as an argument* to ``run_in_executor`` is the sanctioned
  pattern and creates no call edge, so it never trips the rule.
* REP109 — an await-point read-modify-write race: an async method reads
  ``self.<attr>``, suspends at an ``await``, then writes ``self.<attr>``
  from the stale read.  Between the read and the write any other task may
  run and move the attribute; last-write-wins then silently drops the
  concurrent update.  The scan works on the summary's evaluation-ordered
  event stream, so ``self.x += 1`` (read and write with no suspension
  between) is clean while ``self.x += await g()`` and staged
  read → ``await`` → write sequences are flagged.  Calls to same-class
  ``self.helper()`` methods that write the attribute count as writes.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.lint.context import FileContext, Project
from repro.lint.effects import BLOCKS, is_blocking_chain
from repro.lint.findings import Loc, Severity
from repro.lint.graph import FunctionSummary
from repro.lint.registry import lint_rule

__all__ = ["check_async_blocking", "check_await_races"]

_Yield = Tuple[Union[ast.AST, Loc], str]


@lint_rule("REP108", Severity.ERROR, scope="project")
def check_async_blocking(
    ctx: FileContext, project: Project
) -> Iterator[_Yield]:
    """async functions must not reach blocking calls (time.sleep/socket/subprocess/file IO)

    Rationale: the serve plane multiplexes every request onto one event
    loop.  A blocking primitive anywhere in an ``async def``'s sync call
    chain — even three helpers deep — freezes all of them at once, and
    the per-file rules cannot see through the helpers.

    Fix pattern: ship the blocking work to an executor
    (``await loop.run_in_executor(pool, blocking_fn, ...)``) or use the
    async equivalent (``await asyncio.sleep(...)``); passing the blocking
    function as an executor argument is exactly the sanctioned shape and
    is not flagged.
    """
    summary = project.summary(ctx)
    if summary.module is None:
        return
    graph = project.call_graph()
    effects = project.effect_analysis()
    for fn in summary.functions:
        if not fn.is_async:
            continue
        node_id = f"{summary.module}:{fn.qualname}"
        for rc in graph.calls.get(node_id, ()):
            if rc.site.awaited:
                continue
            loc = Loc(rc.site.lineno, rc.site.col)
            if is_blocking_chain(rc.site.chain, rc.canonical):
                name = rc.canonical or rc.site.chain
                yield (
                    loc,
                    f"blocking call {name}() inside async function "
                    f"{fn.name}(); it stalls the event loop — use the async "
                    "equivalent or run_in_executor",
                )
                continue
            if rc.target is None:
                continue
            callee = graph.nodes[rc.target].summary
            if callee.is_async:
                continue
            if effects.has_effect(rc.target, BLOCKS):
                witness = effects.witness(rc.target, BLOCKS)
                yield (
                    loc,
                    f"async function {fn.name}() reaches a blocking call "
                    f"through {witness}; move the blocking work behind "
                    "run_in_executor or an async equivalent",
                )


def _self_method_writes(
    summary_functions: Tuple[FunctionSummary, ...], class_name: str
) -> Dict[str, Tuple[str, ...]]:
    """Method name → self attributes it writes, for one class."""
    return {
        fn.name: fn.self_attr_writes
        for fn in summary_functions
        if fn.parent_class == class_name and not fn.nested
    }


@lint_rule("REP109", Severity.ERROR, scope="project")
def check_await_races(
    ctx: FileContext, project: Project
) -> Iterator[_Yield]:
    """async methods must not write self attributes from reads staled by an await

    Rationale: between a read of ``self.<attr>`` and an ``await``-suspended
    write, any other task on the loop may run the same method and move the
    attribute — the write then clobbers the concurrent update
    (``TreeServer``'s request counters and ``WorkerPool``'s shard settling
    are the shapes this protects).  ``self.x += 1`` with no await between
    the load and the store is atomic on the loop and stays clean.

    Fix pattern: re-read the attribute after the last await before
    writing, fold the update into one suspension-free statement, or guard
    the read-modify-write with an ``asyncio.Lock``.
    """
    summary = project.summary(ctx)
    for cls_sum in summary.classes:
        if not cls_sum.has_async_method:
            continue
        method_writes = _self_method_writes(summary.functions, cls_sum.name)
        for fn in summary.methods_of(cls_sum.name):
            if not fn.is_async:
                continue
            # last_read[attr] = (event index of latest read, awaits seen so far)
            last_read: Dict[str, Tuple[int, int]] = {}
            awaits_seen = 0
            for idx, event in enumerate(fn.events):
                if event.kind == "await":
                    awaits_seen += 1
                elif event.kind == "read":
                    last_read[event.detail] = (idx, awaits_seen)
                elif event.kind == "call":
                    # self.helper() that writes attrs acts as a write point.
                    chain = event.detail
                    if chain.startswith("self.") and chain.count(".") == 1:
                        helper = chain.split(".", 1)[1]
                        for attr in method_writes.get(helper, ()):
                            stale = _stale_read(last_read, attr, awaits_seen)
                            if stale is not None:
                                yield _race_finding(
                                    fn, attr, stale, event.lineno, event.col
                                )
                                last_read.pop(attr, None)
                elif event.kind == "write":
                    stale = _stale_read(last_read, event.detail, awaits_seen)
                    if stale is not None:
                        yield _race_finding(
                            fn, event.detail, stale, event.lineno, event.col
                        )
                    last_read.pop(event.detail, None)


def _stale_read(
    last_read: Dict[str, Tuple[int, int]], attr: str, awaits_seen: int
) -> Optional[int]:
    """Awaits between the latest read of *attr* and now, if any read exists."""
    entry = last_read.get(attr)
    if entry is None:
        return None
    _, awaits_at_read = entry
    crossed = awaits_seen - awaits_at_read
    return crossed if crossed > 0 else None


def _race_finding(
    fn: FunctionSummary, attr: str, crossed: int, lineno: int, col: int
) -> _Yield:
    plural = "s" if crossed > 1 else ""
    return (
        Loc(lineno, col),
        f"await-point read-modify-write race in async method {fn.name}(): "
        f"self.{attr} is written from a read that crossed {crossed} await "
        f"point{plural}; re-read after the await, make the update "
        "suspension-free, or hold an asyncio.Lock",
    )
