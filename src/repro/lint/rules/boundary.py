"""REP110 — RNG discipline across process/executor boundaries.

Seeded determinism (the reproduction's core guarantee) survives a process
boundary only through explicit seed handoff: parents call
:func:`repro.utils.rng.spawn_rngs` (or ship integer seeds) and each worker
constructs its own ``Generator``.  Shipping a *live* generator instead
either fails to pickle (``ProcessPoolExecutor``) or — worse — pickles a
snapshot, silently forking the stream so parent and worker draw identical
values and replays stop matching.

A boundary here is any call that hands work to an executor or pool:
``loop.run_in_executor(...)``, ``executor.submit/map(...)``,
``pool.submit/map(...)``, or the project's own
``parallel_map``/``parallel_build`` front ends.  Three argument shapes
are flagged:

* an rng-valued expression (``rng``, ``self.rng``, ``as_rng(...)``,
  ``default_rng(...)``) passed straight through — ``spawn_rngs(...)``
  results are the sanctioned handoff and stay clean;
* a ``lambda`` whose body closes over an rng name;
* a named function that the effect analysis marked
  ``unpicklable-capture`` (it closes over a live rng).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple, Union

from repro.lint.context import FileContext, Project
from repro.lint.effects import UNPICKLABLE_CAPTURE, EffectAnalysis
from repro.lint.findings import Loc, Severity
from repro.lint.graph import ArgInfo, CallGraph, CallSite, ModuleSummary
from repro.lint.registry import lint_rule

__all__ = ["check_rng_boundary"]

_Yield = Tuple[Union[ast.AST, Loc], str]

#: Call-chain tails that always mark an executor boundary.
_BOUNDARY_TAILS = frozenset({"run_in_executor"})

#: Tails that mark a boundary when the receiver chain names an executor/pool.
_SUBMIT_TAILS = frozenset({"submit", "map"})

#: Project fan-out front ends (canonical dotted suffixes).
_PROJECT_BOUNDARIES = ("parallel_map", "parallel_build")


def _is_boundary(site: CallSite, canonical: str) -> bool:
    chain = site.chain
    if not chain:
        return False
    tail = chain.rpartition(".")[2]
    if tail in _BOUNDARY_TAILS:
        return True
    name = canonical or chain
    if any(
        name == b or name.endswith("." + b) for b in _PROJECT_BOUNDARIES
    ):
        return True
    if tail in _SUBMIT_TAILS and "." in chain:
        receiver = chain.rpartition(".")[0].lower()
        return "executor" in receiver or "pool" in receiver
    return False


@lint_rule("REP110", Severity.ERROR, scope="project")
def check_rng_boundary(
    ctx: FileContext, project: Project
) -> Iterator[_Yield]:
    """work shipped across a process/executor boundary must not carry a live Generator

    Rationale: replayability requires every random stream to be derivable
    from the run's seed.  A live ``numpy.random.Generator`` shipped to a
    process worker either fails to pickle or pickles a *snapshot* — the
    parent and the worker then draw the same values and the run is no
    longer a function of its seed.

    Fix pattern: derive independent child streams up front with
    ``spawn_rngs(rng, n)`` (or pass integer seeds) and let each task
    construct its own generator; never close a shipped function or lambda
    over the parent's ``rng``.
    """
    summary = project.summary(ctx)
    if summary.module is None:
        return
    graph = project.call_graph()
    effects = project.effect_analysis()
    for fn in summary.functions:
        node_id = f"{summary.module}:{fn.qualname}"
        for rc in graph.calls.get(node_id, ()):
            if not _is_boundary(rc.site, rc.canonical):
                continue
            boundary = rc.canonical or rc.site.chain
            for arg in rc.site.args:
                message = _classify_arg(
                    arg, summary.module, graph, effects, summary, fn.qualname
                )
                if message is not None:
                    yield (
                        Loc(rc.site.lineno, rc.site.col),
                        f"{message} crosses the {boundary}() boundary; derive "
                        "per-task streams with spawn_rngs(...) or pass seeds "
                        "and construct the Generator worker-side",
                    )


def _classify_arg(
    arg: ArgInfo,
    module: str,
    graph: CallGraph,
    effects: EffectAnalysis,
    summary: ModuleSummary,
    caller_qualname: str,
) -> Optional[str]:
    if arg.rng:
        return f"live RNG state ({arg.text})"
    if arg.lambda_rng:
        return f"a lambda closing over a live rng ({arg.text})"
    if arg.name is not None:
        # A named function argument: resolve like a bare call would —
        # the caller's own nested defs shadow module-level names.
        target = f"{module}:{caller_qualname}.<locals>.{arg.name}"
        if target not in graph.nodes:
            target = f"{module}:{arg.name}"
        if target not in graph.nodes:
            alias = summary.aliases.get(arg.name)
            if alias is not None:
                mod, _, attr = alias.rpartition(".")
                target = f"{mod}:{attr}"
        if target in graph.nodes and effects.has_effect(
            target, UNPICKLABLE_CAPTURE
        ):
            return f"function {arg.name}() closing over a live rng"
    return None
