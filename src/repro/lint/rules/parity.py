"""REP111 — backend-parity drift between TreeState implementations.

PR 8's bitwise-parity guarantee only holds while every backend exposes
the same surface: the :class:`~repro.engine.treestate.TreeStateBackend`
protocol is the contract, :class:`~repro.engine.treestate.TreeState` is
the object reference, and any class declaring a ``backend_name`` is a
backend bound by both.  Three drift modes:

* a protocol method the backend neither defines nor inherits — callers
  switching backends hit ``AttributeError`` at runtime;
* a protocol method the backend redefines with a different signature
  (positional names, keyword-only set, ``*args``/``**kwargs``-ness) —
  call sites written against the protocol stop resolving;
* a *public* method the backend adds that neither the protocol nor the
  reference has — code written against it silently stops being
  backend-portable.  Intentional fast paths stay, but behind an explicit
  ``# repro: ignore[REP111]`` with justification.

The rule is inert when ``repro.engine.treestate`` is outside the linted
file set (fixture trees opt in by providing a stub).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

from repro.lint.context import FileContext, Project
from repro.lint.findings import Loc, Severity
from repro.lint.graph import FunctionSummary, ModuleSummary
from repro.lint.registry import lint_rule

__all__ = ["check_backend_parity"]

_Yield = Tuple[Union[ast.AST, Loc], str]

#: Module holding the protocol and the object reference.
TREESTATE_MODULE = "repro.engine.treestate"

#: The structural contract every backend must satisfy.
PROTOCOL_CLASS = "TreeStateBackend"

#: The reference implementation whose extra surface is also sanctioned.
REFERENCE_CLASS = "TreeState"

#: Class-level marker identifying a backend implementation.
BACKEND_MARKER = "backend_name"

#: Dunders and protocol plumbing exempt from the "extra method" check.
_IGNORED_METHODS = frozenset({"__init__", "__new__", "__init_subclass__"})


def _methods(summary: ModuleSummary, class_name: str) -> Dict[str, FunctionSummary]:
    return {
        fn.name: fn
        for fn in summary.methods_of(class_name)
        if fn.name not in _IGNORED_METHODS and not fn.name.startswith("__")
    }


def _signature_shape(
    fn: FunctionSummary,
) -> Tuple[Tuple[str, ...], Set[str], bool, bool]:
    pos = fn.pos_params
    if pos and pos[0] == "self":
        pos = pos[1:]
    return pos, set(fn.kwonly_params), fn.has_vararg, fn.has_kwarg


def _inherited_method_names(
    project: Project, module: str, class_name: str
) -> Set[str]:
    """Method names available through the project-resolvable base chain."""
    graph = project.call_graph()
    names: Set[str] = set()
    seen: Set[str] = set()
    stack = list(graph.class_bases.get(f"{module}:{class_name}", ()))
    while stack:
        class_id = stack.pop()
        if class_id in seen:
            continue
        seen.add(class_id)
        base_module, base_name = class_id.split(":", 1)
        base_summary = project.module_summary(base_module)
        if base_summary is not None:
            names.update(_methods(base_summary, base_name))
        stack.extend(graph.class_bases.get(class_id, ()))
    return names


@lint_rule("REP111", Severity.ERROR, scope="project")
def check_backend_parity(
    ctx: FileContext, project: Project
) -> Iterator[_Yield]:
    """TreeState backends must match the TreeStateBackend protocol and reference surface

    Rationale: the backend choice is pure performance policy — builders,
    the serve pool, and the experiments layer all switch backends by name
    and expect drop-in behavior.  A missing or re-shaped protocol method
    breaks that switch at runtime; an undeclared public extra quietly
    grows a surface only one backend has, and the next caller couples to
    it.

    Fix pattern: implement the protocol method with the protocol's exact
    signature; for a deliberate backend-only fast path either add it to
    the protocol and the reference too, rename it with a leading
    underscore, or keep it public under ``# repro: ignore[REP111]`` with a
    justification comment.
    """
    treestate = project.module_summary(TREESTATE_MODULE)
    if treestate is None or ctx.module is None:
        return
    protocol = _methods(treestate, PROTOCOL_CLASS)
    reference = _methods(treestate, REFERENCE_CLASS)
    if not protocol:
        return
    summary = project.summary(ctx)
    for cls_sum in summary.classes:
        if cls_sum.name == REFERENCE_CLASS and ctx.module == TREESTATE_MODULE:
            continue
        if cls_sum.name == PROTOCOL_CLASS:
            continue
        if not cls_sum.has_assign(BACKEND_MARKER):
            continue
        own = _methods(summary, cls_sum.name)
        inherited = _inherited_method_names(project, ctx.module, cls_sum.name)

        for name, proto_fn in sorted(protocol.items()):
            impl = own.get(name)
            if impl is None:
                if name not in inherited:
                    yield (
                        Loc(cls_sum.lineno, cls_sum.col),
                        f"backend {cls_sum.name} neither defines nor inherits "
                        f"protocol method {name}(); every TreeStateBackend "
                        "member must be drop-in callable",
                    )
                continue
            if _signature_shape(impl) != _signature_shape(proto_fn):
                yield (
                    Loc(impl.lineno, impl.col),
                    f"backend {cls_sum.name}.{name}() signature drifts from "
                    f"the TreeStateBackend protocol (expected positional "
                    f"{list(_signature_shape(proto_fn)[0])!r}, keyword-only "
                    f"{sorted(_signature_shape(proto_fn)[1])!r}); call sites "
                    "written against the protocol will not resolve",
                )

        sanctioned = set(protocol) | set(reference)
        for name, impl in sorted(own.items()):
            if not impl.is_public or name in sanctioned:
                continue
            yield (
                Loc(impl.lineno, impl.col),
                f"backend {cls_sum.name} adds public method {name}() that "
                "neither the TreeStateBackend protocol nor the TreeState "
                "reference exposes; add it to both, underscore it, or "
                "suppress with justification",
            )

