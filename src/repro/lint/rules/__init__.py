"""Stock lint rules — importing this package registers all of them.

==========  ========  =====================================================
Rule        Severity  Invariant
==========  ========  =====================================================
``REP101``  error     randomness flows through ``repro.utils.rng``
``REP102``  error     obs calls in hot-path code sit behind ``OBS.enabled``
``REP103``  warning   no ``==``/``!=`` on cost/reliability/lifetime floats
``REP104``  error     builder registry: registered, unique, right signature
``REP105``  error     ``AggregationTree`` is never mutated after creation
``REP106``  error     ``__all__`` is truthful; re-exports resolve
``REP107``  error     durations use ``perf_counter``, never ``time.time()``
``REP108``  error     async functions never reach blocking calls
``REP109``  error     no read-modify-write of shared attrs across an await
``REP110``  error     no live ``Generator`` crosses a process boundary
``REP111``  error     backends track the ``TreeStateBackend`` protocol
``REP112``  error     no frozen-tree mutation through call aliases
==========  ========  =====================================================

REP101–REP107 are file-scope (cacheable per file); REP108–REP112 plus the
cross-file halves of REP104/REP106 are project-scope — they read module
summaries, the call graph, and the effect analysis
(:mod:`repro.lint.graph`, :mod:`repro.lint.effects`).

(``REP000`` is the driver's pseudo-rule for unparsable files.)
"""

from repro.lint.rules import (
    aliasing,
    asyncsafe,
    boundary,
    builders,
    exports,
    floats,
    frozen,
    obs,
    parity,
    rng,
    timing,
)

__all__ = [
    "aliasing",
    "asyncsafe",
    "boundary",
    "builders",
    "exports",
    "floats",
    "frozen",
    "obs",
    "parity",
    "rng",
    "timing",
]
