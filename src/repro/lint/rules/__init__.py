"""Stock lint rules — importing this package registers all of them.

==========  ========  =====================================================
Rule        Severity  Invariant
==========  ========  =====================================================
``REP101``  error     randomness flows through ``repro.utils.rng``
``REP102``  error     obs calls in hot-path code sit behind ``OBS.enabled``
``REP103``  warning   no ``==``/``!=`` on cost/reliability/lifetime floats
``REP104``  error     builder registry: registered, unique, right signature
``REP105``  error     ``AggregationTree`` is never mutated after creation
``REP106``  error     ``__all__`` is truthful; re-exports resolve
``REP107``  error     durations use ``perf_counter``, never ``time.time()``
==========  ========  =====================================================

(``REP000`` is the driver's pseudo-rule for unparsable files.)
"""

from repro.lint.rules import builders, exports, floats, frozen, obs, rng, timing

__all__ = ["builders", "exports", "floats", "frozen", "obs", "rng", "timing"]
