"""REP103 — no float equality on cost / reliability / lifetime values.

``C(T)``, ``Q(T)`` and ``L(T)`` are accumulated floating-point quantities
(sums of ``-log q_e``, products of link PRRs, energy quotients); the engine
layer additionally maintains them *incrementally*, so two mathematically
equal trees can differ in the last ulp depending on the mutation path.
``==`` / ``!=`` on them is therefore a latent nondeterminism bug.  This rule
flags equality comparisons where either side is named after one of those
quantities — a method call (``t.cost() == u.cost()``), an attribute
(``result.lifetime != lc``), or a plain variable (``best_cost == cost``) —
and points at the tolerance helpers
(:func:`repro.utils.validation.approx_eq`, ``math.isclose``).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.lint.context import FileContext, Project
from repro.lint.findings import Severity
from repro.lint.registry import lint_rule

__all__ = ["METRIC_NAMES", "check_float_equality"]

#: The paper's tree metrics: accumulated floats, never equality-comparable.
METRIC_NAMES = frozenset({"cost", "reliability", "lifetime"})


def _metric_name(node: ast.expr) -> Optional[str]:
    """The metric a comparison side refers to, if any."""
    if isinstance(node, ast.Call):
        node = node.func  # t.cost() / cost() — inspect the callee name
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    else:
        return None
    if name in METRIC_NAMES:
        return name
    for metric in METRIC_NAMES:
        if name.endswith("_" + metric):
            return name
    return None


@lint_rule("REP103", Severity.WARNING)
def check_float_equality(
    ctx: FileContext, project: Project
) -> Iterator[Tuple[ast.AST, str]]:
    """== / != on cost, reliability, or lifetime values; use a tolerance helper"""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        for op, comparator in zip(node.ops, node.comparators):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (node.left, comparator):
                name = _metric_name(side)
                if name is not None:
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield (
                        node,
                        f"float equality ({symbol}) on {name!r}: these are "
                        "accumulated floats whose last ulp depends on the "
                        "evaluation path; use "
                        "repro.utils.validation.approx_eq or math.isclose",
                    )
                    break  # one finding per comparison pair
