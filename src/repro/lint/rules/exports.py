"""REP106 — export drift: ``__all__`` is truthful and re-exports resolve.

Two failure modes this catches before a user's import does:

* a name listed in ``__all__`` that the module never defines (typo, or the
  definition was moved without updating the list), including duplicates;
* a ``from repro.x import name`` whose source module — when it is part of
  the same lint run — defines no such top-level name, which is how package
  ``__init__`` re-export chains rot after a refactor.

Cross-module resolution is static and conservative: only absolute/relative
imports that resolve to a file in the current run are checked, a name
counts as defined if it is bound at module top level (including inside
``if``/``try`` blocks), and importing a submodule by name is recognized.

This is a project-scope rule working entirely from module summaries
(:class:`~repro.lint.graph.ModuleSummary`): ``__all__`` lists are
pre-evaluated at summary-extraction time and import records carry their
resolved absolute targets, so a warm cached run re-checks every re-export
chain without touching an AST.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple, Union

from repro.lint.context import FileContext, Project
from repro.lint.findings import Loc, Severity
from repro.lint.registry import lint_rule

__all__ = ["check_export_drift"]

_Yield = Tuple[Union[ast.AST, Loc], str]


def _check_all_list(ctx: FileContext, project: Project) -> Iterator[_Yield]:
    assert ctx.module is not None
    symbols = project.top_level_symbols(ctx.module)
    if symbols is None:  # pragma: no cover - ctx is always in its own project
        return
    summary = project.summary(ctx)
    for decl in summary.all_decls:
        loc = Loc(decl.lineno, decl.col)
        if decl.kind == "dynamic":
            yield (
                loc,
                "__all__ is not a static list of strings; the export surface "
                "must be statically auditable",
            )
            continue
        if decl.kind == "badtype":
            yield (loc, "__all__ must be a list/tuple of name strings")
            continue
        seen: List[str] = []
        for name in decl.names:
            if name in seen:
                yield (loc, f"__all__ lists {name!r} more than once")
            seen.append(name)
            if name not in symbols:
                yield (
                    loc,
                    f"__all__ exports {name!r} but the module defines no such "
                    "top-level name",
                )


def _check_reexports(ctx: FileContext, project: Project) -> Iterator[_Yield]:
    summary = project.summary(ctx)
    for record in summary.imports:
        if record.kind != "from" or record.target is None:
            continue
        target = record.target
        symbols = project.top_level_symbols(target)
        if symbols is None:
            continue  # outside this lint run (stdlib, third-party, unlinted)
        for name, _asname in record.names:
            if name in symbols:
                continue
            if f"{target}.{name}" in project.modules:
                continue  # importing a submodule by name
            yield (
                Loc(record.lineno, record.col),
                f"'from {target} import {name}' does not resolve: "
                f"{target} defines no top-level {name!r}",
            )


@lint_rule("REP106", Severity.ERROR, scope="project")
def check_export_drift(
    ctx: FileContext, project: Project
) -> Iterator[_Yield]:
    """__all__ entries must exist and intra-package re-exports must resolve

    Rationale: the package's import surface is its API contract.  A stale
    ``__all__`` or a broken ``from repro.x import name`` re-export only
    explodes when a user's import actually exercises it — long after the
    refactor that caused it.

    Fix pattern: keep ``__all__`` a literal list of names the module
    really binds at top level, and update package ``__init__`` re-export
    chains in the same commit that moves a definition.
    """
    if ctx.module is not None:
        yield from _check_all_list(ctx, project)
    yield from _check_reexports(ctx, project)
