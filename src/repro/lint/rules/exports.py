"""REP106 — export drift: ``__all__`` is truthful and re-exports resolve.

Two failure modes this catches before a user's import does:

* a name listed in ``__all__`` that the module never defines (typo, or the
  definition was moved without updating the list), including duplicates;
* a ``from repro.x import name`` whose source module — when it is part of
  the same lint run — defines no such top-level name, which is how package
  ``__init__`` re-export chains rot after a refactor.

Cross-module resolution is static and conservative: only absolute/relative
imports that resolve to a file in the current run are checked, a name
counts as defined if it is bound at module top level (including inside
``if``/``try`` blocks), and importing a submodule by name is recognized.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.lint.context import FileContext, Project
from repro.lint.findings import Severity
from repro.lint.registry import lint_rule

__all__ = ["check_export_drift"]


def _all_assignments(
    tree: ast.Module,
) -> Iterator[Tuple[ast.stmt, Optional[ast.expr]]]:
    """Top-level ``__all__ = ...`` / ``__all__: ... = ...`` statements."""
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    yield node, node.value
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.target.id == "__all__":
                yield node, node.value


def _check_all_list(
    ctx: FileContext, project: Project
) -> Iterator[Tuple[ast.AST, str]]:
    assert ctx.module is not None
    symbols = project.top_level_symbols(ctx.module)
    if symbols is None:  # pragma: no cover - ctx is always in its own project
        return
    for node, value in _all_assignments(ctx.tree):
        if value is None:
            continue  # bare annotation, no list to check
        try:
            names = ast.literal_eval(value)
        except ValueError:
            yield (
                node,
                "__all__ is not a static list of strings; the export surface "
                "must be statically auditable",
            )
            continue
        if not isinstance(names, (list, tuple)) or not all(
            isinstance(name, str) for name in names
        ):
            yield (node, "__all__ must be a list/tuple of name strings")
            continue
        seen: List[str] = []
        for name in names:
            if name in seen:
                yield (node, f"__all__ lists {name!r} more than once")
            seen.append(name)
            if name not in symbols:
                yield (
                    node,
                    f"__all__ exports {name!r} but the module defines no such "
                    "top-level name",
                )


def _import_target(ctx: FileContext, node: ast.ImportFrom) -> Optional[str]:
    """Absolute module an ImportFrom pulls from, resolving relative levels."""
    if node.level == 0:
        return node.module
    if ctx.module is None:
        return None
    base_parts = ctx.module.split(".")
    if not ctx.is_package:
        base_parts = base_parts[:-1]
    # level 1 = the current package; each extra level pops one more parent.
    drop = node.level - 1
    if drop > len(base_parts):
        return None
    if drop:
        base_parts = base_parts[:-drop]
    if node.module:
        base_parts = base_parts + node.module.split(".")
    return ".".join(base_parts) if base_parts else None


def _check_reexports(
    ctx: FileContext, project: Project
) -> Iterator[Tuple[ast.AST, str]]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ImportFrom):
            continue
        target = _import_target(ctx, node)
        if target is None:
            continue
        symbols = project.top_level_symbols(target)
        if symbols is None:
            continue  # outside this lint run (stdlib, third-party, unlinted)
        for alias in node.names:
            if alias.name == "*":
                continue
            if alias.name in symbols:
                continue
            if f"{target}.{alias.name}" in project.modules:
                continue  # importing a submodule by name
            yield (
                node,
                f"'from {target} import {alias.name}' does not resolve: "
                f"{target} defines no top-level {alias.name!r}",
            )


@lint_rule("REP106", Severity.ERROR)
def check_export_drift(
    ctx: FileContext, project: Project
) -> Iterator[Tuple[ast.AST, str]]:
    """__all__ entries must exist and intra-package re-exports must resolve"""
    if ctx.module is not None:
        yield from _check_all_list(ctx, project)
    yield from _check_reexports(ctx, project)
