"""REP101 — RNG discipline: all randomness flows through ``repro.utils.rng``.

Seeded determinism of every figure is a headline claim of this
reproduction; it survives only if no module draws from an RNG the seed
plumbing doesn't control.  This rule bans, everywhere except
``repro/utils/rng.py`` itself:

* importing the stdlib ``random`` module (its global state defeats
  per-trial seeding);
* calling ``numpy.random`` module functions — ``np.random.default_rng(...)``,
  ``np.random.uniform(...)``, legacy ``np.random.seed(...)`` — whether via
  attribute access or ``from numpy.random import ...``.

Referencing ``numpy.random`` *types* (``Generator``, ``SeedSequence``,
``BitGenerator`` and the stock bit generators) stays legal: annotations and
``isinstance`` checks are how the seed plumbing is typed.  The fix is to
accept a ``SeedLike`` and call :func:`repro.utils.rng.as_rng` /
:func:`~repro.utils.rng.spawn_rngs`.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set, Tuple

from repro.lint.context import FileContext, Project
from repro.lint.findings import Severity
from repro.lint.registry import lint_rule

__all__ = ["ALLOWED_NUMPY_RANDOM_NAMES", "check_rng_discipline"]

#: ``numpy.random`` attributes that are types/plumbing, not draw functions.
ALLOWED_NUMPY_RANDOM_NAMES = frozenset(
    {
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "MT19937",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
    }
)

#: The one module allowed to construct generators directly.
_EXEMPT_MODULES = frozenset({"repro.utils.rng"})

_FIX_HINT = "route randomness through repro.utils.rng.as_rng/spawn_rngs"


def _dotted_chain(node: ast.expr) -> str:
    """``a.b.c`` for a Name/Attribute chain, else ``""``."""
    parts = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return ""
    parts.append(current.id)
    return ".".join(reversed(parts))


@lint_rule("REP101", Severity.ERROR)
def check_rng_discipline(
    ctx: FileContext, project: Project
) -> Iterator[Tuple[ast.AST, str]]:
    """bare random/np.random use outside utils/rng.py breaks seeded determinism"""
    if ctx.module in _EXEMPT_MODULES:
        return

    numpy_aliases: Set[str] = set()  # names bound to the numpy module
    numpy_random_aliases: Set[str] = set()  # names bound to numpy.random

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    numpy_aliases.add(alias.asname or "numpy")
                elif alias.name == "numpy.random":
                    if alias.asname:
                        numpy_random_aliases.add(alias.asname)
                    else:
                        numpy_aliases.add("numpy")
                elif alias.name == "random" or alias.name.startswith("random."):
                    yield (
                        node,
                        "stdlib random module imported; its global state "
                        f"defeats per-seed reproducibility — {_FIX_HINT}",
                    )
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module == "random":
                yield (
                    node,
                    "stdlib random functions imported; "
                    f"{_FIX_HINT} (accept a SeedLike argument)",
                )
            elif node.module == "numpy.random":
                for alias in node.names:
                    if alias.name == "*":
                        yield (node, f"star import from numpy.random — {_FIX_HINT}")
                    elif alias.name not in ALLOWED_NUMPY_RANDOM_NAMES:
                        yield (
                            node,
                            f"numpy.random.{alias.name} imported directly; "
                            f"{_FIX_HINT}",
                        )
            elif node.module == "numpy":
                for alias in node.names:
                    if alias.name == "random":
                        numpy_random_aliases.add(alias.asname or "random")

    numpy_random_prefixes = {f"{alias}.random" for alias in numpy_aliases}
    numpy_random_prefixes.update(numpy_random_aliases)

    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        chain = _dotted_chain(node.func)
        if not chain or "." not in chain:
            continue
        base, _, attr = chain.rpartition(".")
        if base in numpy_random_prefixes and attr not in ALLOWED_NUMPY_RANDOM_NAMES:
            yield (
                node,
                f"call to {chain}() bypasses the seed plumbing; {_FIX_HINT}",
            )
