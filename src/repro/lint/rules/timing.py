"""REP107 — timing discipline: durations come from monotonic clocks.

``time.time()`` is the wall clock: NTP steps it, DST never but leap
smearing does, and a VM migration can move it by minutes.  Any *duration*
computed from it — ``t1 - t0`` around a build, a latency histogram, an
SLO breach decision — silently corrupts under clock adjustment, which is
exactly when a long-running server's telemetry matters most.  The repo's
timing already runs on ``time.perf_counter()`` (benchmarks, tracer epoch,
serve latency); this rule keeps it that way.

Banned everywhere in ``src``: calling ``time.time`` (via the module
attribute, an alias, or ``from time import time``).

Allowed: a ``time.time()`` call whose value is *recorded as a wall-clock
instant*, recognized structurally — the call is directly assigned to, or
passed as a keyword argument / stored under a dict key, whose name
mentions ``timestamp`` / ``wall`` / ``utc`` / ``epoch``.  That is the one
legitimate use (labelling a record with "when did this run happen", e.g.
``BenchReport(timestamp=time.time())``); arithmetic on such a value still
has to happen against another wall-clock instant, never a monotonic one.

The fix is ``time.perf_counter()`` for intervals (or ``time.monotonic()``
when cross-thread comparability matters more than resolution).
"""

from __future__ import annotations

import ast
from typing import Iterator, Set, Tuple

from repro.lint.context import FileContext, Project
from repro.lint.findings import Severity
from repro.lint.registry import lint_rule

__all__ = ["WALL_CLOCK_NAME_MARKERS", "check_timing_discipline"]

#: Substrings that mark a binding as an intentional wall-clock instant.
WALL_CLOCK_NAME_MARKERS = ("timestamp", "wall", "utc", "epoch")

_FIX_HINT = (
    "use time.perf_counter() for durations; time.time() only for "
    "wall-clock record fields named like 'timestamp'"
)


def _is_wall_clock_name(name: str) -> bool:
    lowered = name.lower()
    return any(marker in lowered for marker in WALL_CLOCK_NAME_MARKERS)


def _target_name(node: ast.expr) -> str:
    """The trailing identifier of an assignment target (``a.b`` → ``b``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _wall_clock_sanctioned(tree: ast.AST) -> Set[int]:
    """ids of Call nodes whose value lands in a wall-clock-named slot."""
    sanctioned: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.keyword):
            if node.arg is not None and _is_wall_clock_name(node.arg):
                sanctioned.add(id(node.value))
        elif isinstance(node, ast.Assign):
            if all(_is_wall_clock_name(_target_name(t)) for t in node.targets):
                sanctioned.add(id(node.value))
        elif isinstance(node, ast.AnnAssign):
            if _is_wall_clock_name(_target_name(node.target)):
                sanctioned.add(id(node.value))
        elif isinstance(node, ast.Dict):
            for key, value in zip(node.keys, node.values):
                if (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and _is_wall_clock_name(key.value)
                ):
                    sanctioned.add(id(value))
    return sanctioned


@lint_rule("REP107", Severity.ERROR)
def check_timing_discipline(
    ctx: FileContext, project: Project
) -> Iterator[Tuple[ast.AST, str]]:
    """time.time() measures wall clock, not durations — use perf_counter"""
    time_aliases: Set[str] = set()  # names bound to the time module
    func_aliases: Set[str] = set()  # names bound to the time.time function

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    time_aliases.add(alias.asname or "time")
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module == "time":
                for alias in node.names:
                    if alias.name == "time":
                        func_aliases.add(alias.asname or "time")

    if not time_aliases and not func_aliases:
        return

    sanctioned = _wall_clock_sanctioned(ctx.tree)
    attr_chains = {f"{alias}.time" for alias in time_aliases}

    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call) or id(node) in sanctioned:
            continue
        func = node.func
        called = ""
        if isinstance(func, ast.Attribute):
            if (
                isinstance(func.value, ast.Name)
                and f"{func.value.id}.{func.attr}" in attr_chains
            ):
                called = f"{func.value.id}.{func.attr}"
        elif isinstance(func, ast.Name) and func.id in func_aliases:
            called = func.id
        if called:
            yield (
                node,
                f"call to {called}() reads the adjustable wall clock; "
                f"{_FIX_HINT}",
            )
