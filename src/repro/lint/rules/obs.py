"""REP102 — obs hot-path guarding: no unguarded ``OBS.registry``/``OBS.tracer``.

The instrumentation layer's contract (:mod:`repro.obs.runtime`) is that the
null path costs one attribute load and a branch; that holds only while every
metrics/tracer call in hot algorithm code sits behind ``OBS.enabled`` (or
``is_enabled()``).  This rule checks the packages on the build hot path —
``repro.core``, ``repro.engine``, ``repro.baselines`` — and flags any
``OBS.registry`` / ``OBS.tracer`` access that is not lexically inside a
guarded ``if``/conditional expression.  The distributed protocol and the
fault-injection plane (``repro.distributed``, ``repro.faults``) sit on the
per-round simulation hot path, and the serving layer (``repro.serve``)
sits on the per-request path, so they are held to the same contract.

Recognized guards, matching the idioms already in the tree::

    if OBS.enabled: ...
    if OBS.enabled and moves: ...
    enabled = OBS.enabled          # alias, tested later
    if enabled: ...
    if is_enabled(): ...
    x = a if OBS.enabled else b
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from repro.lint.context import FileContext, Project
from repro.lint.findings import Severity
from repro.lint.registry import lint_rule

__all__ = ["HOT_PACKAGES", "check_obs_guard"]

#: Packages whose per-call overhead budget forbids unguarded instrumentation.
HOT_PACKAGES = (
    "repro.core",
    "repro.engine",
    "repro.baselines",
    "repro.distributed",
    "repro.experiments",
    "repro.faults",
    "repro.serve",
    "repro.simulation",
)

_GUARDED_ATTRS = frozenset({"registry", "tracer"})


def _is_obs_enabled_expr(node: ast.expr) -> bool:
    """``OBS.enabled`` or an ``is_enabled()`` call."""
    if (
        isinstance(node, ast.Attribute)
        and node.attr == "enabled"
        and isinstance(node.value, ast.Name)
        and node.value.id == "OBS"
    ):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        return name == "is_enabled"
    return False


def _collect_guard_aliases(tree: ast.Module) -> Set[str]:
    """Names assigned from ``OBS.enabled`` / ``is_enabled()`` anywhere in the file."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and _is_obs_enabled_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    aliases.add(target.id)
    return aliases


def _test_guards(test: ast.expr, aliases: Set[str]) -> bool:
    """Whether a condition mentions the obs switch (directly or via alias)."""
    for node in ast.walk(test):
        if _is_obs_enabled_expr(node):
            return True
        if isinstance(node, ast.Name) and node.id in aliases:
            return True
    return False


@lint_rule("REP102", Severity.ERROR)
def check_obs_guard(
    ctx: FileContext, project: Project
) -> Iterator[Tuple[ast.AST, str]]:
    """OBS.registry/OBS.tracer use in hot-path code outside an OBS.enabled guard"""
    if not ctx.in_package(*HOT_PACKAGES):
        return
    aliases = _collect_guard_aliases(ctx.tree)
    violations: List[ast.AST] = []

    def visit(node: ast.AST, guarded: bool) -> None:
        if (
            isinstance(node, ast.Attribute)
            and node.attr in _GUARDED_ATTRS
            and isinstance(node.value, ast.Name)
            and node.value.id == "OBS"
            and not guarded
        ):
            violations.append(node)
            return
        if isinstance(node, ast.If):
            inner = guarded or _test_guards(node.test, aliases)
            visit(node.test, guarded)
            for child in node.body:
                visit(child, inner)
            for child in node.orelse:
                visit(child, guarded)
            return
        if isinstance(node, ast.IfExp):
            inner = guarded or _test_guards(node.test, aliases)
            visit(node.test, guarded)
            visit(node.body, inner)
            visit(node.orelse, guarded)
            return
        for child in ast.iter_child_nodes(node):
            visit(child, guarded)

    visit(ctx.tree, False)
    for node in violations:
        attr = node.attr if isinstance(node, ast.Attribute) else "?"
        yield (
            node,
            f"OBS.{attr} accessed on the build hot path without an "
            "OBS.enabled / is_enabled() guard; wrap it in "
            "`if OBS.enabled:` to keep the null path branch-cheap",
        )
