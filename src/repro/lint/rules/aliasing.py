"""REP112 — interprocedural frozen-``AggregationTree`` mutation via aliases.

REP105 catches ``tree.cost = 0`` written directly inside a function.  It
cannot see the two-step version: a call site passes a frozen tree to a
helper whose *parameter* has a different name, and the helper (or a
helper it calls) mutates attributes on that parameter.  The effect
analysis closes the gap — it computes, per function, which parameters get
attributes written on them, directly or transitively through further
calls — and this rule flags every call site that binds a tree-valued
argument (REP105's naming heuristic: ``tree``, ``*_tree``,
``AggregationTree(...)``) to such a parameter.

Construction internals are exempt the same way REP105 exempts them:
call sites are not flagged when the *callee* lives in the modules that
legitimately assemble trees before freezing.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple, Union

from repro.lint.context import FileContext, Project
from repro.lint.effects import arg_param_pairs
from repro.lint.findings import Loc, Severity
from repro.lint.registry import lint_rule

__all__ = ["check_aliased_tree_mutation"]

_Yield = Tuple[Union[ast.AST, Loc], str]

#: Modules allowed to mutate trees mid-construction (mirrors REP105).
EXEMPT_MODULES = frozenset({"repro.core.tree", "repro.engine.treestate"})


@lint_rule("REP112", Severity.ERROR, scope="project")
def check_aliased_tree_mutation(
    ctx: FileContext, project: Project
) -> Iterator[_Yield]:
    """frozen AggregationTree instances must not be mutated through call aliases

    Rationale: a built tree is frozen — cost/reliability/lifetime were
    computed once from its parents map and every consumer (caches, the
    serve plane, parity tests) relies on them never drifting.  Passing the
    tree into a helper that assigns attributes on its parameter mutates it
    just as surely as assigning in place, but under a different name where
    REP105 cannot see it.

    Fix pattern: rebuild instead of mutating — copy into a mutable
    ``TreeState`` (``TreeState.from_tree``), apply the change, and
    ``freeze()`` a new tree; or return modified values instead of writing
    them onto the input.
    """
    summary = project.summary(ctx)
    if summary.module is None or ctx.module in EXEMPT_MODULES:
        return
    graph = project.call_graph()
    effects = project.effect_analysis()
    for fn in summary.functions:
        node_id = f"{summary.module}:{fn.qualname}"
        for rc in graph.calls.get(node_id, ()):
            if rc.target is None:
                continue
            callee_node = graph.nodes[rc.target]
            if callee_node.module in EXEMPT_MODULES:
                continue
            mutated = effects.params_mutated_by(rc.target)
            if not mutated:
                continue
            callee = callee_node.summary
            for arg, param in arg_param_pairs(rc.site, callee):
                if param in mutated and arg.tree:
                    yield (
                        Loc(rc.site.lineno, rc.site.col),
                        f"frozen tree argument {arg.text!r} is passed to "
                        f"{callee.name}(), which mutates attributes of its "
                        f"{param!r} parameter (directly or transitively); "
                        "copy into a TreeState and freeze a new tree instead",
                    )
