"""Prüfer-code machinery for the distributed protocol (Section VI-A).

* :mod:`repro.prufer.codec` — Algorithms 2 (encode) and 3 (decode) for
  sink-rooted labelled trees, plus Eq. 23 children counting.
* :mod:`repro.prufer.updates` — the ``(P, D)`` sequence pair every sensor
  maintains and its ``O(n)`` parent-change splice.
"""

from repro.prufer.codec import (
    children_counts_from_code,
    code_is_valid,
    decode,
    encode,
)
from repro.prufer.updates import SequencePair

__all__ = [
    "SequencePair",
    "children_counts_from_code",
    "code_is_valid",
    "decode",
    "encode",
]
