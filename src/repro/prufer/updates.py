"""The (P, D) sequence pair and its local update operations (Section VI).

After the initial tree is built, "the sink calculates the Prüfer code and
broadcasts to all sensors".  From then on every node maintains the pair
``(P, D)`` — the code and its removal sequence — and applies *splice*
updates when a Parent-Changing message arrives, in ``O(n)`` per sensor.

Important subtlety reproduced from the paper's own example: the updated
``P'`` is **not** the canonical re-encoding of the new tree (the paper's
``P' = (2,4,4,7,0,8,8)`` does not canonically decode to its
``D' = (6,3,2,4,7,5,1,8,0)``).  The pair is instead kept mutually
consistent: ``D'`` enumerates all nodes with the sink last, and
``P'[i] = parent(D'[i])``, so the rooted edge set is always
``{(D[i], P[i])} ∪ {(D[n-2], D[n-1])}``.  Validity only requires ``D``'s
second-to-last entry to be a child of the sink; the splice preserves that
(with an explicit fix-up when the moved component swallows it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.core.tree import AggregationTree
from repro.network.model import Network
from repro.prufer import codec

__all__ = ["SequencePair"]


@dataclass(frozen=True)
class SequencePair:
    """A rooted spanning tree as the paper's ``(P, D)`` sequence pair.

    Attributes:
        code: The (possibly spliced, non-canonical) Prüfer sequence ``P``.
        order: The removal sequence ``D``; ``order[-1]`` is the sink and
            ``order[-2]`` its remaining child.
    """

    code: Tuple[int, ...]
    order: Tuple[int, ...]

    def __post_init__(self) -> None:
        n = len(self.order)
        if n < 2:
            raise ValueError("sequence pair needs at least 2 nodes")
        if len(self.code) != n - 2:
            raise ValueError(
                f"code length {len(self.code)} inconsistent with {n} nodes"
            )
        if self.order[-1] != 0:
            raise ValueError("D must end with the sink (label 0)")
        if sorted(self.order) != list(range(n)):
            raise ValueError("D must be a permutation of all node labels")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_tree(cls, tree: AggregationTree) -> "SequencePair":
        """Canonical pair for *tree* (Algorithm 2 encode + Algorithm 3 decode)."""
        code = codec.encode(tree)
        order = codec.decode(code, tree.n)
        return cls(code=tuple(code), order=tuple(order))

    @classmethod
    def from_parent_map(cls, parents: Dict[int, int], n: int) -> "SequencePair":
        """Pair from an explicit parent map, ordering children before parents."""
        children: List[List[int]] = [[] for _ in range(n)]
        for v, p in parents.items():
            children[p].append(v)
        # Post-order from the sink: children enumerated before their parent,
        # sink last.  Any such order is a valid D.
        order: List[int] = []
        stack: List[Tuple[int, bool]] = [(0, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                order.append(node)
            else:
                stack.append((node, True))
                for c in children[node]:
                    stack.append((c, False))
        if len(order) != n:
            raise ValueError("parent map does not connect all nodes to the sink")
        code = tuple(parents[v] for v in order[:-2])
        return cls(code=code, order=tuple(order))

    # ------------------------------------------------------------------
    # Tree views
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self.order)

    def parent_map(self) -> Dict[int, int]:
        """Rooted parent of every non-sink node."""
        parents = {self.order[i]: self.code[i] for i in range(self.n - 2)}
        parents[self.order[-2]] = self.order[-1]
        return parents

    def children_counts(self) -> List[int]:
        """Children count per node (Eq. 23 applied to the pair)."""
        counts = [0] * self.n
        for p in self.code:
            counts[p] += 1
        counts[0] += 1
        return counts

    def to_tree(self, network: Network) -> AggregationTree:
        """Materialise as an :class:`AggregationTree` over *network*."""
        return AggregationTree(network, self.parent_map())

    def component(self, node: int) -> Set[int]:
        """Nodes separated from the sink when *node*'s parent edge is cut.

        This is the subtree of *node* — what the link-getting-worse handler
        computes to know which side it is on (Section VI-B1).
        """
        if node == 0:
            raise ValueError("the sink has no parent edge to cut")
        parents = self.parent_map()
        children: Dict[int, List[int]] = {}
        for v, p in parents.items():
            children.setdefault(p, []).append(v)
        out = {node}
        stack = [node]
        while stack:
            u = stack.pop()
            for c in children.get(u, ()):
                out.add(c)
                stack.append(c)
        return out

    # ------------------------------------------------------------------
    # The splice update
    # ------------------------------------------------------------------
    def change_parent(self, child: int, new_parent: int) -> "SequencePair":
        """Return the pair after re-attaching *child* under *new_parent*.

        Reproduces the paper's update: the component of *child* is moved to
        the front of ``D`` (in its existing relative order), the remainder
        keeps its order, and ``P`` is rewritten as the parents of the new
        ``D`` prefix.  ``O(n)`` time, as claimed.

        Raises ``ValueError`` for the sink, a self-parent, or a new parent
        inside *child*'s own subtree (which would disconnect the tree).
        """
        if child == 0:
            raise ValueError("the sink cannot change parent")
        if new_parent == child:
            raise ValueError("a node cannot be its own parent")
        subtree = self.component(child)
        if new_parent in subtree:
            raise ValueError(
                f"new parent {new_parent} lies inside {child}'s subtree; "
                "the change would disconnect the tree"
            )
        parents = self.parent_map()
        parents[child] = new_parent

        moved = [v for v in self.order if v in subtree]
        rest = [v for v in self.order if v not in subtree and v != 0]
        ordered = moved + rest
        # Validity fix-up: D's second-to-last entry must be a child of the
        # sink.  The tail inherits that from the old order unless the moved
        # component swallowed it; then promote the last sink-child found.
        if parents[ordered[-1]] != 0:
            for i in range(len(ordered) - 2, -1, -1):
                if parents[ordered[i]] == 0:
                    ordered.append(ordered.pop(i))
                    break
            else:  # pragma: no cover - impossible on a rooted tree
                raise AssertionError("rooted tree without a sink child")
        order = tuple(ordered) + (0,)
        code = tuple(parents[v] for v in ordered[:-1])
        return SequencePair(code=code, order=order)
