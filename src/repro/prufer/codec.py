"""Prüfer codec for labelled aggregation trees (paper Algorithms 2 and 3).

The paper extends the classic Prüfer sequence to sink-rooted aggregation
trees: the sink carries the smallest label (0), encoding repeatedly removes
the *largest-labelled* leaf and appends its remaining neighbour, and decoding
reconstructs the removal order.  Two properties make the code useful for the
distributed protocol:

* because the sink has the smallest label it is never removed, so the final
  remaining edge is always incident to the sink and every ``(d_i, p_i)``
  pair is a (child, parent) edge of the *rooted* tree — the code encodes the
  parent map directly;
* a node's children count equals its number of occurrences in the code
  (Eq. 23), ``+1`` for the sink — so lifetime checks need only the code.

Both algorithms run in ``O(n log n)`` using heaps, as the paper states.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Sequence

from repro.core.tree import AggregationTree

__all__ = [
    "encode",
    "decode",
    "children_counts_from_code",
    "code_is_valid",
]


def encode(tree: AggregationTree) -> List[int]:
    """Algorithm 2: Prüfer code of a sink-rooted tree (length ``n - 2``).

    Repeatedly removes the leaf with the largest label and appends its
    neighbour.  Requires ``n >= 2``; a two-node tree encodes to ``[]``.
    """
    n = tree.n
    if n < 2:
        raise ValueError(f"Prüfer codes require n >= 2 nodes, got {n}")
    degree = [0] * n
    adj: List[Dict[int, None]] = [dict() for _ in range(n)]
    for u, v in tree.edges():
        adj[u][v] = None
        adj[v][u] = None
        degree[u] += 1
        degree[v] += 1

    # Max-heap of current leaves (negated labels).  The sink (label 0) is
    # never popped while any other leaf exists, and the loop stops before it
    # could be: n - 2 removals always leave the sink plus one neighbour.
    heap = [-v for v in range(n) if degree[v] == 1]
    heapq.heapify(heap)
    removed = [False] * n
    code: List[int] = []
    for _ in range(n - 2):
        leaf = -heapq.heappop(heap)
        if leaf == tree.sink:
            # Defensive: only reachable if the structure was not a tree.
            raise ValueError("sink became the largest leaf; tree is malformed")
        removed[leaf] = True
        (neighbour,) = (x for x in adj[leaf] if not removed[x])
        code.append(neighbour)
        del adj[neighbour][leaf]
        degree[neighbour] -= 1
        if degree[neighbour] == 1:
            heapq.heappush(heap, -neighbour)
    return code


def decode(code: Sequence[int], n: int) -> List[int]:
    """Algorithm 3: recover the removal sequence ``D`` (length ``n``).

    ``D[i]`` is the node removed at encoding step ``i``; ``D[-2]`` is the
    sink's remaining neighbour and ``D[-1]`` the sink itself.  The rooted
    edge set is ``{(D[i], code[i])} ∪ {(D[n-2], D[n-1])}`` with the second
    element of each pair being the parent.

    Raises ``ValueError`` on codes that are not valid for *n* nodes.
    """
    code = list(code)
    if n < 2:
        raise ValueError(f"decoding requires n >= 2, got {n}")
    if len(code) != n - 2:
        raise ValueError(f"code for {n} nodes must have length {n - 2}, got {len(code)}")
    for p in code:
        if not (0 <= p < n):
            raise ValueError(f"code entry {p} out of range [0, {n})")

    remaining = [0] * n  # occurrences left in the not-yet-consumed code
    for p in code:
        remaining[p] += 1

    # Max-heap of nodes eligible to be "removed" next: not yet output and no
    # remaining occurrences in the unread suffix of the code.
    heap = [-v for v in range(n) if remaining[v] == 0]
    heapq.heapify(heap)
    used = [False] * n
    out: List[int] = []
    for i in range(n - 2):
        while heap and used[-heap[0]]:
            heapq.heappop(heap)
        if not heap:
            raise ValueError("invalid Prüfer code: ran out of removable nodes")
        node = -heapq.heappop(heap)
        if node == 0:
            raise ValueError("invalid Prüfer code: sink selected for removal")
        used[node] = True
        out.append(node)
        p = code[i]
        remaining[p] -= 1
        if remaining[p] == 0 and not used[p]:
            heapq.heappush(heap, -p)

    tail = [v for v in range(n - 1, -1, -1) if not used[v] and v != 0]
    if len(tail) != 1:
        raise ValueError("invalid Prüfer code: ambiguous final edge")
    out.append(tail[0])
    out.append(0)
    return out


def children_counts_from_code(code: Sequence[int], n: int) -> List[int]:
    """Eq. 23: children counts straight from the code, without decoding.

    ``Ch(v) = N_P(v)`` for non-sink nodes and ``N_P(0) + 1`` for the sink —
    this is how protocol nodes evaluate lifetime constraints locally.
    """
    counts = [0] * n
    for p in code:
        if not (0 <= p < n):
            raise ValueError(f"code entry {p} out of range [0, {n})")
        counts[p] += 1
    counts[0] += 1
    return counts


def code_is_valid(code: Sequence[int], n: int) -> bool:
    """Whether *code* decodes to a tree on *n* nodes without error."""
    try:
        decode(code, n)
        return True
    except ValueError:
        return False
