"""The MRLC linear program ``LP(G, L', W)`` with lazy subtour constraints.

Section IV-C formulates MRLC as

    min  sum_e c_e x_e
    s.t. 0 <= x_e (<= 1)
         x(E(S)) <= |S| - 1      for all S ⊆ V      (subtour, lazy)
         x(E(V))  = |V| - 1                          (spanning)
         x(L(v)) >= L'           for all v in W      (lifetime)

The lifetime rows are linear degree bounds (see :mod:`repro.core.lifetime`):
``x(delta(v)) <= B(v) + [v != sink]``.  The exponential family of subtour
constraints is generated lazily by the min-cut separation oracle
(:mod:`repro.core.separation`) around scipy's HiGHS solver; the dual-simplex
method is used so the returned solution is an extreme point (a basic feasible
solution), which is what IRA's integrality argument (Lemma 1 / Lemma 4)
requires.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.core.errors import InfeasibleLifetimeError, LPSolverError
from repro.core.separation import find_violated_subtours
from repro.network.model import Network
from repro.obs import OBS
from repro.utils.rng import stable_hash_seed

__all__ = ["LPSolution", "MRLCLinearProgram", "solve_mrlc_lp"]

#: x values below this are treated as zero when pruning the support.
SUPPORT_EPS = 1e-7

#: Cutting-plane rounds before giving up (never reached on sane instances).
MAX_CUT_ROUNDS = 200

#: Magnitude of the deterministic cost perturbation (see _perturbed_cost).
PERTURBATION_SCALE = 2e-6


def _perturbed_cost(cost: float, u: int, v: int) -> float:
    """Edge cost plus a tiny deterministic, edge-unique perturbation.

    Estimated PRRs produce exact cost ties (beacon counts quantize them) and
    perfect links have cost exactly 0; with many ties the LP optimum is a
    huge face, HiGHS returns arbitrary vertices on it, and subtour cut
    generation can wander for exponentially many rounds.  A per-edge jitter
    of ~2e-6 — two orders above solver tolerances, three below real cost
    differences — makes the optimum essentially unique so the cutting-plane
    loop converges in a few rounds.  The jitter is a pure function of the
    endpoint labels, so it is stable across IRA iterations and re-runs; all
    *reported* tree costs use the true edge costs.
    """
    jitter = 1.0 + (stable_hash_seed("lp-perturb", u, v) % 4096) / 4096.0
    return cost + PERTURBATION_SCALE * jitter


@dataclass
class LPSolution:
    """An extreme-point solution of ``LP(G, L', W)``.

    Attributes:
        edges: Edge endpoint pairs, aligned with :attr:`x`.
        x: Optimal variable values (one per edge).
        objective: Optimal cost value.
        cuts: Subtour sets that were generated to reach feasibility.
        n_lp_solves: Number of HiGHS invocations in the cutting-plane loop.
    """

    edges: List[Tuple[int, int]]
    x: np.ndarray
    objective: float
    cuts: List[FrozenSet[int]] = field(default_factory=list)
    n_lp_solves: int = 0

    def support(self, eps: float = SUPPORT_EPS) -> List[Tuple[int, int]]:
        """Edges with ``x_e > eps`` (the set ``E*`` of the paper)."""
        return [e for e, val in zip(self.edges, self.x) if val > eps]

    def support_degrees(self, n: int, eps: float = SUPPORT_EPS) -> np.ndarray:
        """Per-node degree within the support ``E*``."""
        deg = np.zeros(n, dtype=np.int64)
        for (u, v), val in zip(self.edges, self.x):
            if val > eps:
                deg[u] += 1
                deg[v] += 1
        return deg

    def fractional_degrees(self, n: int) -> np.ndarray:
        """Per-node fractional degree ``x(delta(v))``."""
        deg = np.zeros(n, dtype=float)
        for (u, v), val in zip(self.edges, self.x):
            deg[u] += val
            deg[v] += val
        return deg

    def is_integral(self, tol: float = 1e-6) -> bool:
        """Whether every variable is within *tol* of 0 or 1."""
        return bool(np.all((self.x < tol) | (self.x > 1.0 - tol)))


class MRLCLinearProgram:
    """Cutting-plane solver for ``LP(G, L', W)`` over a chosen edge set.

    Args:
        network: Provides edge costs and energies.
        edges: The active edge set (IRA shrinks it across iterations).
        degree_bounds: Mapping ``node -> max fractional degree``; only nodes
            present in the mapping are constrained (the set ``W``).
        initial_cuts: Subtour sets carried over from previous IRA iterations
            (they remain valid when edges are removed).
    """

    def __init__(
        self,
        network: Network,
        edges: Sequence[Tuple[int, int]],
        degree_bounds: Dict[int, float],
        *,
        initial_cuts: Sequence[FrozenSet[int]] = (),
    ) -> None:
        self.network = network
        self.edges = [tuple(e) for e in edges]
        self.degree_bounds = dict(degree_bounds)
        self.cuts: List[FrozenSet[int]] = list(dict.fromkeys(initial_cuts))
        self._costs = np.array(
            [_perturbed_cost(network.cost(u, v), u, v) for u, v in self.edges],
            dtype=float,
        )
        # Vectorized row assembly: incidence (node x edge) and endpoint
        # index arrays, built once per program instance.
        n_vars = len(self.edges)
        self._endpoint_u = np.array([e[0] for e in self.edges], dtype=np.int64)
        self._endpoint_v = np.array([e[1] for e in self.edges], dtype=np.int64)
        self._incidence = np.zeros((network.n, n_vars))
        if n_vars:
            self._incidence[self._endpoint_u, np.arange(n_vars)] = 1.0
            self._incidence[self._endpoint_v, np.arange(n_vars)] += 1.0

    def _build_rows(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Assemble (A_ub, b_ub, A_eq, b_eq) for the current cut pool."""
        n_vars = len(self.edges)
        n = self.network.n

        rows_ub: List[np.ndarray] = []
        rhs_ub: List[float] = []

        # Lifetime rows: x(delta(v)) <= bound_v for v in W (incidence rows).
        for v, bound in sorted(self.degree_bounds.items()):
            rows_ub.append(self._incidence[v])
            rhs_ub.append(bound)

        # Generated subtour rows: x(E(S)) <= |S| - 1 — an edge is internal
        # to S iff both endpoint membership flags are set.
        if self.cuts:
            member = np.zeros(n, dtype=bool)
            for subset in self.cuts:
                member[:] = False
                member[list(subset)] = True
                internal = member[self._endpoint_u] & member[self._endpoint_v]
                rows_ub.append(internal.astype(float))
                rhs_ub.append(len(subset) - 1.0)

        a_ub = np.vstack(rows_ub) if rows_ub else np.zeros((0, n_vars))
        b_ub = np.array(rhs_ub)
        a_eq = np.ones((1, n_vars))
        b_eq = np.array([n - 1.0])
        return a_ub, b_ub, a_eq, b_eq

    def solve(self) -> LPSolution:
        """Run the cutting-plane loop to an extreme-point optimum.

        Raises:
            InfeasibleLifetimeError: The LP is infeasible — no fractional
                spanning tree meets the degree bounds on the active edges.
            LPSolverError: HiGHS failed for another reason, or the cut loop
                did not converge within :data:`MAX_CUT_ROUNDS`.
        """
        n_vars = len(self.edges)
        if n_vars == 0:
            if self.network.n == 1:
                return LPSolution(edges=[], x=np.zeros(0), objective=0.0)
            raise InfeasibleLifetimeError("no edges remain but n > 1")

        enabled = OBS.enabled
        initial_cut_count = len(self.cuts)
        loop_start = time.perf_counter() if enabled else 0.0

        n_solves = 0
        for _ in range(MAX_CUT_ROUNDS):
            a_ub, b_ub, a_eq, b_eq = self._build_rows()
            result = linprog(
                self._costs,
                A_ub=a_ub if len(b_ub) else None,
                b_ub=b_ub if len(b_ub) else None,
                A_eq=a_eq,
                b_eq=b_eq,
                bounds=(0.0, 1.0),
                method="highs-ds",  # dual simplex -> basic (extreme-point) solution
            )
            n_solves += 1
            if result.status == 2:
                if enabled:
                    OBS.registry.counter("lp.solves").inc(n_solves)
                    OBS.registry.counter("lp.infeasible").inc()
                raise InfeasibleLifetimeError(
                    "LP(G, L', W) infeasible: no data aggregation tree can "
                    "meet the lifetime bound on the remaining edges"
                )
            if not result.success:
                raise LPSolverError(f"HiGHS failed: {result.message}")

            x = np.asarray(result.x, dtype=float)
            violated = find_violated_subtours(self.network.n, self.edges, x)
            if not violated:
                if enabled:
                    reg = OBS.registry
                    reg.counter("lp.solves").inc(n_solves)
                    reg.counter("lp.cut_rounds").inc(n_solves - 1)
                    reg.counter("lp.cuts_added").inc(
                        len(self.cuts) - initial_cut_count
                    )
                    reg.histogram("lp.solve_seconds").observe(
                        time.perf_counter() - loop_start
                    )
                    OBS.tracer.event(
                        "lp.solve",
                        n_vars=n_vars,
                        n_constrained=len(self.degree_bounds),
                        n_solves=n_solves,
                        cuts_total=len(self.cuts),
                        cuts_added=len(self.cuts) - initial_cut_count,
                        objective=float(result.fun),
                    )
                return LPSolution(
                    edges=list(self.edges),
                    x=x,
                    objective=float(result.fun),
                    cuts=list(self.cuts),
                    n_lp_solves=n_solves,
                )
            before = len(self.cuts)
            for subset in violated:
                if subset not in self.cuts:
                    self.cuts.append(subset)
            if len(self.cuts) == before:
                raise LPSolverError(
                    "separation oracle repeated an existing cut; "
                    "numerical tolerance mismatch"
                )
        raise LPSolverError(
            f"cutting-plane loop did not converge in {MAX_CUT_ROUNDS} rounds"
        )


def solve_mrlc_lp(
    network: Network,
    degree_bounds: Dict[int, float],
    *,
    edges: Optional[Sequence[Tuple[int, int]]] = None,
    initial_cuts: Sequence[FrozenSet[int]] = (),
) -> LPSolution:
    """One-shot convenience wrapper around :class:`MRLCLinearProgram`."""
    if edges is None:
        edges = [e.key for e in network.edges()]
    program = MRLCLinearProgram(
        network, edges, degree_bounds, initial_cuts=initial_cuts
    )
    return program.solve()
