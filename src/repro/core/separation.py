"""Subtour-elimination separation oracle (Padberg–Wolsey minimum cuts).

The Subtour LP (Section IV-A) has exponentially many constraints

    x(E(S)) <= |S| - 1          for all S ⊆ V,

so the cutting-plane solver generates them lazily: given a fractional point
``x``, this oracle either certifies that all subtour constraints hold or
returns violated sets ``S``.

Reduction (Padberg & Wolsey 1983).  Using
``x(E(S)) = (sum_{v in S} x(delta(v)) - x(delta(S))) / 2``, the constraint is
equivalent to ``f(S) := |S| - x(E(S)) >= 1``, and

    f(S) = sum_{v in S} a_v + x(delta(S)) / 2,   a_v = 1 - x(delta(v)) / 2.

Minimising a node-weight-plus-cut objective over sets forced to contain a
chosen root ``r`` is a single s-t minimum cut: positive ``a_v`` becomes an
arc ``v -> t``, negative ``a_v`` becomes an arc ``s -> v`` (plus a constant
offset), each graph edge contributes symmetric arcs of capacity ``x_e / 2``,
and ``s -> r`` gets infinite capacity.  Probing every root finds the global
minimiser; any root whose minimum is below ``1`` yields a violated set.
Singletons always have ``f = 1``, so violated sets have ``|S| >= 2``
automatically.

The paper invokes exactly this machinery via Theorem 1 (ellipsoid +
separation oracle); in practice cutting planes over HiGHS converge in a few
rounds on these instance sizes.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Tuple

import numpy as np

from repro.obs import OBS
from repro.utils.maxflow import DinicMaxFlow

__all__ = ["find_violated_subtours", "subtour_violation"]

#: Violations smaller than this are attributed to LP tolerance, not reported.
DEFAULT_TOLERANCE = 1e-7

_BIG = 1e18


def subtour_violation(
    subset: Sequence[int],
    edges: Sequence[Tuple[int, int]],
    x: np.ndarray,
) -> float:
    """Amount by which ``x(E(S)) <= |S| - 1`` is violated for *subset* (<=0 ok)."""
    members = set(subset)
    inside = sum(
        float(x[i]) for i, (u, v) in enumerate(edges) if u in members and v in members
    )
    return inside - (len(members) - 1)


def find_violated_subtours(
    n: int,
    edges: Sequence[Tuple[int, int]],
    x: np.ndarray,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    max_sets: int = 10,
) -> List[FrozenSet[int]]:
    """Return up to *max_sets* subsets violating the subtour constraints.

    Args:
        n: Number of graph vertices (ids ``0..n-1``).
        edges: Edge endpoint pairs aligned with *x*.
        x: Current fractional LP values, one per edge.
        tolerance: Minimum violation worth reporting.
        max_sets: Cap on returned sets (adding several cuts per round speeds
            up convergence; duplicates are merged).

    Returns an empty list iff ``x`` satisfies every subtour constraint to
    within *tolerance*.
    """
    x = np.asarray(x, dtype=float)
    if len(x) != len(edges):
        raise ValueError(f"{len(edges)} edges but {len(x)} values")
    if n < 2:
        return []

    # Fractional degrees x(delta(v)) over the support.
    degree = np.zeros(n)
    support: List[Tuple[int, int, float]] = []
    for i, (u, v) in enumerate(edges):
        if x[i] > 0.0:
            degree[u] += x[i]
            degree[v] += x[i]
            support.append((u, v, float(x[i])))

    node_weight = 1.0 - degree / 2.0  # a_v
    offset_base = float(np.sum(np.minimum(node_weight, 0.0)))

    found: Dict[FrozenSet[int], float] = {}
    source, sink = n, n + 1
    # One shared network: per root only the source->root arc changes.
    # The s->v arcs for negative node weights stay; roots get an extra
    # switchable infinite arc.
    net = DinicMaxFlow(n + 2)
    for u, v, val in support:
        net.add_edge(u, v, val / 2.0, val / 2.0)
    for v in range(n):
        a_v = node_weight[v]
        if a_v >= 0.0:
            net.add_edge(v, sink, a_v)
        else:
            net.add_edge(source, v, -a_v)
    root_arcs = [net.add_edge(source, v, 0.0) for v in range(n)]

    # A root's probe only matters below this flow (f_min >= 1 otherwise),
    # so augmentation can stop early at the threshold.
    cutoff = 1.0 - tolerance - offset_base

    probes = 0
    for root in range(n):
        probes += 1
        net.reset_flow()
        net.set_capacity(root_arcs[root], _BIG)
        result = net.solve(source, sink, cutoff=cutoff)
        net.set_capacity(root_arcs[root], 0.0)
        f_min = offset_base + result.flow_value
        if f_min < 1.0 - tolerance:
            subset = frozenset(result.source_side - {source})
            if len(subset) >= 2:
                violation = subtour_violation(sorted(subset), edges, x)
                if violation > tolerance:
                    found[subset] = violation
                    if len(found) >= max_sets:
                        break  # enough cuts for this round

    ranked = sorted(found.items(), key=lambda item: -item[1])
    result_sets = [subset for subset, _ in ranked[:max_sets]]
    if OBS.enabled:
        reg = OBS.registry
        reg.counter("separation.calls").inc()
        reg.counter("separation.root_probes").inc(probes)
        reg.counter("separation.violated_sets").inc(len(result_sets))
        if result_sets:
            OBS.tracer.event(
                "separation.cuts",
                n=n,
                violated=len(result_sets),
                worst_violation=ranked[0][1],
            )
    return result_sets
