"""Exact MRLC solver (branch-and-bound MILP with lazy subtour cuts).

The paper proves MRLC NP-complete and evaluates IRA only against the MST
lower bound ("there is no efficient algorithm returning the optimal
solution").  For evaluation-sized instances (n ≤ ~20) the optimum *is*
computable: this module solves the integer program

    min  sum c_e x_e
    s.t. x(E(V)) = n - 1
         x(delta(v)) <= floor(degree bound under LC)     for all v
         x(E(S)) <= |S| - 1                              (lazy)
         x_e in {0, 1}

with scipy's HiGHS branch-and-bound, generating subtour constraints lazily:
an integral solution with the right edge count either is a spanning tree or
splits into connected components, each of which yields a violated subtour
constraint directly (no min-cut needed at integral points).

This gives the reproduction something the paper lacks: a measured
**optimality gap** for IRA (see ``benchmarks/test_bench_optimality.py``).

Note the degree bounds here use ``floor`` of the fractional bound — for
integral solutions that is exact, so the optimum equals the true MRLC
optimum for the given ``LC``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.core.errors import (
    DisconnectedNetworkError,
    InfeasibleLifetimeError,
    LPSolverError,
)
from repro.core.lifetime import LifetimeSpec
from repro.core.tree import AggregationTree
from repro.network.model import Network
from repro.utils.unionfind import UnionFind

__all__ = ["ExactResult", "solve_mrlc_exact"]

#: Lazy-constraint rounds before giving up; each round removes at least one
#: component structure, so this is never reached on sane instances.
MAX_MILP_ROUNDS = 500


@dataclass(frozen=True)
class ExactResult:
    """Outcome of the exact solver.

    Attributes:
        tree: An optimal MRLC aggregation tree.
        cost: Its cost (natural-log units) — the true optimum for ``lc``.
        milp_solves: Branch-and-bound invocations in the lazy-cut loop.
        cuts: Subtour constraints that had to be generated.
    """

    tree: AggregationTree
    cost: float
    milp_solves: int
    cuts: Tuple[FrozenSet[int], ...]


def _integral_subtours(
    n: int, chosen: Sequence[Tuple[int, int]]
) -> List[FrozenSet[int]]:
    """Violated subtour sets of an integral selection with ``n - 1`` edges.

    The selection is a spanning tree iff it is acyclic; otherwise every
    connected component that contains a cycle (edges >= nodes) violates its
    own subtour constraint.
    """
    uf = UnionFind(range(n))
    for u, v in chosen:
        uf.union(u, v)
    components: Dict[int, Set[int]] = {}
    for v in range(n):
        components.setdefault(uf.find(v), set()).add(v)
    edge_count: Dict[int, int] = {}
    for u, v in chosen:
        edge_count[uf.find(u)] = edge_count.get(uf.find(u), 0) + 1
    violated = []
    for root, members in components.items():
        if edge_count.get(root, 0) >= len(members) and len(members) >= 2:
            violated.append(frozenset(members))
    return violated


def solve_mrlc_exact(
    network: Network,
    lc: Optional[float] = None,
    *,
    constrain_sink: bool = True,
    time_limit_s: Optional[float] = None,
) -> ExactResult:
    """Solve MRLC to optimality on *network* (exponential time; keep n small).

    Args:
        network: Connected WSN instance.
        lc: Lifetime bound; ``None`` solves the unconstrained problem
            (whose optimum is the MST — useful for validation).
        constrain_sink: Whether the sink's lifetime is bounded too
            (matching :class:`~repro.core.ira.IterativeRelaxation`).
        time_limit_s: Optional per-MILP time limit handed to HiGHS.

    Raises:
        DisconnectedNetworkError: No spanning tree exists.
        InfeasibleLifetimeError: No tree meets ``lc``.
        LPSolverError: HiGHS failed or the lazy loop exceeded its cap.
    """
    if not network.is_connected():
        raise DisconnectedNetworkError(
            "network is disconnected; no spanning tree exists"
        )
    n = network.n
    if n == 1:
        return ExactResult(
            tree=AggregationTree(network, {}), cost=0.0, milp_solves=0, cuts=()
        )

    edges = [e.key for e in network.edges()]
    costs = np.array([network.cost(u, v) for u, v in edges])
    n_vars = len(edges)

    constraints: List[LinearConstraint] = []
    # Spanning equality.
    constraints.append(
        LinearConstraint(np.ones((1, n_vars)), n - 1.0, n - 1.0)
    )
    # Integral degree bounds from the lifetime requirement.
    if lc is not None:
        spec = LifetimeSpec.uninflated(network, lc)
        rows = []
        ubs = []
        for v in network.nodes:
            if v == network.sink and not constrain_sink:
                continue
            bound = spec.tree_feasible_degree(network, v)
            row = np.zeros(n_vars)
            for i, (a, b) in enumerate(edges):
                if a == v or b == v:
                    row[i] = 1.0
            rows.append(row)
            ubs.append(float(bound))
        if rows:
            constraints.append(
                LinearConstraint(np.vstack(rows), -np.inf, np.array(ubs))
            )

    cuts: List[FrozenSet[int]] = []
    options = {}
    if time_limit_s is not None:
        options["time_limit"] = float(time_limit_s)

    milp_solves = 0
    for _ in range(MAX_MILP_ROUNDS):
        cut_constraints = list(constraints)
        for subset in cuts:
            row = np.zeros(n_vars)
            for i, (a, b) in enumerate(edges):
                if a in subset and b in subset:
                    row[i] = 1.0
            cut_constraints.append(
                LinearConstraint(row.reshape(1, -1), -np.inf, len(subset) - 1.0)
            )
        result = milp(
            c=costs,
            constraints=cut_constraints,
            bounds=Bounds(0.0, 1.0),
            integrality=np.ones(n_vars),
            options=options,
        )
        milp_solves += 1
        if result.status == 2:  # infeasible
            raise InfeasibleLifetimeError(
                f"no data aggregation tree meets LC={lc}"
            )
        if result.x is None:
            raise LPSolverError(f"HiGHS MILP failed: {result.message}")

        chosen = [edges[i] for i in range(n_vars) if result.x[i] > 0.5]
        violated = _integral_subtours(n, chosen)
        if not violated:
            tree = AggregationTree.from_edges(network, chosen)
            return ExactResult(
                tree=tree,
                cost=float(costs @ np.round(result.x)),
                milp_solves=milp_solves,
                cuts=tuple(cuts),
            )
        cuts.extend(violated)

    raise LPSolverError(
        f"lazy subtour loop exceeded {MAX_MILP_ROUNDS} MILP rounds"
    )
