"""IRA — the Iterative Relaxation Algorithm (the paper's core contribution).

Algorithm 1 solves MRLC by iteratively relaxing ``LP(G, L', W)``:

1. ``W <- V``; ``L' <- I_min * LC / (I_min - 2 * Rx * LC)`` (line 3; the
   inflation absorbs the bounded constraint violation tolerated when a
   node's lifetime row is dropped, so the final tree still meets ``LC``).
2. Solve ``LP(G, L', W)`` to an extreme point ``x`` (line 5).
3. Remove every edge with ``x_e = 0`` (line 6) — by LP optimality the
   optimum over the remaining edges is unchanged (Eq. 21, ``C_2 = C_1``).
4. If some ``v in W`` keeps ``L(v) >= LC`` even when it adopts *all* its
   remaining incident support edges, drop its lifetime constraint
   (line 8) — dropping constraints can only improve the optimum
   (Eq. 21, ``C_3 <= C_2``).  Theorem 2 guarantees such a node exists.
5. Repeat until ``W`` is empty.  The remaining program is the Subtour LP,
   whose extreme points are integral spanning trees (Lemma 1), so the
   minimum-cost spanning tree of the surviving edges *is* the LP optimum —
   we extract it directly with Kruskal, which is exact and avoids rounding
   a nearly-integral vector.

Outcome (Section V-A): either a tree with ``L(T) >= LC`` and cost at most
``OPT(L')``, or a proof of infeasibility
(:class:`~repro.core.errors.InfeasibleLifetimeError`).

Implementation notes beyond the paper:

* All currently-droppable constraints are dropped in one iteration (the
  paper drops one per iteration; the relaxation argument is per-node, so
  batching is equivalent and saves LP solves).
* Theorem 2's progress guarantee relies on exact extreme points.  With
  floating-point LPs a degenerate iteration could make no progress; in that
  case we force-drop the constraint with the largest slack and record a
  diagnostic (:attr:`IRAResult.forced_relaxations`).  On all evaluated
  workloads this path never triggers, and the final lifetime check still
  validates the output.
* The line-3 inflation ``L' = I_min*LC/(I_min - 2*Rx*LC)`` assumes
  ``2*Rx*LC << I_min``.  When ``LC`` approaches ``I_min/(2*Rx)`` (one
  aggregation round costing two receives) the formula explodes and the
  inflated LP becomes infeasible even though trees meeting ``LC`` exist —
  the paper's own DFL evaluation (``LC = L_AAML``) sits in this regime.
  The default ``inflation="auto"`` therefore retries with ``L' = LC`` when
  the inflated program is infeasible; the line-8 removal test is always
  checked against ``LC`` itself, so the output still meets the bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple


from repro.core.errors import DisconnectedNetworkError, InfeasibleLifetimeError
from repro.core.lifetime import LifetimeSpec
from repro.core.local_search import (
    bfs_tree,
    improve_hamiltonian_path,
    maximize_lifetime,
    reduce_cost_under_caps,
    repair_overload,
)
from repro.core.lp import SUPPORT_EPS, MRLCLinearProgram
from repro.core.tree import AggregationTree
from repro.engine.treestate import TreeState, freeze_parents
from repro.network.model import Network
from repro.obs import OBS
from repro.utils.unionfind import UnionFind

__all__ = ["IRAResult", "IterativeRelaxation", "build_ira_tree"]


@dataclass
class IRAResult:
    """Outcome of one IRA run.

    Attributes:
        tree: The data aggregation tree found.
        spec: The resolved lifetime requirement (``LC`` and inflated ``L'``).
        iterations: Number of LP-relaxation iterations performed.
        lp_solves: Total HiGHS invocations (cutting-plane rounds included).
        cuts_generated: Distinct subtour cuts generated across the run.
        forced_relaxations: Nodes whose constraint had to be force-dropped by
            the degeneracy safeguard (empty on theory-conforming runs).
        lifetime_satisfied: Whether the final tree meets ``LC``.
        inflation_used: ``"paper"`` when the line-3 inflated ``L'`` was used,
            ``"none"`` when the run fell back to ``L' = LC``.
    """

    tree: AggregationTree
    spec: LifetimeSpec
    iterations: int
    lp_solves: int
    cuts_generated: int
    forced_relaxations: List[int] = field(default_factory=list)
    lifetime_satisfied: bool = True
    inflation_used: str = "paper"


class IterativeRelaxation:
    """Configurable IRA runner (Algorithm 1).

    Args:
        network: Connected WSN instance.
        lc: Required network lifetime ``LC`` in aggregation rounds.
        constrain_sink: Whether the sink participates in ``W``.  The paper's
            ``W <- V`` includes it; deployments with a mains-powered sink can
            disable this.
        inflation: ``"paper"`` uses Algorithm 1 line 3's inflated ``L'``
            unconditionally; ``"none"`` uses ``L' = LC``; ``"auto"`` (the
            default) tries the paper's bound and falls back to ``LC`` when
            the inflated program is infeasible (see module notes).
        support_eps: Threshold below which an LP value counts as zero.
    """

    def __init__(
        self,
        network: Network,
        lc: float,
        *,
        constrain_sink: bool = True,
        inflation: str = "auto",
        support_eps: float = SUPPORT_EPS,
    ) -> None:
        if not network.is_connected():
            raise DisconnectedNetworkError(
                "network is disconnected; no spanning tree exists"
            )
        if inflation not in ("paper", "none", "auto"):
            raise ValueError(
                f"inflation must be 'paper', 'none', or 'auto', got {inflation!r}"
            )
        self.network = network
        self.lc = float(lc)
        self.inflation = inflation
        self.constrain_sink = constrain_sink
        self.support_eps = support_eps

    def _specs_to_try(self) -> List[Tuple[str, LifetimeSpec]]:
        """Candidate (label, spec) pairs in the order the run attempts them."""
        uninflated = ("none", LifetimeSpec.uninflated(self.network, self.lc))
        if self.inflation == "none":
            return [uninflated]
        try:
            inflated = ("paper", LifetimeSpec.resolve(self.network, self.lc))
        except ValueError:
            if self.inflation == "paper":
                raise InfeasibleLifetimeError(
                    f"inflated bound L' undefined for LC={self.lc}: "
                    "2*Rx*LC >= I_min"
                )
            return [uninflated]
        if self.inflation == "paper":
            return [inflated]
        return [inflated, uninflated]

    def run(self) -> IRAResult:
        """Execute Algorithm 1 and return the tree plus diagnostics.

        In ``auto`` mode both the inflated and the uninflated program are
        run and the cheaper valid tree is returned: the inflated ``L'`` is
        *stricter* than ``LC``, so it can cost reliability the uninflated
        run recovers, while both outputs are certified against ``LC`` by the
        line-8 removal rule.  Returning the min keeps cost monotone in the
        lifetime bound.
        """
        attempts = self._specs_to_try()
        results: List[IRAResult] = []
        last_error: Optional[InfeasibleLifetimeError] = None
        for label, spec in attempts:
            try:
                result = self._run_with_spec(spec, label)
            except InfeasibleLifetimeError as exc:
                last_error = exc
                continue
            results.append(result)
            if result.tree.cost() <= 0.0:
                break  # cannot be beaten
        valid = [r for r in results if r.lifetime_satisfied] or results
        if not valid:
            assert last_error is not None
            raise last_error
        return min(valid, key=lambda r: r.tree.cost())

    def _run_with_spec(self, spec: LifetimeSpec, label: str) -> IRAResult:
        net = self.network
        n = net.n
        if n == 1:
            return IRAResult(
                tree=freeze_parents(net, {}),
                spec=spec,
                iterations=0,
                lp_solves=0,
                cuts_generated=0,
                inflation_used=label,
            )

        active_edges: List[Tuple[int, int]] = [e.key for e in net.edges()]
        w: Set[int] = set(net.nodes)
        if not self.constrain_sink:
            w.discard(net.sink)
        cuts: List[FrozenSet[int]] = []
        iterations = 0
        lp_solves = 0
        forced: List[int] = []
        prev_objective: Optional[float] = None
        if OBS.enabled:
            OBS.tracer.event(
                "ira.start", n=n, lc=spec.lc, inflation=label, edges=len(active_edges)
            )

        while w:
            iterations += 1
            bounds = {v: spec.lp_degree_bound(net, v) for v in w}
            program = MRLCLinearProgram(
                net, active_edges, bounds, initial_cuts=cuts
            )
            solution = program.solve()  # raises InfeasibleLifetimeError
            lp_solves += solution.n_lp_solves
            cuts = solution.cuts

            support = solution.support(self.support_eps)
            edges_removed = len(active_edges) - len(support)
            active_edges = support

            degrees = solution.support_degrees(n, self.support_eps)
            droppable = [
                v
                for v in sorted(w)
                if spec.satisfied_by_degree(net, v, int(degrees[v]))
            ]
            for v in droppable:
                w.discard(v)

            if not droppable and edges_removed == 0 and w:
                # Degeneracy safeguard: Theorem 2 promises progress on exact
                # extreme points; force the least-binding constraint out.
                victim = min(
                    w,
                    key=lambda v: degrees[v] - spec.lp_degree_bound(net, v),
                )
                w.discard(victim)
                forced.append(victim)

            if OBS.enabled:
                reg = OBS.registry
                reg.counter("ira.iterations", inflation=label).inc()
                reg.counter("ira.lp_solves", inflation=label).inc(
                    solution.n_lp_solves
                )
                reg.counter("ira.edges_removed", inflation=label).inc(
                    edges_removed
                )
                reg.counter("ira.constraints_dropped", inflation=label).inc(
                    len(droppable)
                )
                OBS.tracer.event(
                    "ira.iteration",
                    iteration=iterations,
                    inflation=label,
                    objective=solution.objective,
                    cost_delta=(
                        solution.objective - prev_objective
                        if prev_objective is not None
                        else 0.0
                    ),
                    edges_removed=edges_removed,
                    constraints_dropped=len(droppable),
                    constrained_remaining=len(w),
                )
                prev_objective = solution.objective

        tree = self._min_spanning_tree(active_edges)
        if OBS.enabled and forced:
            OBS.registry.counter("ira.forced_relaxations", inflation=label).inc(
                len(forced)
            )
        if forced and not tree.meets_lifetime(spec.lc):
            tree = self._repair_lifetime(tree, spec)
        satisfied = tree.meets_lifetime(spec.lc)
        if OBS.enabled:
            OBS.tracer.event(
                "ira.done",
                inflation=label,
                iterations=iterations,
                lp_solves=lp_solves,
                cuts=len(cuts),
                cost=tree.cost(),
                lifetime_satisfied=satisfied,
            )
        return IRAResult(
            tree=tree,
            spec=spec,
            iterations=iterations,
            lp_solves=lp_solves,
            cuts_generated=len(cuts),
            forced_relaxations=forced,
            lifetime_satisfied=satisfied,
            inflation_used=label,
        )

    def _repair_lifetime(
        self, tree: AggregationTree, spec: LifetimeSpec
    ) -> AggregationTree:
        """Fix the bounded violation left behind by a forced relaxation.

        A degenerate stall force-drops a constraint, which can leave some
        node a single child over its ``LC`` budget (the classic iterative-
        relaxation one-violation outcome).  Two-stage repair over the *full*
        network edge set (the LP may have pruned the needed edge):

        1. cheapest excess-reducing moves (:func:`repair_overload`);
        2. if those dead-end, drive the tree to a lifetime-local-optimum
           (:func:`maximize_lifetime` — the same engine as AAML, which
           reaches ``LC`` whenever ``LC`` is locally achievable) and then
           descend in cost without leaving the cap-feasible region
           (:func:`reduce_cost_under_caps`).

        If even that misses ``LC``, the original tree is returned and the
        caller reports ``lifetime_satisfied=False``.
        """
        net = self.network
        caps = {
            v: max(
                spec.tree_feasible_degree(net, v)
                - (0 if v == net.sink else 1),
                0,
            )
            for v in net.nodes
        }
        candidates = []
        repaired = repair_overload(tree, caps)
        if repaired is not None:
            candidates.append(self._polish(repaired, caps))
        # The LP tree can sit on a lexicographic plateau (e.g. swapping which
        # branch the sink keeps changes nothing); also restart the ascent
        # from the BFS tree, which mirrors the AAML trajectory that proved
        # LC achievable in the first place.
        for start in (tree, bfs_tree(net)):
            lifted, _ = maximize_lifetime(start)
            if lifted.meets_lifetime(spec.lc):
                candidates.append(self._polish(lifted, caps))
        candidates = [c for c in candidates if c.meets_lifetime(spec.lc)]
        if candidates:
            return min(candidates, key=lambda t: t.cost())
        return tree  # cannot repair; report the violation honestly

    @staticmethod
    def _polish(tree: AggregationTree, caps) -> AggregationTree:
        """Cost descent after repair: re-parent moves, then path 2-opt.

        In the Hamiltonian-path regime (all caps 1) re-parent moves are
        blocked — no node has spare capacity — and the feasibility-first
        tree can be several times costlier than optimal; 2-opt closes most
        of that gap (measured against the exact solver in
        benchmarks/test_bench_optimality.py).
        """
        tree = reduce_cost_under_caps(tree, caps)
        return improve_hamiltonian_path(tree)

    def _min_spanning_tree(self, edges: List[Tuple[int, int]]) -> AggregationTree:
        """Kruskal MST over the surviving edges.

        Once ``W`` is empty the program is the Subtour LP, whose optimum is
        the minimum spanning tree of the remaining graph (Lemma 1), so this
        is the exact final extreme point — no numerical rounding involved.
        """
        ordered = sorted(edges, key=lambda e: (self.network.cost(*e), e))
        uf = UnionFind(range(self.network.n))
        chosen: List[Tuple[int, int]] = []
        for u, v in ordered:
            if uf.union(u, v):
                chosen.append((u, v))
        if len(chosen) != self.network.n - 1:
            raise InfeasibleLifetimeError(
                "surviving edge set no longer spans the network"
            )
        # Orient away from the sink by incremental attachment; a tree's
        # orientation is unique, so this matches from_edges exactly.
        adj: Dict[int, List[int]] = {v: [] for v in self.network.nodes}
        for u, v in chosen:
            adj[u].append(v)
            adj[v].append(u)
        state = TreeState(self.network)
        stack = [self.network.sink]
        while stack:
            u = stack.pop()
            for v in adj[u]:
                if not state.is_attached(v):
                    state.attach(v, u)
                    stack.append(v)
        return state.freeze()


def build_ira_tree(
    network: Network,
    lc: float,
    *,
    constrain_sink: bool = True,
    inflation: str = "auto",
) -> IRAResult:
    """Run IRA on *network* with lifetime bound *lc* (Algorithm 1).

    Returns an :class:`IRAResult`; raises
    :class:`~repro.core.errors.InfeasibleLifetimeError` when no aggregation
    tree can meet *lc* and
    :class:`~repro.core.errors.DisconnectedNetworkError` when the network has
    no spanning tree at all.
    """
    return IterativeRelaxation(
        network, lc, constrain_sink=constrain_sink, inflation=inflation
    ).run()
