"""Core contribution: the MRLC problem, its LP relaxation, and IRA.

* :mod:`repro.core.tree` — the :class:`AggregationTree` abstraction with the
  paper's reliability / cost / lifetime metrics.
* :mod:`repro.core.lifetime` — lifetime-constraint ↔ degree-bound arithmetic
  and the inflated bound ``L'`` of Algorithm 1.
* :mod:`repro.core.lp` — ``LP(G, L', W)`` with lazy subtour constraints.
* :mod:`repro.core.separation` — Padberg–Wolsey min-cut separation oracle.
* :mod:`repro.core.ira` — the Iterative Relaxation Algorithm (Algorithm 1).
"""

from repro.core.exact import ExactResult, solve_mrlc_exact
from repro.core.errors import (
    DisconnectedNetworkError,
    InfeasibleLifetimeError,
    LPSolverError,
    MRLCError,
)
from repro.core.ira import IRAResult, IterativeRelaxation, build_ira_tree
from repro.core.lifetime import (
    LifetimeSpec,
    children_bound,
    degree_bound,
    inflated_bound,
    lifetime_with_children,
)
from repro.core.lp import LPSolution, MRLCLinearProgram, solve_mrlc_lp
from repro.core.separation import find_violated_subtours, subtour_violation
from repro.core.tree import PAPER_COST_SCALE, AggregationTree

__all__ = [
    "AggregationTree",
    "DisconnectedNetworkError",
    "ExactResult",
    "IRAResult",
    "InfeasibleLifetimeError",
    "IterativeRelaxation",
    "LPSolution",
    "LPSolverError",
    "LifetimeSpec",
    "MRLCError",
    "MRLCLinearProgram",
    "PAPER_COST_SCALE",
    "build_ira_tree",
    "children_bound",
    "degree_bound",
    "find_violated_subtours",
    "inflated_bound",
    "lifetime_with_children",
    "solve_mrlc_exact",
    "solve_mrlc_lp",
    "subtour_violation",
]
