"""Rooted data aggregation trees: reliability, cost, lifetime.

An aggregation tree is a spanning tree of the network rooted at the sink
(node 0).  During one data aggregation round each node receives one packet
per child, aggregates, and sends one packet to its parent; the round succeeds
iff every link delivery succeeds, so (Section III-B):

* reliability  ``Q(T) = prod(q_e for e in T)``
* cost         ``C(T) = sum(-log q_e) = -log Q(T)``  (Lemma 3)
* lifetime     ``L(T) = min_v I(v) / (Tx + Rx * Ch_T(v))``  (Eq. 1)

The paper's figures plot cost in ``-1000 * log2(q)`` units (recoverable from
the published cost/reliability pairs, e.g. MST cost 55 ↔ reliability 0.963);
:data:`PAPER_COST_SCALE` converts natural-log cost to those units.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.network.model import Network, edge_key

__all__ = ["AggregationTree", "PAPER_COST_SCALE"]

#: Multiply a natural-log cost by this to get the paper's plotted cost units
#: (−1000·log2 q).  E.g. reliability 0.963 → paper cost ≈ 54.4 ≈ Fig. 7's 55.
PAPER_COST_SCALE = 1000.0 / math.log(2.0)


class AggregationTree:
    """A spanning tree of a :class:`Network`, rooted at the sink.

    Stored as a parent map: ``parent[v]`` for every non-sink node ``v``; the
    sink has no parent.  The tree must be spanning (every node present) and
    every tree edge must exist in the network — both validated on
    construction.

    Args:
        network: The network this tree spans.
        parents: Mapping or sequence giving each non-sink node's parent.  A
            sequence must have length ``n`` with ``parents[0]`` ignored
            (conventionally ``-1``).
    """

    def __init__(
        self,
        network: Network,
        parents: Dict[int, int] | Sequence[int],
    ) -> None:
        self.network = network
        n = network.n
        parent_arr = np.full(n, -1, dtype=np.int64)
        if isinstance(parents, dict):
            items = parents.items()
        else:
            if len(parents) != n:
                raise ValueError(
                    f"parents sequence must have length {n}, got {len(parents)}"
                )
            items = ((v, p) for v, p in enumerate(parents) if v != network.sink)
        for v, p in items:
            if v == network.sink:
                continue
            if not (0 <= v < n) or not (0 <= p < n):
                raise ValueError(f"parent entry ({v} -> {p}) out of range")
            parent_arr[v] = p
        self._parent = parent_arr
        self._children: List[List[int]] = [[] for _ in range(n)]
        for v in range(n):
            if v == network.sink:
                continue
            p = int(parent_arr[v])
            if p < 0:
                raise ValueError(f"node {v} has no parent; tree is not spanning")
            if not network.has_edge(v, p):
                raise ValueError(
                    f"tree edge ({v}, {p}) does not exist in the network"
                )
            self._children[p].append(v)
        for kids in self._children:
            kids.sort()
        self._validate_rooted()

    def _validate_rooted(self) -> None:
        """Every node must reach the sink via parent pointers (no cycles)."""
        n = self.network.n
        state = np.zeros(n, dtype=np.int8)  # 0 unvisited, 1 in-progress, 2 ok
        state[self.network.sink] = 2
        for start in range(n):
            path = []
            v = start
            while state[v] == 0:
                state[v] = 1
                path.append(v)
                v = int(self._parent[v])
            if state[v] == 1:
                raise ValueError(f"parent pointers contain a cycle through node {v}")
            for u in path:
                state[u] = 2

    # ------------------------------------------------------------------
    # Alternative constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, network: Network, edges: Iterable[Tuple[int, int]]
    ) -> "AggregationTree":
        """Build from an undirected edge set by orienting away from the sink.

        Raises ``ValueError`` if the edges do not form a spanning tree.
        """
        adj: Dict[int, List[int]] = {v: [] for v in network.nodes}
        count = 0
        seen_edges: Set[Tuple[int, int]] = set()
        for u, v in edges:
            key = edge_key(u, v)
            if key in seen_edges:
                raise ValueError(f"duplicate edge {key}")
            seen_edges.add(key)
            adj[u].append(v)
            adj[v].append(u)
            count += 1
        if count != network.n - 1:
            raise ValueError(
                f"spanning tree needs {network.n - 1} edges, got {count}"
            )
        parents: Dict[int, int] = {}
        visited = {network.sink}
        stack = [network.sink]
        while stack:
            u = stack.pop()
            for v in adj[u]:
                if v not in visited:
                    visited.add(v)
                    parents[v] = u
                    stack.append(v)
        if len(visited) != network.n:
            raise ValueError("edge set is not connected; not a spanning tree")
        return cls(network, parents)

    # ------------------------------------------------------------------
    # Structure accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.network.n

    @property
    def sink(self) -> int:
        return self.network.sink

    def parent(self, v: int) -> Optional[int]:
        """Parent of *v*, or ``None`` for the sink."""
        if v == self.sink:
            return None
        return int(self._parent[v])

    @property
    def parents(self) -> Dict[int, int]:
        """Copy of the parent map (non-sink nodes only)."""
        return {
            v: int(self._parent[v]) for v in range(self.n) if v != self.sink
        }

    def children(self, v: int) -> List[int]:
        """Sorted children of *v*."""
        return list(self._children[v])

    def n_children(self, v: int) -> int:
        """``Ch_T(v)`` of Eq. 1."""
        return len(self._children[v])

    def edges(self) -> List[Tuple[int, int]]:
        """Tree edges as canonical keys, sorted."""
        return sorted(
            edge_key(v, int(self._parent[v]))
            for v in range(self.n)
            if v != self.sink
        )

    def has_tree_edge(self, u: int, v: int) -> bool:
        if u == v:
            return False
        return (
            (u != self.sink and int(self._parent[u]) == v)
            or (v != self.sink and int(self._parent[v]) == u)
        )

    def subtree(self, v: int) -> Set[int]:
        """All nodes in the subtree rooted at *v* (including *v*)."""
        out = {v}
        stack = [v]
        while stack:
            u = stack.pop()
            for c in self._children[u]:
                out.add(c)
                stack.append(c)
        return out

    def depth(self, v: int) -> int:
        """Hop count from *v* to the sink."""
        d = 0
        while v != self.sink:
            v = int(self._parent[v])
            d += 1
            if d > self.n:
                raise RuntimeError("cycle detected walking to the sink")
        return d

    def leaves(self) -> List[int]:
        """Nodes with no children."""
        return [v for v in range(self.n) if not self._children[v]]

    def postorder(self) -> List[int]:
        """Nodes in post-order (children before parents); sink last."""
        order: List[int] = []
        stack: List[Tuple[int, bool]] = [(self.sink, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                order.append(node)
            else:
                stack.append((node, True))
                for c in reversed(self._children[node]):
                    stack.append((c, False))
        return order

    # ------------------------------------------------------------------
    # Paper metrics
    # ------------------------------------------------------------------
    def cost(self) -> float:
        """``C(T) = sum(-log q_e)`` in natural-log units (Eq. 10)."""
        return sum(self.network.cost(u, v) for u, v in self.edges())

    def paper_cost(self) -> float:
        """Cost in the paper's plotted units (−1000·log2 q)."""
        return self.cost() * PAPER_COST_SCALE

    def reliability(self) -> float:
        """``Q(T) = prod(q_e)`` — success probability of a full round."""
        q = 1.0
        for u, v in self.edges():
            q *= self.network.prr(u, v)
        return q

    def node_lifetime(self, v: int) -> float:
        """Eq. 1 lifetime of node *v* in aggregation rounds."""
        return self.network.energy_model.lifetime_rounds(
            self.network.initial_energy(v), self.n_children(v)
        )

    def lifetime(self) -> float:
        """Network lifetime ``L(T) = min_v L(v)`` in aggregation rounds."""
        return min(self.node_lifetime(v) for v in range(self.n))

    def bottleneck(self) -> int:
        """The node realising the minimum lifetime (ties -> smallest id)."""
        return min(range(self.n), key=lambda v: (self.node_lifetime(v), v))

    def meets_lifetime(self, bound: float, *, rel_tol: float = 1e-9) -> bool:
        """Whether ``L(T) >= bound`` (with a small relative tolerance)."""
        return self.lifetime() >= bound * (1.0 - rel_tol)

    # ------------------------------------------------------------------
    # Mutation-by-copy
    # ------------------------------------------------------------------
    def with_parent(self, child: int, new_parent: int) -> "AggregationTree":
        """New tree with *child* re-attached under *new_parent*.

        The caller must ensure *new_parent* is outside *child*'s subtree
        (otherwise construction raises on the resulting cycle).
        """
        if child == self.sink:
            raise ValueError("the sink has no parent to change")
        parents = self.parents
        parents[child] = new_parent
        return AggregationTree(self.network, parents)

    def copy(self) -> "AggregationTree":
        return AggregationTree(self.network, self.parents)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AggregationTree):
            return NotImplemented
        return self.network is other.network and np.array_equal(
            self._parent, other._parent
        )

    def __hash__(self) -> int:
        return hash((id(self.network), tuple(self._parent.tolist())))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"AggregationTree(n={self.n}, cost={self.cost():.4f}, "
            f"reliability={self.reliability():.4f})"
        )
