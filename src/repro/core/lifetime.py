"""Lifetime-constraint arithmetic shared by the LP and the IRA loop.

The key identity: in a spanning tree rooted at the sink, a non-sink node's
children count is its degree minus one (the parent edge), while the sink's
children count equals its degree.  So the lifetime constraint of Eq. 15,
``L(v) >= L'``, is the *fractional degree bound*

    x(delta(v)) <= B(v) + [v != sink],
    B(v) = (I(v)/L' - Tx) / Rx            (children bound)

which is what makes MRLC a minimum-cost bounded-degree spanning tree
instance.  This module computes those bounds, the inflated constraint ``L'``
of Algorithm 1 line 3, and feasibility predicates used when relaxing
constraints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.network.model import Network
from repro.utils.validation import check_positive

__all__ = [
    "LifetimeSpec",
    "inflated_bound",
    "children_bound",
    "degree_bound",
    "lifetime_with_children",
]


def inflated_bound(network: Network, lc: float) -> float:
    """Algorithm 1 line 3: ``L' = I_min * LC / (I_min - 2 * Rx * LC)``.

    The iterative relaxation may exceed a node's children bound by a small
    margin when its constraint is dropped; solving the LP against the
    slightly stricter ``L' > LC`` absorbs that margin so the returned tree
    still meets ``LC``.  Raises ``ValueError`` when the denominator is not
    positive — in that regime ``LC`` exceeds what any node with energy
    ``I_min`` could sustain even with the relaxation margin, and the
    instance must be declared infeasible.
    """
    check_positive(lc, "lc")
    i_min = network.min_initial_energy
    denom = i_min - 2.0 * network.energy_model.rx * lc
    if denom <= 0:
        raise ValueError(
            f"lifetime bound LC={lc} too large for minimum energy {i_min}: "
            "the inflated bound L' would be negative (instance infeasible)"
        )
    return i_min * lc / denom


def children_bound(network: Network, node: int, lifetime: float) -> float:
    """Max (fractional) children of *node* compatible with *lifetime* (Eq. 1 inverted)."""
    return network.energy_model.max_children_for_lifetime(
        network.initial_energy(node), lifetime
    )


def degree_bound(network: Network, node: int, lifetime: float) -> float:
    """Max (fractional) tree degree of *node* compatible with *lifetime*.

    Non-sink nodes get one extra unit of degree for their parent edge.
    """
    bound = children_bound(network, node, lifetime)
    if node != network.sink:
        bound += 1.0
    return bound


def lifetime_with_children(network: Network, node: int, n_children: int) -> float:
    """Eq. 1 lifetime of *node* if it had *n_children* children."""
    return network.energy_model.lifetime_rounds(
        network.initial_energy(node), n_children
    )


@dataclass(frozen=True)
class LifetimeSpec:
    """A resolved MRLC lifetime requirement for one network.

    Bundles the user-facing bound ``lc``, the inflated LP bound ``l_prime``,
    and per-node degree bounds under both, so the IRA loop and its tests
    share one consistent computation.

    Attributes:
        lc: The required network lifetime ``LC`` (aggregation rounds).
        l_prime: The inflated LP constraint ``L'`` from Algorithm 1 line 3.
    """

    lc: float
    l_prime: float

    @classmethod
    def resolve(cls, network: Network, lc: float) -> "LifetimeSpec":
        """Compute ``L'`` for *network* and *lc* (raises if infeasible)."""
        return cls(lc=lc, l_prime=inflated_bound(network, lc))

    @classmethod
    def uninflated(cls, network: Network, lc: float) -> "LifetimeSpec":
        """Spec with ``L' = LC`` (no inflation).

        The Algorithm 1 line-8 removal condition is checked against ``LC``
        regardless of ``L'``, so the output tree still meets ``LC``; only
        Theorem 2's progress guarantee loses its margin.  IRA's ``auto``
        inflation mode falls back to this when the paper's inflated bound is
        infeasible (which happens whenever ``2·Rx·LC`` is comparable to
        ``I_min`` — including the paper's own DFL setting of Fig. 7).
        """
        check_positive(lc, "lc")
        return cls(lc=lc, l_prime=lc)

    def lp_degree_bound(self, network: Network, node: int) -> float:
        """Degree bound enforced inside the LP (uses ``L'``)."""
        return degree_bound(network, node, self.l_prime)

    def satisfied_by_degree(self, network: Network, node: int, degree: int) -> bool:
        """Whether a final tree degree of *degree* keeps ``L(node) >= LC``.

        This is the Algorithm 1 line 8 test with the support's degree: if
        even adopting every incident support edge (degree - [non-sink] of
        them as children) keeps the node's lifetime at or above ``LC``, the
        node's constraint can be dropped.
        """
        n_children = degree - (0 if node == network.sink else 1)
        n_children = max(n_children, 0)
        return (
            lifetime_with_children(network, node, n_children)
            >= self.lc * (1.0 - 1e-12)
        )

    def tree_feasible_degree(self, network: Network, node: int) -> int:
        """Largest integer tree degree of *node* that still meets ``LC``."""
        bound = degree_bound(network, node, self.lc)
        return max(int(math.floor(bound + 1e-9)), 0)
