"""Tree local-search primitives shared by AAML and IRA's repair pass.

All three searches operate on the same move: detach a node from its parent
and re-attach it under a network neighbour outside its own subtree.

* :func:`maximize_lifetime` — lexicographically raise the ascending per-node
  lifetime vector.  This is the engine of the AAML baseline (Wu et al. 2008:
  "iteratively reduce the load on bottleneck nodes") and, because it drives
  the tree toward the lifetime-optimal load distribution, also the
  feasibility fallback of IRA's repair pass.
* :func:`repair_overload` — cheapest single moves that reduce the total
  children-cap excess; fixes the bounded violation a forced relaxation can
  leave behind.
* :func:`reduce_cost_under_caps` — greedy cost descent that never violates
  the children caps; polishes a feasibility-first tree back toward low cost.

Every search strictly decreases (or lexicographically increases) a potential
per accepted move over a finite state space, so all of them terminate.

All move loops run on the incremental :class:`~repro.engine.treestate.TreeState`
engine: candidate evaluation is an O(1) delta preview (a re-parent changes
only the two parents' lifetimes and one tree edge), cycle filtering is an
ancestor walk, and no :class:`AggregationTree` is constructed until the
search ``freeze()``s its result.  The accepted moves and final trees are
decision-identical to the historical rebuild-per-candidate implementation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.tree import AggregationTree
from repro.engine.treestate import (
    NO_GAIN,
    TreeState,
    freeze_parents,
    lifetime_delta_better,
)
from repro.obs import OBS

#: Strict-descent cutoff shared by every greedy cost scan.
COST_EPS = -1e-15


def _caps_array(caps: Dict[int, int], n: int) -> np.ndarray:
    return np.array([caps[v] for v in range(n)], dtype=np.int64)

__all__ = [
    "bfs_tree",
    "improve_hamiltonian_path",
    "lifetime_vector",
    "maximize_lifetime",
    "repair_overload",
    "reduce_cost_under_caps",
]


def bfs_tree(network) -> AggregationTree:
    """Breadth-first (shortest-hop) spanning tree — the canonical start point.

    Used as AAML's "arbitrary tree" and as the restart point of IRA's repair
    pass.  Raises :class:`~repro.core.errors.DisconnectedNetworkError` when
    some node cannot reach the sink.
    """
    from repro.core.errors import DisconnectedNetworkError

    state = TreeState(network)
    frontier = [network.sink]
    while frontier:
        nxt = []
        for u in frontier:
            for v in network.neighbors(u):
                if not state.is_attached(v):
                    state.attach(v, u)
                    nxt.append(v)
        frontier = nxt
    if not state.spanning:
        raise DisconnectedNetworkError(
            "network is disconnected; no spanning tree exists"
        )
    return state.freeze()


def lifetime_vector(tree: AggregationTree) -> Tuple[float, ...]:
    """Per-node lifetimes sorted ascending — the lexicographic potential."""
    return tuple(sorted(tree.node_lifetime(v) for v in range(tree.n)))


def maximize_lifetime(
    tree: AggregationTree, *, max_moves: int = 100_000
) -> Tuple[AggregationTree, int]:
    """Lexicographic bottleneneck-lifetime ascent; returns (tree, moves).

    Each iteration scans moves from the most-starved nodes outward and
    accepts the lexicographically best strict improvement of the ascending
    lifetime vector; stops at a local optimum.  Candidates are compared via
    :func:`~repro.engine.treestate.lifetime_delta_better` on the two-node
    delta each move induces, so evaluation is O(1) per candidate instead of
    an O(n log n) trial-tree rebuild.
    """
    network = tree.network
    state = TreeState.from_tree(tree)
    n = state.n
    moves = 0
    evaluated = 0
    improved = True
    while improved and moves < max_moves:
        improved = False
        best_gain = NO_GAIN
        best_move: Optional[Tuple[int, int]] = None

        kids = state.children_lists()
        order = sorted(range(n), key=state.node_lifetime)
        for loaded in order:
            for child in kids[loaded]:
                for candidate in network.neighbors(child):
                    if candidate == loaded or state.in_subtree(candidate, child):
                        continue
                    gain = state.reparent_lifetime_delta(child, candidate)
                    evaluated += 1
                    if lifetime_delta_better(gain, best_gain):
                        best_gain = gain
                        best_move = (child, candidate)
            if best_move is not None:
                break  # act on the tightest bottleneck first

        if best_move is not None:
            state.reparent(*best_move, check=False)
            moves += 1
            improved = True
    if OBS.enabled:
        reg = OBS.registry
        reg.counter("local_search.moves_accepted", op="maximize_lifetime").inc(moves)
        reg.counter("local_search.moves_evaluated", op="maximize_lifetime").inc(
            evaluated
        )
    return state.freeze(), moves


def _total_excess(state: TreeState, caps: Dict[int, int]) -> int:
    return sum(max(0, state.n_children(v) - caps[v]) for v in range(state.n))


def repair_overload(
    tree: AggregationTree, caps: Dict[int, int]
) -> Optional[AggregationTree]:
    """Re-home excess children until every node meets its children cap.

    Each move takes a child of an overloaded node to an under-cap network
    neighbour, preferring the smallest cost increase.  Returns the repaired
    tree, or ``None`` when no single move can make progress (the caller
    should fall back to :func:`maximize_lifetime`).
    """
    network = tree.network
    state = TreeState.from_tree(tree)
    moves = 0
    # Numpy backend: one vectorized pass over all (child, cand) pairs,
    # scanned by ascending (overloaded parent, child, cand) — the exact
    # order and tie-break of the nested loops below.
    fast = getattr(state, "best_cost_reparent", None)
    caps_arr = _caps_array(caps, state.n) if fast is not None else None
    while _total_excess(state, caps) > 0:
        best: Optional[Tuple[float, int, int]] = None
        if fast is not None:
            counts = state.children_counts()
            overloaded_mask = counts > caps_arr
            parents_arr = state.parents_array()
            safe = np.maximum(parents_arr, 0)
            group = np.where(
                (parents_arr >= 0) & overloaded_mask[safe], parents_arr, -1
            )
            best = fast(cand_ok=counts < caps_arr, child_group=group)
        else:
            kids = state.children_lists()
            overloaded = [
                v for v in range(state.n) if state.n_children(v) > caps[v]
            ]
            for v in overloaded:
                for child in kids[v]:
                    for cand in network.neighbors(child):
                        if cand == v or state.in_subtree(cand, child):
                            continue
                        if state.n_children(cand) >= caps[cand]:
                            continue
                        delta = network.cost(child, cand) - network.cost(
                            child, v
                        )
                        if best is None or delta < best[0]:
                            best = (delta, child, cand)
        if best is None:
            if OBS.enabled and moves:
                OBS.registry.counter(
                    "local_search.moves_accepted", op="repair_overload"
                ).inc(moves)
            return None
        state.reparent(best[1], best[2], check=False)
        moves += 1
    if OBS.enabled and moves:
        OBS.registry.counter(
            "local_search.moves_accepted", op="repair_overload"
        ).inc(moves)
    return state.freeze()


def improve_hamiltonian_path(
    tree: AggregationTree, *, max_moves: int = 10_000
) -> AggregationTree:
    """2-opt cost descent for Hamiltonian-path aggregation trees.

    The strictest feasible MRLC regime (uniform energy, ``LC`` equal to the
    one-child lifetime) only admits Hamiltonian paths with the sink as an
    endpoint.  Re-parent moves cannot descend there (no node has spare child
    capacity), but the classic 2-opt move can: pick positions ``i < j`` on
    the path, reverse the segment between them, and keep the change when the
    two swapped links exist in the network and are cheaper.  The sink end is
    pinned (it must stay the root).

    Returns *tree* unchanged when it is not a sink-rooted Hamiltonian path.
    """
    network = tree.network
    n = tree.n
    if n < 4:
        return tree
    if any(tree.n_children(v) > 1 for v in range(n)):
        return tree
    if tree.n_children(tree.sink) != 1:
        return tree

    # Path order from the sink: order[0] = sink, order[k+1] = child of order[k].
    order: List[int] = [tree.sink]
    while tree.n_children(order[-1]) == 1:
        order.append(tree.children(order[-1])[0])
    if len(order) != n:
        return tree  # disconnected path structure (cannot happen, defensive)

    def cost(u: int, v: int) -> float:
        return network.cost(u, v)

    def two_opt_best() -> Optional[Tuple[float, Tuple[int, int]]]:
        # Reverse order[i+1 .. j]: replaces (order[i], order[i+1]) and
        # (order[j], order[j+1]) with (order[i], order[j]) and
        # (order[i+1], order[j+1]).  j = n-1 drops the second pair.
        best: Optional[Tuple[float, Tuple[int, int]]] = None
        for i in range(0, n - 2):
            a = order[i]
            b = order[i + 1]
            for j in range(i + 2, n):
                c = order[j]
                if not network.has_edge(a, c):
                    continue
                if j + 1 < n:
                    d = order[j + 1]
                    if not network.has_edge(b, d):
                        continue
                    delta = cost(a, c) + cost(b, d) - cost(a, b) - cost(c, d)
                else:
                    delta = cost(a, c) - cost(a, b)
                if delta < -1e-15 and (best is None or delta < best[0]):
                    best = (delta, (i, j))
        return best

    def or_opt_best() -> Optional[Tuple[float, Tuple[int, int, int]]]:
        # Relocate the segment order[i .. i+length-1] to sit after
        # position k (k outside the segment); segments of length 1-3.
        best: Optional[Tuple[float, Tuple[int, int, int]]] = None
        for length in (1, 2, 3):
            for i in range(1, n - length + 1):
                seg_head = order[i]
                seg_tail = order[i + length - 1]
                prev = order[i - 1]
                nxt = order[i + length] if i + length < n else None
                # Cost of closing the hole the segment leaves behind.
                removed = cost(prev, seg_head)
                if nxt is not None:
                    if not network.has_edge(prev, nxt):
                        continue
                    removed += cost(seg_tail, nxt) - cost(prev, nxt)
                for k in range(0, n):
                    if i - 1 <= k <= i + length - 1:
                        continue  # target inside/adjacent to the segment
                    left = order[k]
                    right = order[k + 1] if k + 1 < n else None
                    if right is not None and i <= k + 1 <= i + length - 1:
                        continue
                    if not network.has_edge(left, seg_head):
                        continue
                    added = cost(left, seg_head)
                    if right is not None:
                        if not network.has_edge(seg_tail, right):
                            continue
                        added += cost(seg_tail, right) - cost(left, right)
                    delta = added - removed
                    if delta < -1e-15 and (best is None or delta < best[0]):
                        best = (delta, (i, length, k))
        return best

    moves = 0
    improved = True
    while improved and moves < max_moves:
        improved = False
        two = two_opt_best()
        orm = or_opt_best()
        if two is not None and (orm is None or two[0] <= orm[0]):
            _, (i, j) = two
            order[i + 1 : j + 1] = reversed(order[i + 1 : j + 1])
            moves += 1
            improved = True
        elif orm is not None:
            _, (i, length, k) = orm
            segment = order[i : i + length]
            del order[i : i + length]
            insert_at = k + 1 if k < i else k + 1 - length
            order[insert_at:insert_at] = segment
            moves += 1
            improved = True

    if OBS.enabled and moves:
        OBS.registry.counter(
            "local_search.moves_accepted", op="improve_hamiltonian_path"
        ).inc(moves)
    parents = {order[k + 1]: order[k] for k in range(n - 1)}
    return freeze_parents(network, parents)


def reduce_cost_under_caps(
    tree: AggregationTree, caps: Dict[int, int], *, max_moves: int = 100_000
) -> AggregationTree:
    """Greedy cost descent with children caps as a hard constraint.

    Only accepts strictly cost-decreasing re-parent moves whose target stays
    under its cap, so a cap-feasible input remains cap-feasible throughout.
    """
    network = tree.network
    state = TreeState.from_tree(tree)
    sink = state.sink
    moves = 0
    fast = getattr(state, "best_cost_reparent", None)
    caps_arr = _caps_array(caps, state.n) if fast is not None else None
    while moves < max_moves:
        best: Optional[Tuple[float, int, int]] = None
        if fast is not None:
            best = fast(
                cand_ok=state.children_counts() < caps_arr,
                threshold=COST_EPS,
            )
        else:
            for child in range(state.n):
                if child == sink:
                    continue
                parent = state.parent(child)
                assert parent is not None
                for cand in network.neighbors(child):
                    if cand == parent or state.in_subtree(cand, child):
                        continue
                    if state.n_children(cand) >= caps[cand]:
                        continue
                    delta = network.cost(child, cand) - network.cost(
                        child, parent
                    )
                    if delta < COST_EPS and (best is None or delta < best[0]):
                        best = (delta, child, cand)
        if best is None:
            break
        state.reparent(best[1], best[2], check=False)
        moves += 1
    if OBS.enabled and moves:
        OBS.registry.counter(
            "local_search.moves_accepted", op="reduce_cost_under_caps"
        ).inc(moves)
    return state.freeze()
