"""Exception types raised by the MRLC solvers."""

from __future__ import annotations

__all__ = [
    "MRLCError",
    "DisconnectedNetworkError",
    "InfeasibleLifetimeError",
    "LPSolverError",
]


class MRLCError(Exception):
    """Base class for all library-specific errors."""


class DisconnectedNetworkError(MRLCError):
    """The network has no spanning tree at all (some node cannot reach the sink)."""


class InfeasibleLifetimeError(MRLCError):
    """No data aggregation tree satisfies the requested lifetime bound.

    This is the first of IRA's two possible outcomes (Section V-A): the
    algorithm "shows that there is no data aggregation tree with lifetime
    bounded by LC".
    """


class LPSolverError(MRLCError):
    """The underlying linear-program solver failed unexpectedly."""
