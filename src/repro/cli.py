"""Command-line entry point: regenerate any figure of the evaluation.

Usage (installed as ``mrlc`` or via ``python -m repro``)::

    mrlc fig7                 # DFL comparison table
    mrlc fig7 --chart         # ... plus unicode bar/line charts
    mrlc fig8 --trials 20     # quick random-graph sweep
    mrlc fig8 --output r.json # archive the raw result as JSON
    mrlc fig11 --rounds 50    # churn experiment (prints Figs. 11-13 series)
    mrlc all --quick          # every figure at reduced scale
    mrlc obs ira --nodes 50   # instrumented run (see repro.obs.cli)
    mrlc builders             # list registered tree builders + knobs
    mrlc lint src/            # repo-invariant checker (see repro.lint.cli)
    mrlc serve run            # tree-serving daemon (see repro.serve.cli)
    mrlc serve bench          # synthetic load against the serving layer
    mrlc ext-portfolio        # portfolio tournament win-rate table
    mrlc bench-portfolio      # serial-vs-parallel portfolio race benchmark

Output is the plain-text table of the same rows/series the paper's figure
plots (costs in the paper's −1000·log2 q units).  The ``obs`` subcommand
(also installed as ``repro obs``) dispatches to the instrumentation layer's
own CLI before the figure parser runs.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.experiments import (
    run_distributed_experiment,
    run_energy_hole,
    run_ext_baselines,
    run_ext_estimation,
    run_ext_faulty_control,
    run_ext_latency,
    run_ext_portfolio,
    run_ext_stability,
    run_fig1,
    run_fig10,
    run_fig2,
    run_fig3,
    run_fig7,
    run_fig8,
    run_fig9,
)

__all__ = ["main", "build_parser"]


def _run_fig1(args: argparse.Namespace):
    return run_fig1(n_rounds=args.rounds or 200)


def _run_fig2(args: argparse.Namespace):
    return run_fig2(n_trials=args.trials or 200)


def _run_fig3(args: argparse.Namespace):
    return run_fig3()


def _run_fig7(args: argparse.Namespace):
    return run_fig7()


def _run_fig8(args: argparse.Namespace):
    return run_fig8(n_trials=args.trials or 100, n_jobs=args.jobs)


def _run_fig9(args: argparse.Namespace):
    return run_fig9(n_trials=args.trials or 100, n_jobs=args.jobs)


def _run_fig10(args: argparse.Namespace):
    return run_fig10(n_trials=args.trials or 100, n_jobs=args.jobs)


def _run_fig11(args: argparse.Namespace):
    return run_distributed_experiment(rounds=args.rounds or 100)


def _run_ext_baselines(args: argparse.Namespace):
    return run_ext_baselines(n_trials=args.trials or 20)


def _run_ext_energyhole(args: argparse.Namespace):
    return run_energy_hole()


def _run_ext_latency(args: argparse.Namespace):
    return run_ext_latency(n_rounds=args.rounds or 1500)


def _run_ext_estimation(args: argparse.Namespace):
    return run_ext_estimation(n_draws=args.trials or 20)


def _run_ext_stability(args: argparse.Namespace):
    return run_ext_stability(n_draws=args.trials or 10)


def _run_ext_faulty_control(args: argparse.Namespace):
    return run_ext_faulty_control(rounds=args.rounds or 100)


def _run_ext_portfolio(args: argparse.Namespace):
    return run_ext_portfolio(n_trials=args.trials or 10, n_jobs=args.jobs)


_COMMANDS: Dict[str, Callable[[argparse.Namespace], object]] = {
    "fig1": _run_fig1,
    "fig2": _run_fig2,
    "fig3": _run_fig3,
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "fig9": _run_fig9,
    "fig10": _run_fig10,
    "fig11": _run_fig11,  # figs 11-13 come from the same run
    "ext-baselines": _run_ext_baselines,
    "ext-energyhole": _run_ext_energyhole,
    "ext-estimation": _run_ext_estimation,
    "ext-faulty-control": _run_ext_faulty_control,
    "ext-latency": _run_ext_latency,
    "ext-portfolio": _run_ext_portfolio,
    "ext-stability": _run_ext_stability,
}

#: Reduced scales used by ``--quick`` / ``mrlc all --quick``.
_QUICK = {"trials": 10, "rounds": 20}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="mrlc",
        description=(
            "Regenerate the evaluation figures of 'On Maximizing Reliability "
            "of Lifetime Constrained Data Aggregation Tree in WSNs' (ICPP 2015)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_COMMANDS) + ["all"],
        help="which figure to regenerate ('fig11' covers figs 11-13; "
        "'ext-*' are this library's extension studies)",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=None,
        help="trial count for sweep experiments (default: paper scale)",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=None,
        help="round count for simulation experiments (default: paper scale)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced scale for smoke runs (overrides unset trials/rounds)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for trial sweeps (default: serial; "
        "results are identical either way)",
    )
    parser.add_argument(
        "--version",
        action="version",
        version="%(prog)s " + __import__("repro").__version__,
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="also print unicode charts of the figure's series",
    )
    parser.add_argument(
        "--output",
        type=str,
        default=None,
        help="write the raw result as JSON to this path "
        "(one file per experiment; 'all' appends the figure name)",
    )
    return parser


def _builders_main() -> int:
    """Print every registered tree builder with its knobs (``mrlc builders``)."""
    from repro.engine import available_builders, get_builder

    print("Registered tree builders (resolve via repro.engine.build_tree):")
    print()
    for name in available_builders():
        print(get_builder(name).describe())
        print()
    return 0


def _bench_core_main(argv: List[str]) -> int:
    """Run the core-compute benchmark (``repro bench-core [--out PATH]``)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro bench-core",
        description="Benchmark the array-native compute core (vectorized "
        "round simulation + numpy TreeState backend) against the "
        "historical loops; correctness is asserted, not sampled.",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=None,
        help="simulated rounds for the round-sim half (default 200)",
    )
    parser.add_argument(
        "--ci",
        action="store_true",
        help="use CI smoke sizes (40x40 round-sim grid, 26x26 search grid) "
        "so the loop baselines finish in seconds",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="workload seed (default 0)"
    )
    parser.add_argument(
        "--out",
        default=None,
        help="append the report to this BENCH_core.json trajectory file",
    )
    args = parser.parse_args(argv)
    from repro.engine.bench import append_core_bench_run, run_core_bench

    kwargs = {"seed": args.seed}
    if args.ci:
        kwargs.update(
            round_grid=40, rounds=100, search_grid=26, search_max_moves=30
        )
    if args.rounds is not None:
        kwargs["rounds"] = args.rounds
    report = run_core_bench(**kwargs)
    print(report.render())
    if args.out:
        append_core_bench_run(args.out, report)
        print(f"[appended run to {args.out}]")
    return 0


def _bench_portfolio_main(argv: List[str]) -> int:
    """Run the portfolio-race benchmark (``repro bench-portfolio [--out PATH]``)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro bench-portfolio",
        description="Benchmark the portfolio meta-builder: one serial and "
        "one parallel race over the default member set; winner identity "
        "between the two modes is asserted, not sampled.",
    )
    parser.add_argument(
        "--nodes", type=int, default=None, help="instance size (default 60)"
    )
    parser.add_argument(
        "--members",
        default=None,
        help="comma-separated member builder names (default: heuristic set)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the parallel race (default: one per member)",
    )
    parser.add_argument(
        "--ci",
        action="store_true",
        help="use CI smoke size (24 nodes) so the race finishes in seconds",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="workload seed (default 0)"
    )
    parser.add_argument(
        "--out",
        default=None,
        help="append the report to this BENCH_portfolio.json trajectory file",
    )
    args = parser.parse_args(argv)
    from repro.engine.portfolio import (
        append_portfolio_bench_run,
        run_portfolio_bench,
    )

    kwargs = {"seed": args.seed, "n_jobs": args.jobs}
    if args.ci:
        kwargs["n_nodes"] = 24
    if args.nodes is not None:
        kwargs["n_nodes"] = args.nodes
    if args.members:
        kwargs["members"] = tuple(
            name.strip() for name in args.members.split(",") if name.strip()
        )
    report = run_portfolio_bench(**kwargs)
    print(report.render())
    if args.out:
        append_portfolio_bench_run(args.out, report)
        print(f"[appended run to {args.out}]")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "bench-core":
        # Core-compute benchmark, a sibling of `serve bench` for the
        # engine/simulation layer.
        return _bench_core_main(argv[1:])
    if argv and argv[0] == "bench-portfolio":
        # Portfolio-race benchmark, same family as bench-core.
        return _bench_portfolio_main(argv[1:])
    if argv and argv[0] == "obs":
        # Instrumented runs live in their own sub-CLI so the figure parser
        # stays a plain positional-choice interface.
        from repro.obs.cli import obs_main

        return obs_main(argv[1:])
    if argv and argv[0] == "builders":
        return _builders_main()
    if argv and argv[0] == "lint":
        # The invariant checker is its own sub-CLI, like `obs`.
        from repro.lint.cli import lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "serve":
        # The serving layer is its own sub-CLI, like `obs` and `lint`.
        from repro.serve.cli import serve_main

        return serve_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.quick:
        args.trials = args.trials or _QUICK["trials"]
        args.rounds = args.rounds or _QUICK["rounds"]
    if args.trials is not None and args.trials <= 0:
        parser.error("--trials must be positive")
    if args.rounds is not None and args.rounds <= 0:
        parser.error("--rounds must be positive")
    if args.jobs is not None and args.jobs <= 0:
        parser.error("--jobs must be positive")

    names = sorted(_COMMANDS) if args.experiment == "all" else [args.experiment]
    for name in names:
        result = _COMMANDS[name](args)
        print(result.render())
        if args.chart:
            print()
            print(result.render_chart())
        if args.output:
            from repro.experiments.io import save_result

            path = args.output
            if len(names) > 1:
                stem, dot, suffix = path.rpartition(".")
                path = f"{stem}-{name}.{suffix}" if dot else f"{path}-{name}"
            save_result(result, path)
            print(f"[saved {name} result to {path}]")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
