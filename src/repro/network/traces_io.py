"""Churn traces: record link-quality evolution once, replay it anywhere.

The paper's evaluation is "trace-driven": algorithms consume a recorded
link-state history rather than a live channel.  This module provides that
artifact for the reproduction — a :class:`ChurnTrace` is the per-epoch list
of link-quality changes of one run, serializable to JSON, so that

* stochastic dynamics (e.g. :class:`~repro.network.dynamics
  .DynamicLinkSimulator`) can be captured once and re-used across
  algorithms — every algorithm sees *exactly* the same channel history;
* regression tests can pin behaviour on a frozen trace;
* real deployment logs could be imported by writing this one format.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

from repro.network.dynamics import DynamicLinkSimulator
from repro.network.model import Network
from repro.network.serialization import network_from_dict, network_to_dict

__all__ = ["ChurnEvent", "ChurnTrace", "record_churn_trace"]

_TRACE_FORMAT = "repro-churn-trace"
_VERSION = 1


@dataclass(frozen=True)
class ChurnEvent:
    """One link-quality change.

    Attributes:
        epoch: 0-based epoch index the change takes effect in.
        u, v: Link endpoints.
        prr: The link's new mean PRR.
    """

    epoch: int
    u: int
    v: int
    prr: float


@dataclass(frozen=True)
class ChurnTrace:
    """A frozen channel history: initial network + ordered change events."""

    initial: Network
    events: Tuple[ChurnEvent, ...]
    n_epochs: int

    def __post_init__(self) -> None:
        if self.n_epochs < 0:
            raise ValueError("n_epochs must be non-negative")
        last = -1
        for e in self.events:
            if not (0 <= e.epoch < max(self.n_epochs, 1)):
                raise ValueError(
                    f"event epoch {e.epoch} outside [0, {self.n_epochs})"
                )
            if e.epoch < last:
                raise ValueError("events must be ordered by epoch")
            last = e.epoch
            if not self.initial.has_edge(e.u, e.v):
                raise ValueError(
                    f"event touches unknown link ({e.u}, {e.v})"
                )

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def replay(
        self,
        on_change: Optional[Callable[[int, int, float], None]] = None,
    ) -> Iterator[Tuple[int, Network]]:
        """Yield ``(epoch, network)`` with the history applied step by step.

        The yielded network is one private copy mutated in place across
        epochs (snapshot with ``.copy()`` if you need to keep states).
        *on_change* is invoked as ``on_change(u, v, prr)`` for every applied
        event — the hook a protocol uses to refresh link estimates and run
        its handlers.
        """
        net = self.initial.copy()
        by_epoch: Dict[int, List[ChurnEvent]] = {}
        for event in self.events:
            by_epoch.setdefault(event.epoch, []).append(event)
        for epoch in range(self.n_epochs):
            for event in by_epoch.get(epoch, ()):
                net.set_prr(event.u, event.v, event.prr)
                if on_change is not None:
                    on_change(event.u, event.v, event.prr)
            yield epoch, net

    def final_network(self) -> Network:
        """The network after the whole history."""
        net = self.initial.copy()
        for event in self.events:
            net.set_prr(event.u, event.v, event.prr)
        return net

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "format": _TRACE_FORMAT,
            "version": _VERSION,
            "n_epochs": self.n_epochs,
            "initial": network_to_dict(self.initial),
            "events": [
                [e.epoch, e.u, e.v, e.prr] for e in self.events
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ChurnTrace":
        if data.get("format") != _TRACE_FORMAT:
            raise ValueError(
                f"not a {_TRACE_FORMAT} document (format={data.get('format')!r})"
            )
        if data.get("version") != _VERSION:
            raise ValueError(f"unsupported version {data.get('version')!r}")
        events = tuple(
            ChurnEvent(epoch=int(e[0]), u=int(e[1]), v=int(e[2]), prr=float(e[3]))
            for e in data["events"]
        )
        return cls(
            initial=network_from_dict(data["initial"]),
            events=events,
            n_epochs=int(data["n_epochs"]),
        )

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ChurnTrace":
        return cls.from_dict(json.loads(Path(path).read_text()))


def record_churn_trace(
    network: Network,
    n_epochs: int,
    *,
    dynamics: Optional[DynamicLinkSimulator] = None,
    seed: Optional[int] = None,
) -> ChurnTrace:
    """Run link dynamics for *n_epochs* and freeze the history.

    Args:
        network: Starting link state (copied; the argument is untouched).
        n_epochs: Epochs to record.
        dynamics: Pre-configured simulator over a *copy* of *network*; when
            ``None`` a default drift+burst simulator is built with *seed*.
    """
    if n_epochs <= 0:
        raise ValueError(f"n_epochs must be positive, got {n_epochs}")
    initial = network.copy()
    if dynamics is None:
        dynamics = DynamicLinkSimulator(network.copy(), seed=seed)
    events: List[ChurnEvent] = []
    for epoch in range(n_epochs):
        changed = dynamics.step()
        for (u, v), prr in sorted(changed.items()):
            events.append(ChurnEvent(epoch=epoch, u=u, v=v, prr=prr))
    return ChurnTrace(
        initial=initial, events=tuple(events), n_epochs=n_epochs
    )
