"""Network substrate: WSN graphs, energy models, link quality, topologies.

This package implements everything the paper's algorithms consume:

* :mod:`repro.network.model` — the :class:`Network` graph (nodes, PRRs,
  energies) with derived link costs ``c_e = -log q_e``.
* :mod:`repro.network.energy` — TelosB per-packet energy model and the Eq. 1
  lifetime arithmetic.
* :mod:`repro.network.linkquality` — distance/power → PRR models (Fig. 2).
* :mod:`repro.network.topology` — random / unit-disk / grid generators
  (Section VII-B workloads).
* :mod:`repro.network.trace` — beacon-based PRR estimation (Eq. 2) and an
  EWMA tracker for dynamic links.
* :mod:`repro.network.dfl` — synthetic stand-in for the paper's 16-node
  device-free-localization testbed (Section VII-A).
"""

from repro.network.dfl import DFLLinkModel, dfl_network, dfl_positions
from repro.network.dynamics import (
    DynamicLinkSimulator,
    GilbertElliottLink,
    LinkDriftModel,
)
from repro.network.energy import TELOSB, EnergyModel, PowerTrace, synthesize_power_trace
from repro.network.linkquality import (
    CC2420_TX_POWER_DBM,
    EmpiricalPRRModel,
    LogNormalShadowingModel,
    TxPowerSetting,
    UniformPRRModel,
    prr_vs_distance_curve,
)
from repro.network.model import Edge, Network, edge_key
from repro.network.serialization import (
    load_network,
    load_tree,
    network_from_dict,
    network_to_dict,
    save_network,
    save_tree,
    tree_from_dict,
    tree_to_dict,
)
from repro.network.topology import grid_graph, random_energies, random_graph, unit_disk_graph
from repro.network.trace import BeaconTraceEstimator, EWMALinkEstimator, LinkTrace
from repro.network.traces_io import ChurnEvent, ChurnTrace, record_churn_trace

__all__ = [
    "BeaconTraceEstimator",
    "CC2420_TX_POWER_DBM",
    "ChurnEvent",
    "ChurnTrace",
    "DFLLinkModel",
    "DynamicLinkSimulator",
    "EWMALinkEstimator",
    "Edge",
    "EmpiricalPRRModel",
    "EnergyModel",
    "GilbertElliottLink",
    "LinkDriftModel",
    "LinkTrace",
    "LogNormalShadowingModel",
    "Network",
    "PowerTrace",
    "TELOSB",
    "TxPowerSetting",
    "UniformPRRModel",
    "dfl_network",
    "dfl_positions",
    "edge_key",
    "grid_graph",
    "load_network",
    "load_tree",
    "network_from_dict",
    "network_to_dict",
    "save_network",
    "save_tree",
    "tree_from_dict",
    "tree_to_dict",
    "prr_vs_distance_curve",
    "random_energies",
    "random_graph",
    "record_churn_trace",
    "synthesize_power_trace",
    "unit_disk_graph",
]
