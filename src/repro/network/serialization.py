"""JSON (de)serialization for networks and trees.

Deployments snapshot their estimated link state so experiments are
re-runnable; this module round-trips :class:`~repro.network.model.Network`
and :class:`~repro.core.tree.AggregationTree` through plain JSON documents
(schema below) so instances can be archived next to experiment results.

Network schema (version 1)::

    {
      "format": "repro-network",
      "version": 1,
      "n": 16,
      "energy_model": {"tx": 1.6e-4, "rx": 1.2e-4},
      "initial_energy": [3000.0, ...],
      "positions": [[x, y], ...] | null,
      "links": [[u, v, prr], ...]
    }

Tree schema (version 1)::

    {"format": "repro-tree", "version": 1, "n": 16, "parents": {"1": 0, ...}}
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.core.tree import AggregationTree
from repro.network.energy import EnergyModel
from repro.network.model import Network

__all__ = [
    "network_to_dict",
    "network_from_dict",
    "save_network",
    "load_network",
    "topology_fingerprint",
    "tree_to_dict",
    "tree_from_dict",
    "save_tree",
    "load_tree",
]

_NETWORK_FORMAT = "repro-network"
_TREE_FORMAT = "repro-tree"
_VERSION = 1


def network_to_dict(network: Network) -> Dict:
    """Serialize *network* to a JSON-compatible dict."""
    return {
        "format": _NETWORK_FORMAT,
        "version": _VERSION,
        "n": network.n,
        "energy_model": {
            "tx": network.energy_model.tx,
            "rx": network.energy_model.rx,
        },
        "initial_energy": [float(e) for e in network.initial_energies],
        "positions": (
            None
            if network.positions is None
            else [[float(x), float(y)] for x, y in network.positions]
        ),
        "links": [[e.u, e.v, e.prr] for e in network.edges()],
    }


def network_from_dict(data: Dict) -> Network:
    """Rebuild a network from :func:`network_to_dict` output.

    Raises ``ValueError`` on wrong format tag, unsupported version, or
    structurally invalid content (delegated to the Network validators).
    """
    if data.get("format") != _NETWORK_FORMAT:
        raise ValueError(
            f"not a {_NETWORK_FORMAT} document (format={data.get('format')!r})"
        )
    if data.get("version") != _VERSION:
        raise ValueError(f"unsupported version {data.get('version')!r}")
    model = EnergyModel(
        tx=float(data["energy_model"]["tx"]),
        rx=float(data["energy_model"]["rx"]),
    )
    positions = data.get("positions")
    network = Network(
        int(data["n"]),
        initial_energy=data["initial_energy"],
        energy_model=model,
        positions=None if positions is None else np.asarray(positions, dtype=float),
    )
    for u, v, prr in data["links"]:
        network.add_link(int(u), int(v), float(prr))
    return network


#: Version tag mixed into every fingerprint; bump when the canonical byte
#: encoding below changes so stale cache keys cannot alias new ones.
_FINGERPRINT_TAG = "repro-topology-v1"


def topology_fingerprint(network: Network) -> str:
    """Content-addressed identity of *network*'s algorithmic inputs.

    Returns a hex SHA-256 digest over a canonical byte encoding of exactly
    the fields tree builders consume: node count, the per-packet energy
    model, the per-node initial energies, and the sorted link list with
    PRRs.  Two networks with equal values hash identically regardless of
    link insertion order (links are serialized in canonical ``(u, v)`` key
    order) or numeric representation (every number is passed through
    ``float()``/``int()`` and rendered with ``repr``, the shortest
    round-trip form, so a PRR stored as ``np.float64(0.95)`` and a plain
    ``0.95`` agree — while genuinely different values such as a float32
    rounding of 0.95 do not).

    Node ``positions`` are deliberately excluded: no builder reads them, so
    two deployments differing only in coordinates produce identical trees
    and may share cache entries.  The serving layer
    (:mod:`repro.serve`) keys both of its cache tiers on this digest.
    """
    h = hashlib.sha256()

    def feed(text: str) -> None:
        h.update(text.encode("ascii"))
        h.update(b"\n")

    feed(_FINGERPRINT_TAG)
    feed(str(int(network.n)))
    feed(repr(float(network.energy_model.tx)))
    feed(repr(float(network.energy_model.rx)))
    for energy in network.initial_energies:
        feed(repr(float(energy)))
    feed(str(network.n_edges))
    for edge in network.edges():  # canonical sorted-key order
        feed(f"{int(edge.u)},{int(edge.v)},{repr(float(edge.prr))}")
    return h.hexdigest()


def save_network(network: Network, path: Union[str, Path]) -> None:
    """Write *network* to *path* as JSON."""
    Path(path).write_text(json.dumps(network_to_dict(network), indent=2))


def load_network(path: Union[str, Path]) -> Network:
    """Read a network JSON document from *path*."""
    return network_from_dict(json.loads(Path(path).read_text()))


def tree_to_dict(tree: AggregationTree) -> Dict:
    """Serialize *tree*'s structure (the network is stored separately)."""
    return {
        "format": _TREE_FORMAT,
        "version": _VERSION,
        "n": tree.n,
        "parents": {str(v): int(p) for v, p in tree.parents.items()},
    }


def tree_from_dict(data: Dict, network: Network) -> AggregationTree:
    """Rebuild a tree over *network* from :func:`tree_to_dict` output."""
    if data.get("format") != _TREE_FORMAT:
        raise ValueError(
            f"not a {_TREE_FORMAT} document (format={data.get('format')!r})"
        )
    if data.get("version") != _VERSION:
        raise ValueError(f"unsupported version {data.get('version')!r}")
    if int(data["n"]) != network.n:
        raise ValueError(
            f"tree has {data['n']} nodes but network has {network.n}"
        )
    parents = {int(v): int(p) for v, p in data["parents"].items()}
    return AggregationTree(network, parents)


def save_tree(tree: AggregationTree, path: Union[str, Path]) -> None:
    """Write *tree* to *path* as JSON."""
    Path(path).write_text(json.dumps(tree_to_dict(tree), indent=2))


def load_tree(path: Union[str, Path], network: Network) -> AggregationTree:
    """Read a tree JSON document from *path* and bind it to *network*."""
    return tree_from_dict(json.loads(Path(path).read_text()), network)
