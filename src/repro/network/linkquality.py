"""Link-quality (packet reception ratio) models.

The paper's motivation experiment (Fig. 2) measures the average packet
reception ratio (PRR) of TelosB links at distances from 4 ft to 16 ft for
transmit-power settings Tx ∈ {19, 15, 11, 7, 3} (CC2420 register values).
At Tx=19 the PRR degrades gently with distance; at Tx=11 and below it falls
from ~100% to under 10% over that range.

We do not have the testbed, so this module implements the standard
log-normal-shadowing + CC2420 packet-success chain used in the WSN literature
(Zuniga & Krishnamachari's link-layer model):

  1. path loss:   PL(d) = PL(d0) + 10·η·log10(d/d0) + N(0, σ)
  2. SNR:         γ(d) = P_tx − PL(d) − P_noise
  3. bit error:   DSSS/O-QPSK BER approximation for the CC2420
  4. packet success: PRR = (1 − BER)^(8·frame_bytes)

The parameters are calibrated so the resulting curves have the Fig. 2 shape
(near-1.0 plateau, sharp transitional region, long unreliable tail, ordered
by transmit power).  The DFL substitute topology and the random topologies
draw their PRRs from these models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_positive, check_probability

__all__ = [
    "EmpiricalPRRModel",
    "LogNormalShadowingModel",
    "TxPowerSetting",
    "CC2420_TX_POWER_DBM",
    "prr_vs_distance_curve",
    "UniformPRRModel",
]

#: CC2420 PA_LEVEL register value -> output power in dBm (datasheet table).
CC2420_TX_POWER_DBM = {
    31: 0.0,
    27: -1.0,
    23: -3.0,
    19: -5.0,
    15: -7.0,
    11: -10.0,
    7: -15.0,
    3: -25.0,
}

FT_PER_M = 3.280839895


@dataclass(frozen=True)
class TxPowerSetting:
    """A CC2420 transmit-power register setting.

    Attributes:
        level: PA_LEVEL register value (3..31, as in the paper's Fig. 2).
    """

    level: int

    def __post_init__(self) -> None:
        if self.level not in CC2420_TX_POWER_DBM:
            raise ValueError(
                f"unknown CC2420 PA_LEVEL {self.level}; "
                f"known levels: {sorted(CC2420_TX_POWER_DBM)}"
            )

    @property
    def dbm(self) -> float:
        """Radio output power in dBm."""
        return CC2420_TX_POWER_DBM[self.level]


@dataclass(frozen=True)
class LogNormalShadowingModel:
    """Distance → PRR model (log-normal shadowing + CC2420 PER chain).

    Attributes:
        path_loss_exponent: Environment decay exponent η (2 free space,
            3–4 indoor; the DFL lab calibrates to ~3.2).
        reference_loss_db: Path loss at the reference distance, dB.
        reference_distance_m: Reference distance d0 in meters.
        shadowing_sigma_db: Std-dev of the shadowing term, dB (0 = smooth
            mean curve, used for the Fig. 2 averages).
        noise_floor_dbm: Receiver noise floor, dBm.
        frame_bytes: Packet length used for PRR (paper uses 34-byte packets).
    """

    path_loss_exponent: float = 3.2
    reference_loss_db: float = 55.0
    reference_distance_m: float = 1.0
    shadowing_sigma_db: float = 3.0
    noise_floor_dbm: float = -98.0
    frame_bytes: int = 34

    def __post_init__(self) -> None:
        check_positive(self.path_loss_exponent, "path_loss_exponent")
        check_positive(self.reference_distance_m, "reference_distance_m")
        if self.shadowing_sigma_db < 0:
            raise ValueError("shadowing_sigma_db must be non-negative")
        if self.frame_bytes <= 0:
            raise ValueError("frame_bytes must be positive")

    def path_loss_db(self, distance_m: float, rng: Optional[np.random.Generator] = None) -> float:
        """Path loss at *distance_m*; adds a shadowing draw if *rng* given."""
        check_positive(distance_m, "distance_m")
        loss = self.reference_loss_db + 10.0 * self.path_loss_exponent * math.log10(
            distance_m / self.reference_distance_m
        )
        if rng is not None and self.shadowing_sigma_db > 0:
            loss += float(rng.normal(0.0, self.shadowing_sigma_db))
        return loss

    def snr_db(
        self,
        distance_m: float,
        tx_power_dbm: float,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Signal-to-noise ratio at the receiver, dB."""
        return tx_power_dbm - self.path_loss_db(distance_m, rng) - self.noise_floor_dbm

    @staticmethod
    def bit_error_rate(snr_db: float) -> float:
        """CC2420 (802.15.4 DSSS O-QPSK) bit-error approximation.

        Zuniga & Krishnamachari:  BER = (1/8)·(1/16)·Σ_{k=2..16}
        (−1)^k C(16,k) exp(20·γ·(1/k − 1)), with γ the linear SNR.
        """
        gamma = 10.0 ** (snr_db / 10.0)
        total = 0.0
        for k in range(2, 17):
            total += ((-1) ** k) * math.comb(16, k) * math.exp(
                20.0 * gamma * (1.0 / k - 1.0)
            )
        ber = total / 128.0
        return min(max(ber, 0.0), 0.5)

    def prr(
        self,
        distance_m: float,
        tx_power_dbm: float,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Packet reception ratio of a link at *distance_m*.

        With *rng* provided, a per-link shadowing term is drawn, producing
        the link-to-link variation a real deployment shows; without it, the
        smooth mean curve (Fig. 2 averages) is returned.
        """
        snr = self.snr_db(distance_m, tx_power_dbm, rng)
        ber = self.bit_error_rate(snr)
        return (1.0 - ber) ** (8 * self.frame_bytes)

    def prr_level(
        self,
        distance_m: float,
        level: int,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """PRR for a CC2420 PA_LEVEL register value (Fig. 2's Tx axis)."""
        return self.prr(distance_m, TxPowerSetting(level).dbm, rng)


def prr_vs_distance_curve(
    model: LogNormalShadowingModel,
    level: int,
    distances_ft: np.ndarray,
    *,
    n_trials: int = 0,
    seed: SeedLike = None,
) -> np.ndarray:
    """Average PRR at each distance (in feet, matching Fig. 2's axis).

    With ``n_trials == 0`` the deterministic mean curve is returned; with
    ``n_trials > 0``, *n_trials* shadowing draws are averaged per distance,
    emulating the paper's repeated measurements.
    """
    distances_ft = np.asarray(distances_ft, dtype=float)
    if np.any(distances_ft <= 0):
        raise ValueError("distances must be positive")
    rng = as_rng(seed)
    out = np.empty_like(distances_ft)
    for i, d_ft in enumerate(distances_ft):
        d_m = float(d_ft) / FT_PER_M
        if n_trials <= 0:
            out[i] = model.prr_level(d_m, level)
        else:
            samples = [model.prr_level(d_m, level, rng) for _ in range(n_trials)]
            out[i] = float(np.mean(samples))
    return out


@dataclass(frozen=True)
class EmpiricalPRRModel:
    """Smooth graded distance→PRR mapping: ``1 - alpha * d**beta`` + noise.

    The CC2420 SNR chain has a sharp cliff — links are either near-perfect
    or near-dead — which is right for the Fig. 2 reproduction but makes
    every spanning-tree algorithm pick the same near-free links.  Real
    deployments also see a *graded* regime (interference, multipath,
    asymmetric antennas) where even short links lose a few percent and the
    loss grows smoothly with distance; this model captures that regime.

    The signature matches :class:`LogNormalShadowingModel.prr` (the
    ``tx_power_dbm`` argument is accepted and ignored) so topology
    generators can take either model.

    Attributes:
        alpha, beta: Shape of the degradation term.
        noise_sigma: Std-dev of per-link quality noise.
        floor, ceiling: Clipping bounds for the resulting PRR.
    """

    alpha: float = 0.02
    beta: float = 1.2
    noise_sigma: float = 0.01
    floor: float = 0.05
    ceiling: float = 0.999

    def __post_init__(self) -> None:
        check_positive(self.alpha, "alpha")
        check_positive(self.beta, "beta")
        check_probability(self.floor, "floor", allow_zero=False)
        check_probability(self.ceiling, "ceiling", allow_zero=False)
        if self.floor >= self.ceiling:
            raise ValueError("floor must be < ceiling")
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")

    def prr(
        self,
        distance_m: float,
        tx_power_dbm: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """PRR of a link of length *distance_m* (noisy when *rng* given)."""
        check_positive(distance_m, "distance_m")
        value = 1.0 - self.alpha * distance_m**self.beta
        if rng is not None and self.noise_sigma > 0:
            value += float(rng.normal(0.0, self.noise_sigma))
        return float(np.clip(value, self.floor, self.ceiling))


@dataclass(frozen=True)
class UniformPRRModel:
    """Draw link PRRs uniformly from ``(low, high)``.

    Section VII-B's random-graph experiments select each link's quality
    "randomly in (0.95, 1)"; this model reproduces that setup.
    """

    low: float = 0.95
    high: float = 1.0

    def __post_init__(self) -> None:
        check_probability(self.low, "low")
        check_probability(self.high, "high")
        if self.low >= self.high:
            raise ValueError(f"low ({self.low}) must be < high ({self.high})")

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        """Draw one PRR (or an array of *size* PRRs) from the open interval."""
        return rng.uniform(self.low, self.high, size=size)
