"""Synthetic stand-in for the paper's Device-Free-Localization (DFL) testbed.

Section VII evaluates on trace data from a real DFL system: 16 TelosB nodes
on adjustable tripods along the perimeter of a 3.6 m × 3.6 m square, adjacent
sensors 0.9 m apart, node 0 the sink, every node powered by two AA batteries
(3000 J), and link qualities estimated from 1000 beacon rounds.

We do not have those traces, so this module synthesizes the closest
equivalent:

* the exact geometry (16 nodes, 4 per side, 0.9 m spacing, sink = node 0);
* a distance→PRR mapping calibrated so that the *headline numbers of Fig. 7
  are reproducible in shape*: short perimeter hops are excellent
  (PRR ≈ 0.995+), cross-room links degrade smoothly toward ≈ 0.93, which
  makes cost(MST) small, cost(AAML) several times larger, and
  cost(IRA) → cost(MST) as the lifetime constraint loosens — the qualitative
  structure the paper reports (MST 55 / 0.963, AAML 378 / 0.77,
  IRA@LC 68 / 0.954 in paper cost units, i.e. −1000·log2 q; see
  :data:`repro.core.tree.PAPER_COST_SCALE`);
* the 1000-round beacon estimation step
  (:class:`repro.network.trace.BeaconTraceEstimator`), so the algorithms see
  *estimated* PRRs with binomial noise, exactly like the deployment.

The empirical mapping here is deliberately gentler than the log-normal
shadowing model of :mod:`repro.network.linkquality`: inside a 3.6 m room all
links are above the SNR cliff, and what remains is the smooth residual
degradation with distance that the calibration captures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.network.energy import DEFAULT_BATTERY_J, EnergyModel, TELOSB
from repro.network.model import Network
from repro.network.trace import BeaconTraceEstimator
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_positive, check_probability

__all__ = ["DFLLinkModel", "dfl_positions", "dfl_network", "DFL_N_NODES"]

#: Node count of the DFL deployment.
DFL_N_NODES = 16

#: Side length of the monitored square, meters.
DFL_SIDE_M = 3.6

#: Spacing between adjacent perimeter sensors, meters.
DFL_SPACING_M = 0.9


@dataclass(frozen=True)
class DFLLinkModel:
    """Smooth in-room distance→PRR mapping for the DFL substitute.

    ``prr(d) = 1 - alpha * d**beta`` plus Gaussian per-link noise (multipath
    makes in-room quality only loosely distance-monotone), clipped to
    ``[floor, ceiling]``.  Defaults are calibrated so the Fig. 7 comparison
    reproduces in shape: MST reliability ≈ 0.96, AAML ≈ 0.7, the MST is
    branchy (some 3-children node) so the strictest IRA bound pays a visible
    premium that vanishes as the bound relaxes.

    Attributes:
        alpha, beta: Shape of the deterministic degradation term.
        noise_sigma: Std-dev of per-link quality noise (multipath etc.).
        floor, ceiling: Clipping bounds for the resulting PRR.
    """

    alpha: float = 0.007
    beta: float = 1.4
    noise_sigma: float = 0.012
    floor: float = 0.90
    ceiling: float = 0.999

    def __post_init__(self) -> None:
        check_positive(self.alpha, "alpha")
        check_positive(self.beta, "beta")
        check_probability(self.floor, "floor", allow_zero=False)
        check_probability(self.ceiling, "ceiling", allow_zero=False)
        if self.floor >= self.ceiling:
            raise ValueError("floor must be < ceiling")
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")

    def prr(self, distance_m: float, rng: Optional[np.random.Generator] = None) -> float:
        """PRR of a link of length *distance_m* (noisy if *rng* given)."""
        check_positive(distance_m, "distance_m")
        value = 1.0 - self.alpha * distance_m**self.beta
        if rng is not None and self.noise_sigma > 0:
            value += float(rng.normal(0.0, self.noise_sigma))
        return float(np.clip(value, self.floor, self.ceiling))


def dfl_positions() -> np.ndarray:
    """Coordinates of the 16 perimeter sensors, meters.

    Nodes are labelled counter-clockwise from the sink at the origin corner:
    16 positions at 0.9 m spacing covering the 14.4 m perimeter exactly.
    """
    positions = []
    # Walk the perimeter: bottom edge, right edge, top edge, left edge.
    for i in range(4):
        positions.append((i * DFL_SPACING_M, 0.0))
    for i in range(4):
        positions.append((DFL_SIDE_M, i * DFL_SPACING_M))
    for i in range(4):
        positions.append((DFL_SIDE_M - i * DFL_SPACING_M, DFL_SIDE_M))
    for i in range(4):
        positions.append((0.0, DFL_SIDE_M - i * DFL_SPACING_M))
    return np.array(positions, dtype=float)


def dfl_network(
    *,
    link_model: Optional[DFLLinkModel] = None,
    initial_energy: float | np.ndarray = DEFAULT_BATTERY_J,
    energy_model: EnergyModel = TELOSB,
    estimate_with_beacons: bool = True,
    n_beacons: int = 1000,
    seed: SeedLike = 2015,
) -> Network:
    """Build the 16-node DFL substitute network.

    Every node pair forms a link (a 3.6 m room is entirely within TelosB
    range); PRRs come from :class:`DFLLinkModel`.  With
    ``estimate_with_beacons`` (the default and the paper's procedure) the
    returned network carries *estimated* PRRs from a simulated 1000-round
    beacon phase instead of the ground-truth values.

    The default ``seed`` pins the canonical instance used by the Fig. 7 and
    Fig. 11–13 reproductions.
    """
    model = link_model if link_model is not None else DFLLinkModel()
    rng = as_rng(seed)
    positions = dfl_positions()
    net = Network(
        DFL_N_NODES,
        initial_energy=initial_energy,
        energy_model=energy_model,
        positions=positions,
    )
    for u in range(DFL_N_NODES):
        for v in range(u + 1, DFL_N_NODES):
            dist = float(np.linalg.norm(positions[u] - positions[v]))
            net.add_link(u, v, model.prr(dist, rng))
    if estimate_with_beacons:
        estimator = BeaconTraceEstimator(n_beacons=n_beacons)
        net = estimator.estimate(net, seed=rng)
    return net
