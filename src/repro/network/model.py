"""Core network data structures: nodes, links, and the WSN graph.

The paper models a WSN as an undirected connected graph ``G = (V, E)`` with
``V = {v0, ..., v_{n-1}}`` where ``v0`` is the sink, a packet reception ratio
``q_e`` on every link, and an initial energy ``I(v)`` on every node
(Section III-B).  :class:`Network` is the single source of truth for that
data; tree builders, the LP, and the simulators all consume it.

Link costs are derived, not stored: ``c_e = -log q_e`` (Eq. 9), so maximizing
tree reliability equals minimizing total tree cost (Lemma 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro.network.energy import DEFAULT_BATTERY_J, EnergyModel, TELOSB
from repro.utils.validation import check_non_negative, check_probability

__all__ = ["Edge", "Network", "edge_key"]

#: Smallest PRR treated as a usable link; below this the cost -log(q) blows
#: up and the link is numerically (and practically) useless.
MIN_USABLE_PRR = 1e-9


def edge_key(u: int, v: int) -> Tuple[int, int]:
    """Canonical undirected edge key (sorted endpoint pair)."""
    if u == v:
        raise ValueError(f"self-loop ({u}, {v}) is not a valid link")
    return (u, v) if u < v else (v, u)


@dataclass(frozen=True)
class Edge:
    """An undirected wireless link.

    Attributes:
        u, v: Endpoint node ids with ``u < v``.
        prr: Packet reception ratio ``q_e`` in ``(0, 1]``.
    """

    u: int
    v: int
    prr: float

    def __post_init__(self) -> None:
        if self.u >= self.v:
            raise ValueError(f"Edge endpoints must satisfy u < v, got ({self.u}, {self.v})")
        check_probability(self.prr, "prr", allow_zero=False)

    @property
    def cost(self) -> float:
        """Link cost ``c_e = -log q_e = log ETX(e)`` (Eq. 9)."""
        return -math.log(self.prr)

    @property
    def key(self) -> Tuple[int, int]:
        return (self.u, self.v)

    def other(self, node: int) -> int:
        """The endpoint that is not *node*."""
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise ValueError(f"node {node} is not an endpoint of edge {self.key}")


class Network:
    """A wireless sensor network: sink, sensors, unreliable links.

    Node ids are the contiguous integers ``0 .. n-1``; node ``0`` is the sink
    (the paper's labelling, which the Prüfer machinery also relies on: the
    sink carries the smallest label).

    Args:
        n_nodes: Total node count including the sink.
        initial_energy: Scalar (applied to every node) or per-node array of
            initial energies ``I(v)`` in joules.
        energy_model: Per-packet Tx/Rx energy model (defaults to the paper's
            TelosB constants).
        positions: Optional ``(n, 2)`` array of node coordinates in meters;
            kept for topology generators and plotting, unused by algorithms.
    """

    def __init__(
        self,
        n_nodes: int,
        *,
        initial_energy: float | Iterable[float] = DEFAULT_BATTERY_J,
        energy_model: EnergyModel = TELOSB,
        positions: Optional[np.ndarray] = None,
    ) -> None:
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        self.n = int(n_nodes)
        self.sink = 0
        self.energy_model = energy_model

        if isinstance(initial_energy, (int, float)):
            energies = np.full(self.n, float(initial_energy))
        else:
            energies = np.asarray(list(initial_energy), dtype=float)
            if energies.shape != (self.n,):
                raise ValueError(
                    f"initial_energy must have length {self.n}, got {energies.shape}"
                )
        if np.any(energies < 0) or not np.all(np.isfinite(energies)):
            raise ValueError("initial energies must be finite and non-negative")
        self._energy = energies

        if positions is not None:
            positions = np.asarray(positions, dtype=float)
            if positions.shape != (self.n, 2):
                raise ValueError(
                    f"positions must have shape ({self.n}, 2), got {positions.shape}"
                )
        self.positions = positions

        self._edges: Dict[Tuple[int, int], Edge] = {}
        self._adj: List[Dict[int, Edge]] = [dict() for _ in range(self.n)]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_link(self, u: int, v: int, prr: float) -> Edge:
        """Add (or replace) the undirected link ``{u, v}`` with PRR *prr*."""
        self._check_node(u)
        self._check_node(v)
        key = edge_key(u, v)
        edge = Edge(key[0], key[1], prr)
        self._edges[key] = edge
        self._adj[u][v] = edge
        self._adj[v][u] = edge
        return edge

    def remove_link(self, u: int, v: int) -> None:
        """Remove the link ``{u, v}``; raises ``KeyError`` if absent."""
        key = edge_key(u, v)
        del self._edges[key]
        del self._adj[u][v]
        del self._adj[v][u]

    def set_prr(self, u: int, v: int, prr: float) -> Edge:
        """Update the PRR of an existing link (used by the dynamic protocol)."""
        if edge_key(u, v) not in self._edges:
            raise KeyError(f"no link {edge_key(u, v)} in network")
        return self.add_link(u, v, prr)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> range:
        """All node ids, sink first."""
        return range(self.n)

    @property
    def n_edges(self) -> int:
        return len(self._edges)

    def edges(self) -> Iterator[Edge]:
        """Iterate all links in canonical-key order (deterministic)."""
        for key in sorted(self._edges):
            yield self._edges[key]

    def edge(self, u: int, v: int) -> Edge:
        """The link ``{u, v}``; raises ``KeyError`` if absent."""
        return self._edges[edge_key(u, v)]

    def has_edge(self, u: int, v: int) -> bool:
        if u == v:
            return False
        return edge_key(u, v) in self._edges

    def prr(self, u: int, v: int) -> float:
        return self.edge(u, v).prr

    def cost(self, u: int, v: int) -> float:
        return self.edge(u, v).cost

    def neighbors(self, node: int) -> List[int]:
        """Sorted neighbor ids of *node*."""
        self._check_node(node)
        return sorted(self._adj[node])

    def degree(self, node: int) -> int:
        self._check_node(node)
        return len(self._adj[node])

    def incident_edges(self, node: int) -> List[Edge]:
        """Edges incident to *node*, neighbor-sorted."""
        self._check_node(node)
        return [self._adj[node][nbr] for nbr in sorted(self._adj[node])]

    def initial_energy(self, node: int) -> float:
        self._check_node(node)
        return float(self._energy[node])

    @property
    def initial_energies(self) -> np.ndarray:
        """Copy of the per-node initial-energy vector."""
        return self._energy.copy()

    @property
    def min_initial_energy(self) -> float:
        """``I_min`` over sensor nodes — used by IRA's bound inflation."""
        return float(np.min(self._energy))

    def set_initial_energy(self, node: int, energy: float) -> None:
        self._check_node(node)
        check_non_negative(energy, "energy")
        self._energy[node] = energy

    # ------------------------------------------------------------------
    # Graph-level queries
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """Whether every node can reach the sink."""
        if self.n == 1:
            return True
        seen = {self.sink}
        stack = [self.sink]
        while stack:
            u = stack.pop()
            for v in self._adj[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return len(seen) == self.n

    def component_of(self, node: int) -> Set[int]:
        """The connected component containing *node*."""
        self._check_node(node)
        seen = {node}
        stack = [node]
        while stack:
            u = stack.pop()
            for v in self._adj[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return seen

    def filtered(self, min_prr: float) -> "Network":
        """Copy of the network keeping only links with ``prr >= min_prr``.

        Section VII-A applies this with ``min_prr = 0.95`` before running
        AAML, since AAML is link-quality agnostic.
        """
        check_probability(min_prr, "min_prr")
        out = Network(
            self.n,
            initial_energy=self._energy,
            energy_model=self.energy_model,
            positions=None if self.positions is None else self.positions.copy(),
        )
        for e in self.edges():
            if e.prr >= min_prr:
                out.add_link(e.u, e.v, e.prr)
        return out

    def copy(self) -> "Network":
        """Deep copy (independent energies and link set)."""
        out = Network(
            self.n,
            initial_energy=self._energy,
            energy_model=self.energy_model,
            positions=None if self.positions is None else self.positions.copy(),
        )
        for e in self.edges():
            out.add_link(e.u, e.v, e.prr)
        return out

    def average_prr(self) -> float:
        """Mean PRR over all links (0 links -> 1.0 by convention)."""
        if not self._edges:
            return 1.0
        return float(np.mean([e.prr for e in self._edges.values()]))

    def to_networkx(self):
        """Export as a :class:`networkx.Graph` (for tests and plotting only).

        Attributes: ``prr`` and ``cost`` on edges, ``energy`` on nodes.
        """
        import networkx as nx

        g = nx.Graph()
        for v in self.nodes:
            g.add_node(v, energy=float(self._energy[v]))
        for e in self.edges():
            g.add_edge(e.u, e.v, prr=e.prr, cost=e.cost)
        return g

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self.n):
            raise ValueError(f"node id {node} out of range [0, {self.n})")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Network(n={self.n}, edges={self.n_edges})"
