"""Topology generators for the paper's workloads.

Section VII uses two topology families:

* the 16-node DFL perimeter deployment (see :mod:`repro.network.dfl`), and
* random graphs: "Each random graph has 16 nodes and every possible edge
  occurs independently with probability 70%. The link quality of each edge is
  randomly selected in (0.95, 1)." — :func:`random_graph` reproduces this,
  with the link probability and PRR range as parameters for the Fig. 8–10
  sweeps.

Unit-disk and grid generators are provided for the example applications
(habitat-monitoring-style deployments in the paper's introduction).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.network.energy import DEFAULT_BATTERY_J, EnergyModel, TELOSB
from repro.network.linkquality import LogNormalShadowingModel, UniformPRRModel
from repro.network.model import Network
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_positive, check_probability

__all__ = [
    "random_graph",
    "unit_disk_graph",
    "grid_graph",
    "random_energies",
]


def random_energies(
    n_nodes: int,
    low: float,
    high: float,
    *,
    seed: SeedLike = None,
) -> np.ndarray:
    """Per-node initial energies drawn uniformly from ``[low, high]``.

    Section VII-B2 uses ``[1500 J, 5000 J]``.
    """
    check_positive(low, "low")
    if high < low:
        raise ValueError(f"high ({high}) must be >= low ({low})")
    rng = as_rng(seed)
    return rng.uniform(low, high, size=n_nodes)


def random_graph(
    n_nodes: int = 16,
    link_probability: float = 0.7,
    *,
    prr_low: float = 0.95,
    prr_high: float = 1.0,
    initial_energy: float | np.ndarray = DEFAULT_BATTERY_J,
    energy_model: EnergyModel = TELOSB,
    seed: SeedLike = None,
    ensure_connected: bool = True,
    max_attempts: int = 1000,
) -> Network:
    """G(n, p) random WSN with uniform-random link PRRs (Section VII-B).

    Every unordered node pair becomes a link independently with probability
    *link_probability*; each link's PRR is uniform in (*prr_low*, *prr_high*).
    With ``ensure_connected`` (the paper requires a connected G) the draw is
    repeated until the graph is connected, raising ``RuntimeError`` after
    *max_attempts* failures (only plausible for tiny p).
    """
    check_probability(link_probability, "link_probability")
    prr_model = UniformPRRModel(prr_low, prr_high)
    rng = as_rng(seed)
    for _ in range(max_attempts):
        net = Network(
            n_nodes,
            initial_energy=initial_energy,
            energy_model=energy_model,
        )
        for u in range(n_nodes):
            for v in range(u + 1, n_nodes):
                if rng.random() < link_probability:
                    net.add_link(u, v, float(prr_model.sample(rng)))
        if not ensure_connected or net.is_connected():
            return net
    raise RuntimeError(
        f"failed to draw a connected G({n_nodes}, {link_probability}) "
        f"after {max_attempts} attempts"
    )


def unit_disk_graph(
    n_nodes: int,
    area_m: float,
    comm_range_m: float,
    *,
    link_model: Optional[LogNormalShadowingModel] = None,
    tx_power_dbm: float = 0.0,
    min_prr: float = 0.05,
    initial_energy: float | np.ndarray = DEFAULT_BATTERY_J,
    energy_model: EnergyModel = TELOSB,
    seed: SeedLike = None,
    ensure_connected: bool = True,
    max_attempts: int = 200,
) -> Network:
    """Uniform random deployment in a square with distance-based link PRRs.

    Nodes are scattered uniformly in an ``area_m × area_m`` square (sink at
    the center); node pairs within *comm_range_m* form links whose PRR comes
    from *link_model* (with per-link shadowing).  Links whose PRR falls below
    *min_prr* are dropped — such links exist physically but are useless and
    real link estimators blacklist them.
    """
    check_positive(area_m, "area_m")
    check_positive(comm_range_m, "comm_range_m")
    check_probability(min_prr, "min_prr")
    model = link_model if link_model is not None else LogNormalShadowingModel()
    rng = as_rng(seed)

    for _ in range(max_attempts):
        positions = rng.uniform(0.0, area_m, size=(n_nodes, 2))
        positions[0] = (area_m / 2.0, area_m / 2.0)  # sink at the center
        net = Network(
            n_nodes,
            initial_energy=initial_energy,
            energy_model=energy_model,
            positions=positions,
        )
        for u in range(n_nodes):
            for v in range(u + 1, n_nodes):
                dist = float(np.linalg.norm(positions[u] - positions[v]))
                if dist <= comm_range_m:
                    prr = model.prr(max(dist, 1e-3), tx_power_dbm, rng)
                    if prr >= min_prr:
                        net.add_link(u, v, min(prr, 1.0))
        if not ensure_connected or net.is_connected():
            return net
    raise RuntimeError(
        f"failed to draw a connected unit-disk graph after {max_attempts} attempts; "
        "increase comm_range_m or n_nodes"
    )


def grid_graph(
    rows: int,
    cols: int,
    spacing_m: float = 1.0,
    *,
    link_model: Optional[LogNormalShadowingModel] = None,
    tx_power_dbm: float = 0.0,
    include_diagonals: bool = True,
    initial_energy: float | np.ndarray = DEFAULT_BATTERY_J,
    energy_model: EnergyModel = TELOSB,
    seed: SeedLike = None,
) -> Network:
    """Regular ``rows × cols`` grid deployment (structure-monitoring layout).

    Node 0 (the sink) is the grid corner at the origin; links connect
    4-neighbors (and diagonals when *include_diagonals*), with PRRs from the
    distance model including per-link shadowing.
    """
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be >= 1")
    check_positive(spacing_m, "spacing_m")
    model = link_model if link_model is not None else LogNormalShadowingModel()
    rng = as_rng(seed)
    n = rows * cols
    positions = np.array(
        [(c * spacing_m, r * spacing_m) for r in range(rows) for c in range(cols)],
        dtype=float,
    )
    net = Network(
        n,
        initial_energy=initial_energy,
        energy_model=energy_model,
        positions=positions,
    )
    offsets = [(0, 1), (1, 0)]
    if include_diagonals:
        offsets += [(1, 1), (1, -1)]
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            for dr, dc in offsets:
                rr, cc = r + dr, c + dc
                if 0 <= rr < rows and 0 <= cc < cols:
                    v = rr * cols + cc
                    dist = float(np.linalg.norm(positions[u] - positions[v]))
                    prr = model.prr(dist, tx_power_dbm, rng)
                    net.add_link(u, v, min(max(prr, 1e-6), 1.0))
    return net
