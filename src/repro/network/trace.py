"""Beacon-based link-quality estimation (the paper's trace-collection step).

"At the beginning, every sensor node broadcasts a thousand rounds of beacons
to estimate the link quality" (Section VII).  PRR is then the ratio of
correctly received beacons to transmitted beacons (Eq. 2):

    q_e = N_r / N_s

We reproduce that measurement pipeline: given a *ground-truth* network (whose
PRRs play the role of physical link behaviour), :class:`BeaconTraceEstimator`
simulates beacon rounds with Bernoulli receptions and produces an *estimated*
network.  The algorithms consume the estimate, exactly as the deployment's
algorithms consumed the measured traces — including estimation noise.

An EWMA estimator is included as well: the distributed protocol monitors
links over time, and EWMA over windowed PRR is the standard way deployed
collection stacks (e.g. CTP) track drifting link quality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


from repro.network.model import Network, edge_key
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_in_range, check_probability

__all__ = ["BeaconTraceEstimator", "EWMALinkEstimator", "LinkTrace"]


@dataclass(frozen=True)
class LinkTrace:
    """Raw beacon outcome counts for one link.

    Attributes:
        sent: Beacons transmitted over the link (N_s in Eq. 2).
        received: Beacons correctly received (N_r in Eq. 2).
    """

    sent: int
    received: int

    def __post_init__(self) -> None:
        if self.sent < 0 or self.received < 0:
            raise ValueError("beacon counts must be non-negative")
        if self.received > self.sent:
            raise ValueError(
                f"received ({self.received}) cannot exceed sent ({self.sent})"
            )

    @property
    def prr(self) -> float:
        """Estimated PRR; 0 sent beacons yields 0 (unknown link = unusable)."""
        return self.received / self.sent if self.sent else 0.0


class BeaconTraceEstimator:
    """Simulate the deployment's 1000-beacon link-estimation phase.

    Args:
        n_beacons: Beacon rounds each node broadcasts (paper: 1000).
        min_prr: Estimated links below this are dropped from the output
            network (a link that received no beacons cannot carry cost
            ``-log 0``); defaults to requiring at least one reception.
    """

    def __init__(self, n_beacons: int = 1000, min_prr: float = 1e-6) -> None:
        if n_beacons <= 0:
            raise ValueError(f"n_beacons must be positive, got {n_beacons}")
        check_probability(min_prr, "min_prr")
        self.n_beacons = n_beacons
        self.min_prr = min_prr

    def collect(
        self, ground_truth: Network, *, seed: SeedLike = None
    ) -> Dict[Tuple[int, int], LinkTrace]:
        """Run the beacon phase; return per-link reception counts."""
        rng = as_rng(seed)
        traces: Dict[Tuple[int, int], LinkTrace] = {}
        for edge in ground_truth.edges():
            received = int(rng.binomial(self.n_beacons, edge.prr))
            traces[edge.key] = LinkTrace(sent=self.n_beacons, received=received)
        return traces

    def estimate(self, ground_truth: Network, *, seed: SeedLike = None) -> Network:
        """Produce the *estimated* network the algorithms actually see.

        Structure (nodes, energies) is copied from the ground truth; each
        link's PRR is replaced by its beacon-derived estimate.  Links whose
        estimate falls below ``min_prr`` are dropped (their cost would be
        infinite).
        """
        traces = self.collect(ground_truth, seed=seed)
        est = Network(
            ground_truth.n,
            initial_energy=ground_truth.initial_energies,
            energy_model=ground_truth.energy_model,
            positions=(
                None
                if ground_truth.positions is None
                else ground_truth.positions.copy()
            ),
        )
        for (u, v), trace in traces.items():
            if trace.prr >= self.min_prr:
                est.add_link(u, v, trace.prr)
        return est


class EWMALinkEstimator:
    """Exponentially-weighted moving-average PRR tracker for dynamic links.

    Maintains one smoothed PRR per link from windowed reception reports:
    ``q <- (1 - alpha) * q + alpha * window_prr``.  The distributed protocol
    (Section VI) reacts when a tree link's smoothed estimate degrades or a
    non-tree link's improves; this class provides those signals.
    """

    def __init__(self, alpha: float = 0.2) -> None:
        check_in_range(alpha, "alpha", 0.0, 1.0, low_inclusive=False)
        self.alpha = alpha
        self._estimates: Dict[Tuple[int, int], float] = {}

    def seed_from_network(self, network: Network) -> None:
        """Initialise estimates from a network's current PRRs."""
        self._estimates = {e.key: e.prr for e in network.edges()}

    def estimate(self, u: int, v: int) -> Optional[float]:
        """Current smoothed PRR of ``{u, v}`` or None if never observed."""
        return self._estimates.get(edge_key(u, v))

    def observe(self, u: int, v: int, sent: int, received: int) -> float:
        """Fold one observation window into the estimate; return the update."""
        window = LinkTrace(sent=sent, received=received).prr
        key = edge_key(u, v)
        prev = self._estimates.get(key)
        new = window if prev is None else (1 - self.alpha) * prev + self.alpha * window
        self._estimates[key] = new
        return new

    def observe_window(
        self,
        ground_truth: Network,
        u: int,
        v: int,
        window_size: int,
        *,
        seed: SeedLike = None,
    ) -> float:
        """Simulate a *window_size*-beacon probe of a physical link and fold it in."""
        if window_size <= 0:
            raise ValueError(f"window_size must be positive, got {window_size}")
        rng = as_rng(seed)
        true_prr = ground_truth.prr(u, v)
        received = int(rng.binomial(window_size, true_prr))
        return self.observe(u, v, window_size, received)
