"""Time-varying link dynamics (Gilbert–Elliott bursty losses, drift).

The paper's distributed protocol exists because "the link quality might
change as time goes and the environment changes" (Section VI).  Its
evaluation models change as a fixed per-round cost increment; real links
misbehave in two richer ways this module provides:

* **Burstiness** — losses cluster.  The classic two-state Gilbert–Elliott
  chain (GOOD/BAD states with different delivery probabilities and
  geometric sojourn times) is the standard WSN abstraction; its long-run
  average still matches a PRR, but short windows swing hard, which is
  exactly what stresses windowed estimators like
  :class:`~repro.network.trace.EWMALinkEstimator`.
* **Drift** — the mean PRR itself wanders (humidity, interference,
  obstacles).  A clipped random walk on the PRR reproduces the slow
  degradation/improvement events the protocol reacts to.

:class:`DynamicLinkSimulator` composes the two per link over a network and
drives churn experiments that go beyond the paper's fixed-increment model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.network.model import Network, edge_key
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_probability

__all__ = ["GilbertElliottLink", "LinkDriftModel", "DynamicLinkSimulator"]


@dataclass
class GilbertElliottLink:
    """Two-state bursty loss process for one link.

    Attributes:
        p_good_to_bad: Per-step transition probability GOOD → BAD.
        p_bad_to_good: Per-step transition probability BAD → GOOD.
        prr_good: Delivery probability while in GOOD.
        prr_bad: Delivery probability while in BAD.
        in_good: Current state.
    """

    p_good_to_bad: float
    p_bad_to_good: float
    prr_good: float = 0.99
    prr_bad: float = 0.2
    in_good: bool = True

    def __post_init__(self) -> None:
        check_probability(self.p_good_to_bad, "p_good_to_bad")
        check_probability(self.p_bad_to_good, "p_bad_to_good")
        check_probability(self.prr_good, "prr_good")
        check_probability(self.prr_bad, "prr_bad")
        if self.prr_bad > self.prr_good:
            raise ValueError("prr_bad must not exceed prr_good")

    @classmethod
    def from_average(
        cls,
        average_prr: float,
        *,
        burst_length: float = 20.0,
        prr_good: float = 0.99,
        prr_bad: float = 0.2,
    ) -> "GilbertElliottLink":
        """Construct a chain whose stationary mean PRR equals *average_prr*.

        With stationary GOOD probability ``π``, the mean is
        ``π·prr_good + (1-π)·prr_bad``; solving for ``π`` and choosing the
        BAD sojourn to average *burst_length* steps fixes both transition
        rates.
        """
        check_probability(average_prr, "average_prr", allow_zero=False)
        if not (prr_bad <= average_prr <= prr_good):
            raise ValueError(
                f"average_prr must lie in [{prr_bad}, {prr_good}]"
            )
        if burst_length < 1:
            raise ValueError("burst_length must be >= 1 step")
        pi_good = (average_prr - prr_bad) / max(prr_good - prr_bad, 1e-12)
        p_bad_to_good = min(1.0 / burst_length, 1.0)
        # Stationarity: pi_good * g2b = (1 - pi_good) * b2g.
        if pi_good >= 1.0:
            p_good_to_bad = 0.0
        else:
            p_good_to_bad = (1 - pi_good) * p_bad_to_good / max(pi_good, 1e-12)
        return cls(
            p_good_to_bad=min(p_good_to_bad, 1.0),
            p_bad_to_good=p_bad_to_good,
            prr_good=prr_good,
            prr_bad=prr_bad,
        )

    @property
    def stationary_prr(self) -> float:
        """Long-run mean delivery probability of the chain."""
        denom = self.p_good_to_bad + self.p_bad_to_good
        if denom == 0:
            return self.prr_good if self.in_good else self.prr_bad
        pi_good = self.p_bad_to_good / denom
        return pi_good * self.prr_good + (1 - pi_good) * self.prr_bad

    @property
    def current_prr(self) -> float:
        return self.prr_good if self.in_good else self.prr_bad

    def step(self, rng: np.random.Generator) -> float:
        """Advance one step; returns the new instantaneous PRR."""
        if self.in_good:
            if rng.random() < self.p_good_to_bad:
                self.in_good = False
        else:
            if rng.random() < self.p_bad_to_good:
                self.in_good = True
        return self.current_prr

    def deliver(self, rng: np.random.Generator) -> bool:
        """Draw one delivery outcome in the current state."""
        return bool(rng.random() < self.current_prr)


@dataclass(frozen=True)
class LinkDriftModel:
    """Slow random walk of a link's mean PRR.

    Attributes:
        sigma: Per-step standard deviation of the PRR walk.
        floor, ceiling: Reflection bounds for the walk.
    """

    sigma: float = 0.002
    floor: float = 0.5
    ceiling: float = 0.999

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")
        check_probability(self.floor, "floor", allow_zero=False)
        check_probability(self.ceiling, "ceiling", allow_zero=False)
        if self.floor >= self.ceiling:
            raise ValueError("floor must be < ceiling")

    def step(self, prr: float, rng: np.random.Generator) -> float:
        """One drift step from *prr* (reflected into [floor, ceiling])."""
        value = prr + float(rng.normal(0.0, self.sigma))
        # Reflect at the bounds to avoid sticking.
        if value > self.ceiling:
            value = 2 * self.ceiling - value
        if value < self.floor:
            value = 2 * self.floor - value
        return float(np.clip(value, self.floor, self.ceiling))


class DynamicLinkSimulator:
    """Drive a network's PRRs through burst + drift dynamics.

    Wraps a :class:`~repro.network.model.Network` whose stored PRRs are
    treated as the links' *mean* quality: each :meth:`step` advances every
    link's drift walk and Gilbert–Elliott state and rewrites the network's
    PRRs with the current means, returning the set of links whose mean
    changed materially (the events a maintenance protocol would react to).

    Args:
        network: Mutated in place (pass a copy to preserve the original).
        drift: Mean-PRR drift model (None disables drift).
        burst_length: Mean BAD-state sojourn for the per-link chains
            (None disables burstiness; :meth:`deliver` then uses the mean).
        seed: Randomness for all dynamics.
    """

    def __init__(
        self,
        network: Network,
        *,
        drift: Optional[LinkDriftModel] = LinkDriftModel(),
        burst_length: Optional[float] = 20.0,
        change_threshold: float = 0.01,
        seed: SeedLike = None,
    ) -> None:
        if change_threshold <= 0:
            raise ValueError("change_threshold must be positive")
        self.network = network
        self.drift = drift
        self.change_threshold = change_threshold
        self.rng = as_rng(seed)
        self._mean: Dict[Tuple[int, int], float] = {
            e.key: e.prr for e in network.edges()
        }
        self._chains: Dict[Tuple[int, int], GilbertElliottLink] = {}
        if burst_length is not None:
            for key, prr in self._mean.items():
                # Chain states span [0.2, 0.99]; clamp the target into the
                # achievable band (links outside it keep the nearest mean).
                target = float(np.clip(prr, 0.21, 0.99))
                self._chains[key] = GilbertElliottLink.from_average(
                    target, burst_length=burst_length
                )

    def step(self) -> Dict[Tuple[int, int], float]:
        """Advance all links one step; returns materially-changed means."""
        changed: Dict[Tuple[int, int], float] = {}
        for key in list(self._mean):
            old = self._mean[key]
            new = old
            if self.drift is not None:
                new = self.drift.step(old, self.rng)
            chain = self._chains.get(key)
            if chain is not None:
                chain.step(self.rng)
            if abs(new - old) >= self.change_threshold:
                changed[key] = new
            self._mean[key] = new
            self.network.set_prr(key[0], key[1], new)
        return changed

    def deliver(self, u: int, v: int) -> bool:
        """One delivery draw over link ``{u, v}`` (bursty when enabled)."""
        key = edge_key(u, v)
        chain = self._chains.get(key)
        if chain is not None:
            return chain.deliver(self.rng)
        return bool(self.rng.random() < self._mean[key])

    def mean_prr(self, u: int, v: int) -> float:
        """Current mean PRR of ``{u, v}``."""
        return self._mean[edge_key(u, v)]
