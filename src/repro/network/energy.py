"""Energy model for TelosB-class sensor nodes.

Section III-B of the paper measures three radio states with a Monsoon
PowerMonitor (Fig. 3): sending ~80 mW, receiving/listening ~60 mW, idle
(radio off) ~80 µW.  The evaluation (Section VII) then uses per-packet
energies of ``Tx = 1.6e-4 J`` (send) and ``Rx = 1.2e-4 J`` (receive) and
batteries of 3000 J.

Because most energy goes to the radio, the paper estimates lifetime from
send/receive costs only:

    L(v) = I(v) / (Tx + Rx * Ch_T(v))        (Eq. 1)

where ``Ch_T(v)`` is v's number of children in the aggregation tree (each
round, a node receives one aggregated packet per child and sends one packet
to its parent).

This module holds those constants, the lifetime arithmetic, and a power-trace
synthesizer used to reproduce Fig. 3 (we do not have the PowerMonitor
captures; we synthesize traces around the measured averages).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_non_negative, check_positive

__all__ = [
    "EnergyModel",
    "TELOSB",
    "PowerTrace",
    "synthesize_power_trace",
]

#: Measured average power draw per radio state, in watts (paper Fig. 3).
SEND_POWER_W = 80e-3
RECV_POWER_W = 60e-3
IDLE_POWER_W = 80e-6

#: Per-packet energies used in the paper's evaluation (Section VII), joules.
DEFAULT_TX_J = 1.6e-4
DEFAULT_RX_J = 1.2e-4

#: Two AA batteries, as in the DFL deployment (Section VII).
DEFAULT_BATTERY_J = 3000.0


@dataclass(frozen=True)
class EnergyModel:
    """Per-packet energy model for lifetime estimation.

    Attributes:
        tx: Energy to send one packet, in joules.
        rx: Energy to receive one packet, in joules.
    """

    tx: float = DEFAULT_TX_J
    rx: float = DEFAULT_RX_J

    def __post_init__(self) -> None:
        check_positive(self.tx, "tx")
        check_positive(self.rx, "rx")

    def round_energy(self, n_children: int) -> float:
        """Energy one node spends in a single aggregation round.

        A node with ``n_children`` children receives one packet per child and
        sends one aggregated packet upward (the sink's "send" is kept for
        consistency with Eq. 1 of the paper).
        """
        if n_children < 0:
            raise ValueError(f"n_children must be non-negative, got {n_children}")
        return self.tx + self.rx * n_children

    def lifetime_rounds(self, initial_energy: float, n_children: int) -> float:
        """Eq. 1: number of aggregation rounds until the node dies."""
        check_non_negative(initial_energy, "initial_energy")
        return initial_energy / self.round_energy(n_children)

    def lifetime_rounds_with_idle(
        self,
        initial_energy: float,
        n_children: int,
        round_period_s: float,
        *,
        idle_power_w: float = IDLE_POWER_W,
    ) -> float:
        """Eq. 1 extended with idle drain between rounds.

        The paper drops the idle term because 80 µW is three orders below
        the active draw — which is valid only when rounds are frequent.
        Per round a node additionally idles for ``round_period_s`` seconds,
        costing ``idle_power_w * round_period_s`` joules; at the TelosB
        constants the idle term *overtakes* the per-packet energy once
        rounds are more than ~3.5 s apart (Tx + Rx = 2.8e-4 J vs 8e-5 J/s),
        so duty-cycle-aware deployments must use this form.
        """
        check_non_negative(initial_energy, "initial_energy")
        check_non_negative(round_period_s, "round_period_s")
        check_non_negative(idle_power_w, "idle_power_w")
        per_round = self.round_energy(n_children) + idle_power_w * round_period_s
        return initial_energy / per_round

    def max_children_for_lifetime(self, initial_energy: float, lifetime: float) -> float:
        """Invert Eq. 1: the (fractional) children bound implied by a lifetime.

        ``L(v) >= lifetime``  iff  ``Ch(v) <= (I(v)/lifetime - Tx) / Rx``.
        The result may be negative, meaning no tree placement of this node
        can meet the bound.
        """
        check_non_negative(initial_energy, "initial_energy")
        check_positive(lifetime, "lifetime")
        return (initial_energy / lifetime - self.tx) / self.rx


#: The model used throughout the paper's evaluation.
TELOSB = EnergyModel(tx=DEFAULT_TX_J, rx=DEFAULT_RX_J)


@dataclass(frozen=True)
class PowerTrace:
    """A synthesized power-vs-time trace for one radio state (Fig. 3 stand-in).

    Attributes:
        state: One of ``"send"``, ``"recv"``, ``"idle"``.
        times_s: Sample timestamps in seconds.
        power_w: Instantaneous power draw in watts.
    """

    state: str
    times_s: np.ndarray
    power_w: np.ndarray

    @property
    def mean_power_w(self) -> float:
        """Average power over the trace."""
        return float(np.mean(self.power_w))

    @property
    def energy_j(self) -> float:
        """Total energy of the trace (trapezoidal integral of power)."""
        return float(np.trapezoid(self.power_w, self.times_s))


_STATE_BASE_POWER = {
    "send": SEND_POWER_W,
    "recv": RECV_POWER_W,
    "idle": IDLE_POWER_W,
}

# Relative burst amplitude per state: radio activity makes send/recv traces
# spiky (packet bursts over a listening floor) while idle is nearly flat.
_STATE_BURST_FRACTION = {"send": 0.35, "recv": 0.25, "idle": 0.05}


def synthesize_power_trace(
    state: str,
    *,
    duration_s: float = 10.0,
    sample_hz: float = 1000.0,
    seed: SeedLike = None,
) -> PowerTrace:
    """Synthesize a PowerMonitor-like trace whose mean matches Fig. 3.

    The paper measured real TelosB nodes; we do not have that hardware, so
    the Fig. 3 reproduction draws a square-wave packet-burst pattern plus
    measurement noise around the published per-state averages.  Only the
    *averages* feed the algorithms (via :class:`EnergyModel`); the trace is
    for the figure reproduction.
    """
    if state not in _STATE_BASE_POWER:
        raise ValueError(
            f"state must be one of {sorted(_STATE_BASE_POWER)}, got {state!r}"
        )
    check_positive(duration_s, "duration_s")
    check_positive(sample_hz, "sample_hz")
    rng = as_rng(seed)
    base = _STATE_BASE_POWER[state]
    burst = _STATE_BURST_FRACTION[state]

    n = max(2, int(duration_s * sample_hz))
    times = np.linspace(0.0, duration_s, n)
    # Packet bursts: ~50 packets/s with ~4 ms on-air time each.
    burst_wave = (np.sin(2 * np.pi * 50.0 * times) > 0.6).astype(float)
    power = base * (1.0 - burst + 2.0 * burst * burst_wave)
    power += rng.normal(0.0, 0.02 * base, size=n)  # measurement noise
    np.clip(power, 0.0, None, out=power)
    # Re-center so the empirical mean matches the published average exactly.
    power *= base / max(float(np.mean(power)), 1e-12)
    return PowerTrace(state=state, times_s=times, power_w=power)
