"""Shared low-level utilities used across the :mod:`repro` package.

The submodules here are dependency-free substrates:

* :mod:`repro.utils.rng` — deterministic random-number-generator plumbing.
* :mod:`repro.utils.unionfind` — disjoint-set forest used by tree builders.
* :mod:`repro.utils.maxflow` — Dinic maximum-flow / minimum-cut solver used
  by the subtour-elimination separation oracle.
* :mod:`repro.utils.validation` — argument checking helpers with consistent
  error messages.
* :mod:`repro.utils.tables` — plain-text table rendering for the experiment
  harness output.
"""

from repro.utils.ascii_chart import bar_chart, line_chart
from repro.utils.gomoryhu import GomoryHuTree, build_gomory_hu_tree
from repro.utils.maxflow import DinicMaxFlow, MaxFlowResult
from repro.utils.rng import SeedLike, as_rng, spawn_rngs, stable_hash_seed
from repro.utils.tables import format_table
from repro.utils.unionfind import UnionFind
from repro.utils.validation import (
    approx_eq,
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "DinicMaxFlow",
    "GomoryHuTree",
    "MaxFlowResult",
    "SeedLike",
    "UnionFind",
    "approx_eq",
    "as_rng",
    "bar_chart",
    "line_chart",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "build_gomory_hu_tree",
    "format_table",
    "spawn_rngs",
    "stable_hash_seed",
]
