"""Gomory–Hu trees: all-pairs minimum cuts from n-1 max-flow calls.

A Gomory–Hu tree of a capacitated undirected graph is a weighted tree on
the same vertices such that, for every pair ``(u, v)``, the minimum u-v cut
value equals the smallest edge weight on the tree path between them — and
the corresponding tree edge's removal induces a minimum cut.

Provided as an optimisation substrate for cut-heavy workloads (the subtour
separation oracle probes many roots against the same fractional point; a
Gomory–Hu tree answers *all* pairwise cut queries after ``n - 1`` flows).
The default oracle keeps the direct Padberg–Wolsey probing — at n = 16 the
difference is noise — but the structure is exposed, tested against
networkx, and used by the analysis tooling.

Implementation: Gusfield's simplification of the Gomory–Hu construction
(no vertex contraction needed), on top of the same Dinic solver the
separation oracle uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.utils.maxflow import DinicMaxFlow

__all__ = ["GomoryHuTree", "build_gomory_hu_tree"]


@dataclass(frozen=True)
class GomoryHuTree:
    """The cut-equivalent tree.

    Attributes:
        n: Vertex count.
        parent: ``parent[v]`` for every vertex except vertex 0 (the root).
        weight: ``weight[v]`` = min-cut value between ``v`` and its parent.
    """

    n: int
    parent: Tuple[int, ...]
    weight: Tuple[float, ...]

    def min_cut_value(self, u: int, v: int) -> float:
        """Minimum u-v cut value (smallest weight on the tree path)."""
        if u == v:
            raise ValueError("min cut requires two distinct vertices")
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError(f"vertices ({u}, {v}) out of range")
        # Walk both vertices to the root, tracking path minima.
        def path_to_root(x: int) -> List[int]:
            path = [x]
            while path[-1] != 0:
                path.append(self.parent[path[-1]])
            return path

        pu, pv = path_to_root(u), path_to_root(v)
        set_u = set(pu)
        # Lowest common ancestor = first vertex of pv also on pu.
        lca = next(x for x in pv if x in set_u)
        best = float("inf")
        for x in pu:
            if x == lca:
                break
            best = min(best, self.weight[x])
        for x in pv:
            if x == lca:
                break
            best = min(best, self.weight[x])
        return best

    def edges(self) -> List[Tuple[int, int, float]]:
        """Tree edges as (child, parent, weight)."""
        return [
            (v, self.parent[v], self.weight[v]) for v in range(1, self.n)
        ]


def build_gomory_hu_tree(
    n: int, edges: Sequence[Tuple[int, int, float]]
) -> GomoryHuTree:
    """Gusfield's algorithm over an undirected capacitated edge list.

    Args:
        n: Vertex count (ids ``0..n-1``).
        edges: ``(u, v, capacity)`` triples; parallel edges add up.

    ``n - 1`` max-flow computations; vertices in components disconnected
    from vertex 0 end up joined by weight-0 tree edges, which is exactly
    their true min cut.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    for u, v, cap in edges:
        if not (0 <= u < n and 0 <= v < n):
            raise ValueError(f"edge ({u}, {v}) out of range")
        if cap < 0:
            raise ValueError(f"negative capacity on ({u}, {v})")

    parent = [0] * n
    weight = [0.0] * n
    for v in range(1, n):
        net = DinicMaxFlow(max(n, 2))
        for a, b, cap in edges:
            if a != b:
                net.add_edge(a, b, cap, cap)
        result = net.solve(v, parent[v])
        weight[v] = result.flow_value
        source_side = result.source_side
        for w in range(v + 1, n):
            # Gusfield re-hang: later vertices on v's side that currently
            # hang off the same parent move under v.
            if w in source_side and parent[w] == parent[v]:
                parent[w] = v
    return GomoryHuTree(n=n, parent=tuple(parent), weight=tuple(weight))
