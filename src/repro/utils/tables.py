"""Plain-text table rendering for the experiment harness.

The benchmarks and CLI print the same rows/series the paper's figures report;
this module renders them as aligned monospace tables so the output is
readable in a terminal and diff-friendly in committed experiment logs.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence

__all__ = ["format_table", "format_series"]


def _cell(value: Any, float_fmt: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    float_fmt: str = ".4g",
    title: Optional[str] = None,
) -> str:
    """Render *rows* under *headers* as an aligned monospace table.

    Floats are formatted with *float_fmt*; all other values via ``str``.
    Raises ``ValueError`` if any row length disagrees with the header.
    """
    str_rows: List[List[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {len(headers)}"
            )
        str_rows.append([_cell(v, float_fmt) for v in row])

    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_line(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_line(row) for row in str_rows)
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[Any], ys: Sequence[Any], *, float_fmt: str = ".4g"
) -> str:
    """Render a single (x, y) series, as used for figure curves."""
    if len(xs) != len(ys):
        raise ValueError(f"series {name!r}: {len(xs)} x values vs {len(ys)} y values")
    return format_table(["x", name], zip(xs, ys), float_fmt=float_fmt)
