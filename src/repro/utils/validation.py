"""Argument-validation helpers with consistent error messages.

These are used at public API boundaries so that misuse fails fast with a
message naming the offending parameter, rather than propagating NaNs or
index errors deep into the LP solver or the simulators.
"""

from __future__ import annotations

import math
from typing import Union

Number = Union[int, float]

__all__ = [
    "approx_eq",
    "check_finite",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_probability",
]


def approx_eq(
    a: Number,
    b: Number,
    *,
    rel_tol: float = 1e-9,
    abs_tol: float = 1e-12,
) -> bool:
    """Tolerance equality for accumulated float quantities.

    Tree cost, reliability, and lifetime are sums/products of many float
    terms (and the engine maintains them incrementally), so bitwise ``==``
    on them is path-dependent; ``repro lint`` rule REP103 bans it and points
    here.  The defaults absorb ulp-level drift while still distinguishing
    any two genuinely different trees of practical size.
    """
    return math.isclose(float(a), float(b), rel_tol=rel_tol, abs_tol=abs_tol)


def check_finite(value: Number, name: str) -> float:
    """Require *value* to be a finite real number; return it as float."""
    try:
        val = float(value)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be a real number, got {value!r}") from exc
    if math.isnan(val) or math.isinf(val):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return val


def check_positive(value: Number, name: str) -> float:
    """Require ``value > 0``; return it as float."""
    val = check_finite(value, name)
    if val <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return val


def check_non_negative(value: Number, name: str) -> float:
    """Require ``value >= 0``; return it as float."""
    val = check_finite(value, name)
    if val < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return val


def check_probability(value: Number, name: str, *, allow_zero: bool = True) -> float:
    """Require *value* in ``[0, 1]`` (or ``(0, 1]``); return it as float."""
    val = check_finite(value, name)
    low_ok = val >= 0 if allow_zero else val > 0
    if not (low_ok and val <= 1):
        interval = "[0, 1]" if allow_zero else "(0, 1]"
        raise ValueError(f"{name} must be in {interval}, got {value!r}")
    return val


def check_in_range(
    value: Number,
    name: str,
    low: Number,
    high: Number,
    *,
    low_inclusive: bool = True,
    high_inclusive: bool = True,
) -> float:
    """Require *value* in the given interval; return it as float."""
    val = check_finite(value, name)
    low_ok = val >= low if low_inclusive else val > low
    high_ok = val <= high if high_inclusive else val < high
    if not (low_ok and high_ok):
        lo_b = "[" if low_inclusive else "("
        hi_b = "]" if high_inclusive else ")"
        raise ValueError(f"{name} must be in {lo_b}{low}, {high}{hi_b}, got {value!r}")
    return val
