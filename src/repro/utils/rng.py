"""Deterministic random-number-generator plumbing.

Every stochastic entry point in the library accepts a ``seed`` argument that
may be ``None``, an integer, or an already-constructed
:class:`numpy.random.Generator`.  Centralising the coercion here keeps the
behaviour uniform: experiments are reproducible when given an integer seed and
independent streams can be derived for sub-components without correlated
draws.

This is the only module allowed to construct generators directly; everywhere
else, ``repro lint`` (rule REP101) bans bare ``random``/``np.random`` usage.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

SeedLike = Union[None, int, np.integer, np.random.Generator, np.random.SeedSequence]

__all__ = ["SeedLike", "as_rng", "spawn_rngs", "stable_hash_seed"]

#: Exclusive upper bound for seed material drawn when deriving child streams.
_SEED_BOUND = 2**63 - 1


def _check_seed_int(seed: Union[int, np.integer]) -> int:
    if seed < 0:
        raise ValueError(f"seed must be non-negative, got {seed}")
    return int(seed)


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce *seed* into a :class:`numpy.random.Generator`.

    ``None`` yields a freshly-seeded generator, an ``int`` or
    :class:`numpy.random.SeedSequence` yields a deterministic generator, and
    an existing generator is passed through unchanged (so callers can share a
    stream).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(_check_seed_int(seed))
    raise TypeError(
        "seed must be None, an int, a numpy Generator, or a SeedSequence; "
        f"got {type(seed).__name__}"
    )


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Derive *count* statistically independent generators from *seed*.

    Used by experiment sweeps that run many trials in a loop: each trial gets
    its own stream so that changing the number of trials does not perturb the
    draws of earlier trials.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children by drawing fresh seed material from the stream.
        return [
            np.random.default_rng(int(seed.integers(0, _SEED_BOUND)))
            for _ in range(count)
        ]
    if isinstance(seed, np.random.SeedSequence):
        seq = seed
    elif seed is None:
        seq = np.random.SeedSequence()
    elif isinstance(seed, (int, np.integer)):
        # Validate here for the same clear message as as_rng, instead of
        # numpy's opaque "entropy must be a non-negative integer" error.
        seq = np.random.SeedSequence(_check_seed_int(seed))
    else:
        raise TypeError(
            "seed must be None, an int, a numpy Generator, or a SeedSequence; "
            f"got {type(seed).__name__}"
        )
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def stable_hash_seed(*parts: Union[int, str]) -> int:
    """Map a tuple of labels to a stable 63-bit seed.

    Lets experiments key their randomness on semantic identifiers (figure id,
    trial index, parameter value) instead of positional order, so adding a new
    sweep point never changes the seeds of existing points.
    """
    acc = 1469598103934665603  # FNV-1a 64-bit offset basis
    for part in parts:
        data = str(part).encode("utf-8") + b"\x1f"
        for byte in data:
            acc ^= byte
            acc = (acc * 1099511628211) % (1 << 64)
    return acc % (1 << 63)
