"""Disjoint-set forest (union-find) with union by rank and path compression.

Used by the spanning-tree builders (Kruskal-style construction, cycle checks
on candidate edge sets) and by validation code that needs to confirm a set of
edges is acyclic / spanning.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Set

__all__ = ["UnionFind"]


class UnionFind:
    """Disjoint-set forest over arbitrary hashable elements.

    Elements are added lazily on first touch (via :meth:`add`,
    :meth:`find`, or :meth:`union`), so callers do not need to pre-register
    the ground set.
    """

    def __init__(self, elements: Iterable[Hashable] = ()) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._rank: Dict[Hashable, int] = {}
        self._count = 0  # number of disjoint sets
        for element in elements:
            self.add(element)

    def __len__(self) -> int:
        """Number of elements registered in the structure."""
        return len(self._parent)

    def __contains__(self, element: Hashable) -> bool:
        return element in self._parent

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._parent)

    @property
    def n_sets(self) -> int:
        """Number of disjoint sets currently tracked."""
        return self._count

    def add(self, element: Hashable) -> None:
        """Register *element* as a singleton set if not already present."""
        if element not in self._parent:
            self._parent[element] = element
            self._rank[element] = 0
            self._count += 1

    def find(self, element: Hashable) -> Hashable:
        """Return the canonical representative of *element*'s set."""
        self.add(element)
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression: point every node on the path directly at the root.
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge the sets containing *a* and *b*.

        Returns ``True`` if a merge happened, ``False`` if they were already
        in the same set (i.e. adding edge ``(a, b)`` would close a cycle).
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        self._count -= 1
        return True

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """Whether *a* and *b* are currently in the same set."""
        return self.find(a) == self.find(b)

    def sets(self) -> List[Set[Hashable]]:
        """Materialise the current partition as a list of sets."""
        groups: Dict[Hashable, Set[Hashable]] = {}
        for element in self._parent:
            groups.setdefault(self.find(element), set()).add(element)
        return list(groups.values())
