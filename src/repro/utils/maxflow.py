"""Dinic maximum-flow / minimum-cut solver on dense small graphs.

The subtour-elimination separation oracle (:mod:`repro.core.separation`)
reduces "find a violated subtour constraint" to a handful of s-t minimum-cut
computations (Padberg & Wolsey, 1983).  The graphs involved are tiny (tens of
nodes) but the oracle is called inside the IRA cutting-plane loop, so the
implementation below keeps allocation out of the hot path by storing the
residual network in flat adjacency arrays.

The implementation is self-contained (no networkx dependency); the test suite
cross-validates it against :func:`networkx.maximum_flow` on random graphs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

__all__ = ["DinicMaxFlow", "MaxFlowResult"]

_EPS = 1e-12


@dataclass
class MaxFlowResult:
    """Outcome of a max-flow computation.

    Attributes:
        flow_value: Value of the maximum s-t flow (== capacity of the min cut).
        source_side: Set of vertices reachable from the source in the final
            residual network; this is the source side of a minimum cut.
        flows: Mapping ``(u, v) -> flow`` for every directed arc that carries
            positive flow.
    """

    flow_value: float
    source_side: Set[int]
    flows: Dict[Tuple[int, int], float] = field(default_factory=dict)


class DinicMaxFlow:
    """Incremental builder for a flow network solved with Dinic's algorithm.

    Typical usage::

        net = DinicMaxFlow(n_vertices)
        net.add_edge(u, v, capacity)            # directed arc
        net.add_edge(u, v, cap, cap)            # undirected (equal both ways)
        result = net.solve(source, sink)

    A solved instance can be re-solved after :meth:`reset_flow` (capacities
    are retained), which the separation oracle uses when probing several
    source choices over the same base network.
    """

    def __init__(self, n_vertices: int) -> None:
        if n_vertices < 2:
            raise ValueError(f"need at least 2 vertices, got {n_vertices}")
        self.n = n_vertices
        # Arc-list representation: arc i and its reverse arc i^1 are paired.
        self._to: List[int] = []
        self._cap: List[float] = []
        self._initial_cap: List[float] = []
        self._head: List[List[int]] = [[] for _ in range(n_vertices)]

    def add_edge(self, u: int, v: int, cap: float, rev_cap: float = 0.0) -> int:
        """Add a directed arc ``u -> v`` with capacity *cap*.

        *rev_cap* sets the capacity of the paired reverse arc, making the
        edge effectively undirected when ``rev_cap == cap``.  Returns the
        forward arc's index (usable with :meth:`set_capacity`); self-loops
        return ``-1``.
        """
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError(f"edge ({u}, {v}) out of range for {self.n} vertices")
        if cap < 0 or rev_cap < 0:
            raise ValueError(f"capacities must be non-negative, got {cap}, {rev_cap}")
        if u == v:
            return -1  # self-loops carry no flow
        arc = len(self._to)
        self._head[u].append(arc)
        self._to.append(v)
        self._cap.append(cap)
        self._head[v].append(len(self._to))
        self._to.append(u)
        self._cap.append(rev_cap)
        self._initial_cap.extend((cap, rev_cap))
        return arc

    def set_capacity(self, arc: int, cap: float) -> None:
        """Change one arc's capacity (both current and initial).

        Lets callers reuse one network across solves that differ in a few
        arcs (the separation oracle switches a per-root source arc):
        ``set_capacity`` + :meth:`reset_flow` re-arms the instance.
        """
        if not (0 <= arc < len(self._cap)):
            raise ValueError(f"arc index {arc} out of range")
        if cap < 0:
            raise ValueError(f"capacity must be non-negative, got {cap}")
        self._cap[arc] = cap
        self._initial_cap[arc] = cap

    def reset_flow(self) -> None:
        """Restore all capacities to their initial values (undo the flow)."""
        self._cap = list(self._initial_cap)

    def _bfs_levels(self, s: int, t: int) -> List[int]:
        level = [-1] * self.n
        level[s] = 0
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for arc in self._head[u]:
                v = self._to[arc]
                if level[v] < 0 and self._cap[arc] > _EPS:
                    level[v] = level[u] + 1
                    queue.append(v)
        return level

    def _dfs_augment(
        self, u: int, t: int, pushed: float, level: List[int], it: List[int]
    ) -> float:
        if u == t:
            return pushed
        while it[u] < len(self._head[u]):
            arc = self._head[u][it[u]]
            v = self._to[arc]
            if self._cap[arc] > _EPS and level[v] == level[u] + 1:
                found = self._dfs_augment(
                    v, t, min(pushed, self._cap[arc]), level, it
                )
                if found > _EPS:
                    self._cap[arc] -= found
                    self._cap[arc ^ 1] += found
                    return found
            it[u] += 1
        return 0.0

    def solve(
        self, source: int, sink: int, *, cutoff: Optional[float] = None
    ) -> MaxFlowResult:
        """Compute the maximum flow from *source* to *sink*.

        With *cutoff*, augmentation stops as soon as the flow reaches it —
        callers that only need to know whether the min cut is *below* the
        cutoff (the separation oracle's violation test) save the remaining
        work.  A cutoff-terminated result reports the flow found so far;
        its ``source_side`` is still the residual-reachable set, which is a
        valid minimum cut only when the run was not cut off.
        """
        if source == sink:
            raise ValueError("source and sink must differ")
        total = 0.0
        while cutoff is None or total < cutoff:
            level = self._bfs_levels(source, sink)
            if level[sink] < 0:
                break
            it = [0] * self.n
            while cutoff is None or total < cutoff:
                pushed = self._dfs_augment(source, sink, float("inf"), level, it)
                if pushed <= _EPS:
                    break
                total += pushed
        source_side = self._residual_reachable(source)
        flows: Dict[Tuple[int, int], float] = {}
        for u in range(self.n):
            for arc in self._head[u]:
                used = self._initial_cap[arc] - self._cap[arc]
                if used > _EPS:
                    flows[(u, self._to[arc])] = flows.get((u, self._to[arc]), 0.0) + used
        return MaxFlowResult(flow_value=total, source_side=source_side, flows=flows)

    def _residual_reachable(self, s: int) -> Set[int]:
        seen = {s}
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for arc in self._head[u]:
                v = self._to[arc]
                if v not in seen and self._cap[arc] > _EPS:
                    seen.add(v)
                    queue.append(v)
        return seen


def min_cut_value(
    n: int, edges: List[Tuple[int, int, float]], source: int, sink: int
) -> float:
    """Convenience wrapper: min s-t cut value of an undirected capacitated graph."""
    net = DinicMaxFlow(n)
    for u, v, cap in edges:
        net.add_edge(u, v, cap, cap)
    return net.solve(source, sink).flow_value
