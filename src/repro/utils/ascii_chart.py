"""Terminal charts for the experiment harness (bars and line series).

The figures of the paper are bar charts (Fig. 7) and line plots (the rest);
rendering them as unicode text keeps the harness dependency-free while
making `mrlc --chart` output directly comparable to the published figures.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["bar_chart", "histogram_summary", "line_chart"]

_BLOCKS = " ▏▎▍▌▋▊▉█"
_MARKERS = "ox+*#@%&"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 50,
    title: Optional[str] = None,
    value_fmt: str = ".4g",
) -> str:
    """Horizontal bar chart (one row per label), scaled to *width* cells."""
    if len(labels) != len(values):
        raise ValueError(f"{len(labels)} labels but {len(values)} values")
    if not labels:
        raise ValueError("nothing to plot")
    if width < 5:
        raise ValueError("width must be at least 5")
    peak = max(max(values), 0.0)
    label_width = max(len(str(lab)) for lab in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        if value < 0:
            raise ValueError(f"bar values must be non-negative, got {value}")
        if peak == 0:
            filled, remainder = 0, 0
        else:
            cells = value / peak * width
            filled = int(cells)
            remainder = int((cells - filled) * (len(_BLOCKS) - 1))
        bar = "█" * filled + (_BLOCKS[remainder] if remainder else "")
        lines.append(
            f"{str(label).ljust(label_width)} |{bar.ljust(width)}| "
            f"{format(value, value_fmt)}"
        )
    return "\n".join(lines)


def histogram_summary(
    values: Sequence[float],
    *,
    bins: int = 8,
    width: int = 40,
    title: Optional[str] = None,
    value_fmt: str = ".4g",
) -> str:
    """Binned bar rendering of a distribution with p50/p90/max markers.

    One row per bin (``lo..hi |bar| count``); the rows containing the
    median, the 90th percentile, and the maximum are flagged in a right
    gutter so ``repro obs`` metric output is scannable in a terminal.
    A degenerate distribution (all observations equal) collapses to a
    single-row summary.
    """
    if not values:
        raise ValueError("nothing to summarize")
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    ordered = sorted(float(v) for v in values)
    n = len(ordered)

    def rank(p: float) -> float:
        return ordered[max(0, min(n - 1, round(p / 100.0 * (n - 1))))]

    p50, p90, peak = rank(50), rank(90), ordered[-1]
    stats_line = (
        f"count={n}  p50={format(p50, value_fmt)}  "
        f"p90={format(p90, value_fmt)}  max={format(peak, value_fmt)}"
    )
    lines = [title] if title else []
    lines.append(stats_line)

    lo, hi = ordered[0], ordered[-1]
    if lo == hi:
        lines.append(f"{format(lo, value_fmt)} |{'█' * width}| {n}")
        return "\n".join(lines)

    span = hi - lo
    counts = [0] * bins
    for v in ordered:
        idx = min(bins - 1, int((v - lo) / span * bins))
        counts[idx] += 1
    edges = [lo + span * i / bins for i in range(bins + 1)]

    def bin_of(value: float) -> int:
        return min(bins - 1, int((value - lo) / span * bins))

    markers: Dict[int, List[str]] = {}
    for label, value in (("p50", p50), ("p90", p90), ("max", peak)):
        markers.setdefault(bin_of(value), []).append(label)

    labels = [
        f"{format(edges[i], value_fmt)}..{format(edges[i + 1], value_fmt)}"
        for i in range(bins)
    ]
    label_width = max(len(lab) for lab in labels)
    tallest = max(counts)
    for i, count in enumerate(counts):
        cells = count / tallest * width
        filled = int(cells)
        remainder = int((cells - filled) * (len(_BLOCKS) - 1))
        bar = "█" * filled + (_BLOCKS[remainder] if remainder else "")
        gutter = "  ◄" + ",".join(markers[i]) if i in markers else ""
        lines.append(
            f"{labels[i].ljust(label_width)} |{bar.ljust(width)}| {count}{gutter}"
        )
    return "\n".join(lines)


def line_chart(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    *,
    width: int = 64,
    height: int = 16,
    title: Optional[str] = None,
) -> str:
    """Multi-series scatter/line plot on a character grid.

    Args:
        series: Mapping ``name -> (xs, ys)``; all series share the axes.
        width, height: Plot area size in characters.
        title: Optional heading line.

    Each series gets a distinct marker; a legend and the axis ranges are
    appended below the grid.
    """
    if not series:
        raise ValueError("nothing to plot")
    if width < 8 or height < 4:
        raise ValueError("plot area too small")
    all_x: List[float] = []
    all_y: List[float] = []
    for name, (xs, ys) in series.items():
        if len(xs) != len(ys):
            raise ValueError(f"series {name!r}: length mismatch")
        if not xs:
            raise ValueError(f"series {name!r} is empty")
        all_x.extend(float(x) for x in xs)
        all_y.extend(float(y) for y in ys)
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = min(all_y), max(all_y)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for idx, (name, (xs, ys)) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        legend.append(f"{marker} {name}")
        for x, y in zip(xs, ys):
            col = int((float(x) - x_lo) / x_span * (width - 1))
            row = int((float(y) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = [title] if title else []
    lines.append(f"y_max = {y_hi:.4g}")
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append(f"y_min = {y_lo:.4g}")
    lines.append(f"x: {x_lo:.4g} .. {x_hi:.4g}    legend: " + "   ".join(legend))
    return "\n".join(lines)
