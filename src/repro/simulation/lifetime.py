"""Run-to-death lifetime simulation.

"The network lifetime is defined as the total number of data aggregation
rounds until the first node depletes all its energy" (Section VII).  This
module executes rounds with full energy accounting until a node dies and
reports the measured lifetime — the behavioural counterpart of the closed
form Eq. 1, used to validate that ``AggregationTree.lifetime()`` predicts
what actually happens.

Because lifetimes run to millions of rounds, :func:`simulate_lifetime` also
offers the exact *analytic* fast path (energy drain per round is
deterministic under the paper's model — losses cost the same energy as
successes), with the round-by-round engine retained for validation at small
scale and for future stochastic energy models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.tree import AggregationTree
from repro.simulation.rounds import AggregationSimulator, EnergyLedger
from repro.utils.rng import SeedLike

__all__ = ["LifetimeResult", "simulate_lifetime", "analytic_lifetime_rounds"]


@dataclass(frozen=True)
class LifetimeResult:
    """Outcome of a run-to-death simulation.

    Attributes:
        rounds: Completed aggregation rounds before the first death.
        first_dead: The node that depleted its battery.
        predicted_rounds: Eq. 1's closed-form prediction ``floor(L(T))``.
    """

    rounds: int
    first_dead: int
    predicted_rounds: int


def analytic_lifetime_rounds(tree: AggregationTree) -> int:
    """Whole rounds until first death under deterministic per-round drain."""
    return int(math.floor(tree.lifetime()))


def simulate_lifetime(
    tree: AggregationTree,
    *,
    max_rounds: Optional[int] = None,
    seed: SeedLike = None,
) -> LifetimeResult:
    """Run aggregation rounds with energy accounting until a node dies.

    Args:
        tree: The aggregation tree to exhaust.
        max_rounds: Execute at most this many rounds with the stochastic
            round engine; beyond it (or when ``None``) the remaining rounds
            are advanced analytically — per-round energy drain is
            deterministic under the paper's model, so the result is exact
            either way.
        seed: Randomness for the executed rounds' loss draws.
    """
    net = tree.network
    model = net.energy_model
    ledger = EnergyLedger.for_tree(tree)
    per_round = np.array(
        [model.round_energy(tree.n_children(v)) for v in range(tree.n)]
    )

    executed = 0
    budget = 0 if max_rounds is None else max_rounds
    if budget > 0:
        simulator = AggregationSimulator(tree, seed=seed)
        while executed < budget:
            if np.any(ledger.remaining - per_round < 0):
                break  # next round would kill a node
            simulator.run_round(ledger)
            executed += 1

    # Advance the remaining lifetime analytically (drain is deterministic).
    with np.errstate(divide="ignore"):
        remaining_rounds = np.floor(ledger.remaining / per_round)
    extra = int(np.min(remaining_rounds))
    total = executed + max(extra, 0)
    first_dead = int(np.argmin(remaining_rounds))
    return LifetimeResult(
        rounds=total,
        first_dead=first_dead,
        predicted_rounds=analytic_lifetime_rounds(tree),
    )
