"""Behavioural simulators for the paper's data-collection regimes.

* :mod:`repro.simulation.rounds` — no-ACK aggregation rounds with Bernoulli
  losses and energy accounting (validates ``Q(T)`` empirically).
* :mod:`repro.simulation.lifetime` — run-to-death lifetime measurement
  (validates Eq. 1).
* :mod:`repro.simulation.retransmission` — retransmit-until-success packet
  counting (the Fig. 1 motivation regime).
* :mod:`repro.simulation.events` — discrete-event kernel and the slotted
  TDMA collection schedule (per-round latency accounting; extension).
"""

from repro.simulation.events import EventQueue, RoundTiming, TDMACollectionSimulator
from repro.simulation.lifetime import (
    LifetimeResult,
    analytic_lifetime_rounds,
    simulate_lifetime,
)
from repro.simulation.retransmission import (
    RetransmissionRound,
    average_packets,
    expected_packets_per_round,
    simulate_retransmission_round,
)
from repro.simulation.rounds import AggregationSimulator, EnergyLedger, RoundOutcome

__all__ = [
    "AggregationSimulator",
    "EnergyLedger",
    "EventQueue",
    "LifetimeResult",
    "RetransmissionRound",
    "RoundOutcome",
    "RoundTiming",
    "TDMACollectionSimulator",
    "analytic_lifetime_rounds",
    "average_packets",
    "expected_packets_per_round",
    "simulate_lifetime",
    "simulate_retransmission_round",
]
