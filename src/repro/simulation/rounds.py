"""Round-based data aggregation simulation with Bernoulli link losses.

Models the paper's data-collection regime (Section III-B): in each round
every node aggregates its children's packets with its own reading and sends
one packet to its parent; there are no retransmissions or ACKs, so a round
delivers *complete* data to the sink iff every link succeeds — which happens
with probability ``Q(T)``.

The simulator tracks, per round:

* which nodes' readings reached the sink (a lost packet drops the entire
  subtree's aggregate for that round);
* energy spent (Tx per send, Rx per packet received — receivers pay for
  reception even when the decode fails, matching radio behaviour);
* whether the round was *complete* (all readings arrived).

This is the measurement harness behind the reliability validations: the
empirical complete-round frequency must converge to ``Q(T)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

import numpy as np

from repro.core.tree import AggregationTree
from repro.obs import OBS
from repro.utils.rng import SeedLike, as_rng

__all__ = ["RoundOutcome", "AggregationSimulator"]


@dataclass(frozen=True)
class RoundOutcome:
    """Result of one simulated aggregation round.

    Attributes:
        delivered: Node ids whose readings reached the sink.
        complete: Whether every node's reading arrived (the paper's
            success criterion behind ``Q(T)``).
        transmissions: Packets sent (one per non-sink node).
        losses: Tree links whose packet was lost this round.
        delivery_ratio: Fraction of readings that reached the sink.
    """

    delivered: frozenset
    complete: bool
    transmissions: int
    losses: tuple
    delivery_ratio: float


@dataclass
class EnergyLedger:
    """Per-node remaining energy, debited as rounds execute."""

    remaining: np.ndarray

    @classmethod
    def for_tree(cls, tree: AggregationTree) -> "EnergyLedger":
        return cls(remaining=tree.network.initial_energies)

    def alive(self) -> bool:
        return bool(np.all(self.remaining > 0))

    def first_dead(self) -> Optional[int]:
        dead = np.nonzero(self.remaining <= 0)[0]
        return int(dead[0]) if len(dead) else None


class AggregationSimulator:
    """Simulate no-ACK aggregation rounds over a fixed tree.

    Args:
        tree: The aggregation tree to exercise.
        seed: Randomness for per-link Bernoulli loss draws.
    """

    def __init__(self, tree: AggregationTree, *, seed: SeedLike = None) -> None:
        self.tree = tree
        self.rng = as_rng(seed)
        # Bottom-up schedule: children transmit before their parents.
        self._postorder = tree.postorder()

    def run_round(
        self, ledger: Optional[EnergyLedger] = None
    ) -> RoundOutcome:
        """Execute one aggregation round.

        With a *ledger*, per-packet energy is debited (Tx for each sender,
        Rx at the parent for each child packet — whether or not it decoded).
        """
        tree = self.tree
        net = tree.network
        model = net.energy_model
        # delivered_below[v]: readings aggregated at v so far this round.
        delivered_below: Dict[int, Set[int]] = {v: {v} for v in range(tree.n)}
        losses: List[tuple] = []
        transmissions = 0

        for v in self._postorder:
            if v == tree.sink:
                continue
            parent = tree.parent(v)
            assert parent is not None
            transmissions += 1
            if ledger is not None:
                ledger.remaining[v] -= model.tx
                ledger.remaining[parent] -= model.rx
            if self.rng.random() < net.prr(v, parent):
                delivered_below[parent] |= delivered_below[v]
            else:
                losses.append((min(v, parent), max(v, parent)))

        if ledger is not None:
            # Eq. 1 charges Tx to every node uniformly — the sink's upstream
            # report.  Keeping the debit here makes the measured lifetime
            # agree exactly with the closed form.
            ledger.remaining[tree.sink] -= model.tx

        delivered = frozenset(delivered_below[tree.sink])
        complete = len(delivered) == tree.n
        if OBS.enabled:
            reg = OBS.registry
            reg.counter("sim.rounds").inc()
            reg.counter(
                "sim.rounds_by_outcome",
                outcome="complete" if complete else "incomplete",
            ).inc()
            reg.counter("sim.transmissions").inc(transmissions)
            reg.counter("sim.deliveries").inc(len(delivered))
            reg.counter("sim.delivery_failures").inc(tree.n - len(delivered))
            reg.counter("sim.link_losses").inc(len(losses))
        return RoundOutcome(
            delivered=delivered,
            complete=complete,
            transmissions=transmissions,
            losses=tuple(losses),
            delivery_ratio=len(delivered) / tree.n,
        )

    def estimate_reliability(self, n_rounds: int) -> float:
        """Empirical complete-round frequency over *n_rounds* rounds.

        Converges to ``Q(T)`` — used by tests and the validation benches to
        check the closed form against behaviour.
        """
        if n_rounds <= 0:
            raise ValueError(f"n_rounds must be positive, got {n_rounds}")
        complete = sum(self.run_round().complete for _ in range(n_rounds))
        return complete / n_rounds
