"""Round-based data aggregation simulation with Bernoulli link losses.

Models the paper's data-collection regime (Section III-B): in each round
every node aggregates its children's packets with its own reading and sends
one packet to its parent; there are no retransmissions or ACKs, so a round
delivers *complete* data to the sink iff every link succeeds — which happens
with probability ``Q(T)``.

The simulator tracks, per round:

* which nodes' readings reached the sink (a lost packet drops the entire
  subtree's aggregate for that round);
* energy spent (Tx per send, Rx per packet received — receivers pay for
  reception even when the decode fails, matching radio behaviour);
* whether the round was *complete* (all readings arrived).

This is the measurement harness behind the reliability validations: the
empirical complete-round frequency must converge to ``Q(T)``.

**Vectorization (and its RNG contract).**  All per-round structures —
postorder transmit schedule, per-edge PRRs, depth levels — are hoisted into
``__init__`` once per tree; nothing per-round is rebuilt in Python.
``run_round`` draws all of a round's Bernoulli losses with one
``rng.random(n_edges)`` call and :meth:`estimate_reliability` batches whole
blocks of rounds as a ``rng.random((rounds, n_edges))`` matrix.  Both rely
on a pinned contract: ``numpy.random.Generator`` fills arrays in C order
from the same double stream as repeated scalar ``random()`` calls, and the
simulator orders edge columns exactly like the historical per-edge loop
(non-sink nodes in tree postorder) — so every outcome, loss tuple, energy
debit, and reliability estimate is **bitwise identical** to the sequential
implementation.  The cross-backend pin tests assert this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.tree import AggregationTree
from repro.obs import OBS
from repro.utils.rng import SeedLike, as_rng

__all__ = ["RoundOutcome", "AggregationSimulator"]

#: Cap on the floats materialized per batched-draw block; blocks of rounds
#: are drawn sequentially (identical RNG stream) so huge estimates never
#: allocate a rounds × edges matrix beyond ~16 MB at a time.
_BATCH_DRAW_BUDGET = 2_000_000


@dataclass(frozen=True)
class RoundOutcome:
    """Result of one simulated aggregation round.

    Attributes:
        delivered: Node ids whose readings reached the sink.
        complete: Whether every node's reading arrived (the paper's
            success criterion behind ``Q(T)``).
        transmissions: Packets sent (one per non-sink node).
        losses: Tree links whose packet was lost this round.
        delivery_ratio: Fraction of readings that reached the sink.
    """

    delivered: frozenset
    complete: bool
    transmissions: int
    losses: tuple
    delivery_ratio: float


@dataclass
class EnergyLedger:
    """Per-node remaining energy, debited as rounds execute."""

    remaining: np.ndarray

    @classmethod
    def for_tree(cls, tree: AggregationTree) -> "EnergyLedger":
        return cls(remaining=tree.network.initial_energies)

    def alive(self) -> bool:
        return bool(np.all(self.remaining > 0))

    def first_dead(self) -> Optional[int]:
        dead = np.nonzero(self.remaining <= 0)[0]
        return int(dead[0]) if len(dead) else None


class AggregationSimulator:
    """Simulate no-ACK aggregation rounds over a fixed tree.

    Args:
        tree: The aggregation tree to exercise.
        seed: Randomness for per-link Bernoulli loss draws.
    """

    def __init__(self, tree: AggregationTree, *, seed: SeedLike = None) -> None:
        self.tree = tree
        self.rng = as_rng(seed)
        net = tree.network
        sink = tree.sink
        # Bottom-up schedule: children transmit before their parents.  One
        # RNG draw per entry of ``_order`` per round, in this exact order —
        # the stream contract every batched draw preserves.
        self._postorder = tree.postorder()
        order = [v for v in self._postorder if v != sink]
        parents = [tree.parent(v) for v in order]
        self._order = np.asarray(order, dtype=np.int64)
        self._order_parent = np.asarray(parents, dtype=np.int64)
        self._order_prr = np.asarray(
            [net.prr(v, p) for v, p in zip(order, parents)], dtype=np.float64
        )
        self._edge_keys = [
            (v, p) if v < p else (p, v) for v, p in zip(order, parents)
        ]
        # Depth levels (depth 1, 2, ...) for top-down delivery propagation:
        # a node's reading reaches the sink iff its own edge succeeded and
        # its parent's reading did.
        depth = np.zeros(tree.n, dtype=np.int64)
        for v in reversed(self._postorder):  # parents before children
            if v != sink:
                depth[v] = depth[tree.parent(v)] + 1
        self._levels: List[tuple] = []
        max_depth = int(depth.max()) if tree.n > 1 else 0
        for d in range(1, max_depth + 1):
            nodes = np.nonzero(depth == d)[0]
            self._levels.append((nodes, self._tree_parents_of(tree, nodes)))

    @staticmethod
    def _tree_parents_of(tree: AggregationTree, nodes: np.ndarray) -> np.ndarray:
        return np.asarray([tree.parent(int(v)) for v in nodes], dtype=np.int64)

    def _deliveries_mask(self, ok: np.ndarray) -> np.ndarray:
        """Per-node "reading reached the sink" from per-edge successes.

        *ok* is ``(..., n_edges)`` aligned with ``_order``; the result is
        ``(..., n)`` with the sink column always ``True``.
        """
        shape = ok.shape[:-1] + (self.tree.n,)
        reached = np.ones(shape, dtype=bool)
        reached[..., self._order] = ok
        for nodes, parents in self._levels:
            reached[..., nodes] &= reached[..., parents]
        return reached

    def run_round(
        self, ledger: Optional[EnergyLedger] = None
    ) -> RoundOutcome:
        """Execute one aggregation round.

        With a *ledger*, per-packet energy is debited (Tx for each sender,
        Rx at the parent for each child packet — whether or not it decoded).
        """
        tree = self.tree
        model = tree.network.energy_model
        n_edges = len(self._order)
        # One batched draw, consuming the identical stream the historical
        # per-edge scalar loop did.
        draws = self.rng.random(n_edges)
        ok = draws < self._order_prr

        if ledger is not None:
            # subtract.at applies per index occurrence, so a parent with k
            # children is debited k times.  In postorder a node hears all
            # of its children before it transmits, so the historical float
            # sequence at every node is (rx ... rx, tx) — debiting all rx
            # first reproduces it bitwise (equal-valued subtractions are
            # order-insensitive within the rx group).
            np.subtract.at(ledger.remaining, self._order_parent, model.rx)
            ledger.remaining[self._order] -= model.tx
            # Eq. 1 charges Tx to every node uniformly — the sink's upstream
            # report.  Keeping the debit here makes the measured lifetime
            # agree exactly with the closed form.
            ledger.remaining[tree.sink] -= model.tx

        losses = [self._edge_keys[i] for i in np.nonzero(~ok)[0]]
        delivered = frozenset(np.nonzero(self._deliveries_mask(ok))[0].tolist())
        complete = len(delivered) == tree.n
        if OBS.enabled:
            reg = OBS.registry
            reg.counter("sim.rounds").inc()
            reg.counter(
                "sim.rounds_by_outcome",
                outcome="complete" if complete else "incomplete",
            ).inc()
            reg.counter("sim.transmissions").inc(n_edges)
            reg.counter("sim.deliveries").inc(len(delivered))
            reg.counter("sim.delivery_failures").inc(tree.n - len(delivered))
            reg.counter("sim.link_losses").inc(len(losses))
        return RoundOutcome(
            delivered=delivered,
            complete=complete,
            transmissions=n_edges,
            losses=tuple(losses),
            delivery_ratio=len(delivered) / tree.n,
        )

    def estimate_reliability(self, n_rounds: int) -> float:
        """Empirical complete-round frequency over *n_rounds* rounds.

        Converges to ``Q(T)`` — used by tests and the validation benches to
        check the closed form against behaviour.  Rounds are simulated as
        batched ``(block, n_edges)`` Bernoulli matrices; the estimate (and
        the RNG state afterwards) is bitwise identical to *n_rounds*
        sequential :meth:`run_round` calls.
        """
        if n_rounds <= 0:
            raise ValueError(f"n_rounds must be positive, got {n_rounds}")
        n_edges = len(self._order)
        # A single-node tree falls through naturally: empty draws consume
        # no randomness and every round is vacuously complete.
        block = max(1, _BATCH_DRAW_BUDGET // max(n_edges, 1))
        complete_rounds = 0
        done = 0
        enabled = OBS.enabled
        reg = OBS.registry if enabled else None
        while done < n_rounds:
            rounds = min(block, n_rounds - done)
            draws = self.rng.random((rounds, n_edges))
            ok = draws < self._order_prr
            complete_mask = ok.all(axis=1)
            n_complete = int(np.count_nonzero(complete_mask))
            complete_rounds += n_complete
            if enabled:
                delivered_total = int(
                    np.count_nonzero(self._deliveries_mask(ok))
                )
                n_cells = rounds * self.tree.n
                reg.counter("sim.rounds").inc(rounds)
                if n_complete:
                    reg.counter(
                        "sim.rounds_by_outcome", outcome="complete"
                    ).inc(n_complete)
                if rounds - n_complete:
                    reg.counter(
                        "sim.rounds_by_outcome", outcome="incomplete"
                    ).inc(rounds - n_complete)
                reg.counter("sim.transmissions").inc(rounds * n_edges)
                reg.counter("sim.deliveries").inc(delivered_total)
                reg.counter("sim.delivery_failures").inc(
                    n_cells - delivered_total
                )
                reg.counter("sim.link_losses").inc(
                    int(np.count_nonzero(~ok))
                )
            done += rounds
        return complete_rounds / n_rounds
