"""Discrete-event simulation kernel and a TDMA collection schedule.

The round simulator (:mod:`repro.simulation.rounds`) abstracts time away;
this module adds it back for the questions that need a clock:

* **latency** — how long does one aggregation round take?  Under the
  contention-free TDMA schedule WSN collection stacks use for aggregation
  (children transmit strictly before their parent), a node at hop depth
  ``d`` in a tree of depth ``D`` transmits in slot ``D - d``, so the round
  completes after ``D`` slots.  Deep trees (the lifetime-optimal
  Hamiltonian-path regime!) therefore pay real latency — the trade-off the
  paper's related work (delay-constrained trees, Shen et al.) cares about;
* **timelines** — when churn models and protocol traffic need a shared
  clock.

:class:`EventQueue` is a minimal, deterministic DES kernel (time-ordered
callbacks with FIFO tie-breaking); :class:`TDMACollectionSimulator` runs
aggregation rounds on it with per-slot transmissions, Bernoulli losses,
energy accounting, and per-round timing records.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.tree import AggregationTree
from repro.simulation.rounds import EnergyLedger
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_positive

__all__ = ["EventQueue", "RoundTiming", "TDMACollectionSimulator"]


class EventQueue:
    """Deterministic discrete-event scheduler.

    Events fire in time order; events at equal times fire in scheduling
    order (FIFO), which keeps runs reproducible.  Callbacks may schedule
    further events.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule *callback* to run *delay* time units from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        heapq.heappush(
            self._heap, (self._now + delay, next(self._counter), callback)
        )

    def at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule *callback* at absolute *time* (>= now)."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past ({time} < {self._now})"
            )
        heapq.heappush(self._heap, (time, next(self._counter), callback))

    def run(
        self, *, until: Optional[float] = None, max_events: int = 10_000_000
    ) -> int:
        """Execute events until the queue drains (or *until* / *max_events*).

        Returns the number of events executed by this call.
        """
        executed = 0
        while self._heap and executed < max_events:
            time, _, callback = self._heap[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._heap)
            self._now = time
            callback()
            executed += 1
            self._processed += 1
        if until is not None and (not self._heap or self._heap[0][0] > until):
            self._now = max(self._now, until)
        return executed

    def empty(self) -> bool:
        return not self._heap


@dataclass(frozen=True)
class RoundTiming:
    """Timing/delivery record of one TDMA aggregation round.

    Attributes:
        index: Round number (0-based).
        start_time / end_time: Simulation times of the round's first slot
            and of the sink's last reception slot.
        slots: TDMA slots the round used (== tree depth).
        delivered: Node ids whose readings reached the sink.
        complete: Whether all readings arrived.
    """

    index: int
    start_time: float
    end_time: float
    slots: int
    delivered: frozenset
    complete: bool

    @property
    def latency(self) -> float:
        return self.end_time - self.start_time


class TDMACollectionSimulator:
    """Run aggregation rounds as slotted TDMA on an event queue.

    Nodes at hop depth ``d`` transmit in slot ``D - d`` (deepest first), so
    every node hears all of its children before its own slot — the
    contention-free schedule aggregation requires.  Per transmission the
    sender pays Tx, the parent pays Rx, and the packet (carrying the
    aggregate of the sender's subtree so far) survives with the link's PRR.

    Args:
        tree: The aggregation tree to drive.
        slot_duration: Seconds per TDMA slot.
        period: Seconds between round starts (defaults to one full round,
            i.e. back-to-back rounds); must be >= depth * slot_duration.
        seed: Loss randomness.
    """

    def __init__(
        self,
        tree: AggregationTree,
        *,
        slot_duration: float = 0.01,
        period: Optional[float] = None,
        seed: SeedLike = None,
    ) -> None:
        check_positive(slot_duration, "slot_duration")
        self.tree = tree
        self.slot_duration = float(slot_duration)
        self.depth = (
            max(tree.depth(v) for v in range(tree.n)) if tree.n > 1 else 0
        )
        min_period = max(self.depth, 1) * self.slot_duration
        self.period = float(period) if period is not None else min_period
        if self.period < min_period - 1e-12:
            raise ValueError(
                f"period {self.period} shorter than one round ({min_period})"
            )
        self.queue = EventQueue()
        self.rng = as_rng(seed)
        self.ledger = EnergyLedger.for_tree(tree)
        self.records: List[RoundTiming] = []

    def _schedule_round(self, index: int) -> None:
        tree = self.tree
        start = self.queue.now
        # delivered_below accumulates within the round via closures.
        delivered: Dict[int, Set[int]] = {v: {v} for v in range(tree.n)}
        model = tree.network.energy_model

        def make_transmission(node: int, parent: int) -> Callable[[], None]:
            def fire() -> None:
                self.ledger.remaining[node] -= model.tx
                self.ledger.remaining[parent] -= model.rx
                if self.rng.random() < tree.network.prr(node, parent):
                    delivered[parent] |= delivered[node]

            return fire

        for v in range(tree.n):
            if v == tree.sink:
                continue
            parent = tree.parent(v)
            assert parent is not None
            slot = self.depth - tree.depth(v)  # deepest transmit first
            self.queue.at(
                start + slot * self.slot_duration,
                make_transmission(v, parent),
            )

        def close_round() -> None:
            self.ledger.remaining[tree.sink] -= model.tx  # Eq. 1 uniformity
            got = frozenset(delivered[tree.sink])
            self.records.append(
                RoundTiming(
                    index=index,
                    start_time=start,
                    end_time=self.queue.now,
                    slots=self.depth,
                    delivered=got,
                    complete=len(got) == tree.n,
                )
            )

        self.queue.at(start + self.depth * self.slot_duration, close_round)

    def run_rounds(self, n_rounds: int) -> List[RoundTiming]:
        """Execute *n_rounds* periodic rounds; returns their records."""
        if n_rounds <= 0:
            raise ValueError(f"n_rounds must be positive, got {n_rounds}")
        first = len(self.records)
        base = self.queue.now  # further run_rounds calls continue the clock
        for i in range(n_rounds):
            self.queue.at(base + i * self.period, _RoundStarter(self, first + i))
        self.queue.run()
        return self.records[first:]

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    def empirical_reliability(self) -> float:
        """Fraction of completed rounds so far."""
        if not self.records:
            raise ValueError("no rounds executed yet")
        return sum(r.complete for r in self.records) / len(self.records)

    def mean_latency(self) -> float:
        """Mean per-round latency (== depth * slot for TDMA)."""
        if not self.records:
            raise ValueError("no rounds executed yet")
        return sum(r.latency for r in self.records) / len(self.records)


class _RoundStarter:
    """Callable scheduling one round (picklable/debuggable closure stand-in)."""

    def __init__(self, sim: TDMACollectionSimulator, index: int) -> None:
        self.sim = sim
        self.index = index

    def __call__(self) -> None:
        self.sim._schedule_round(self.index)
