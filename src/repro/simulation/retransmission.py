"""Retransmit-until-success aggregation (the Fig. 1 motivation experiment).

Section III-A motivates MRLC by showing what ETX-style reliability costs:
with per-hop retransmissions (no aggregation benefit while a packet is
pending), one round of aggregation over a 16-node network takes ~15 packets
at perfect link quality but ~150 when the average PRR drops to 10% — "nodes
spend 90% of energy in retransmission".

Under retransmit-until-success each tree link ``e`` transmits a geometric
number of times with mean ``1/q_e = ETX(e)`` (Eq. 9's metric), so the
expected packets per round is ``sum_e 1/q_e``.  Both the stochastic
simulator and the closed form are provided; Fig. 1's reproduction sweeps the
average link quality for several network sizes.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.core.tree import AggregationTree
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_positive

__all__ = [
    "RetransmissionRound",
    "expected_packets_per_round",
    "simulate_retransmission_round",
    "average_packets",
]

#: Cap on attempts per link so pathological PRRs cannot hang a simulation.
MAX_ATTEMPTS_PER_LINK = 10_000_000


@dataclass(frozen=True)
class RetransmissionRound:
    """One aggregation round under retransmit-until-success.

    Attributes:
        packets: Total transmissions (retransmissions included).
        per_link_attempts: Attempt counts aligned with ``tree.edges()``.
    """

    packets: int
    per_link_attempts: tuple


def expected_packets_per_round(tree: AggregationTree) -> float:
    """Closed form: ``sum_e ETX(e) = sum_e 1/q_e`` packets per round."""
    return sum(1.0 / tree.network.prr(u, v) for u, v in tree.edges())


def simulate_retransmission_round(
    tree: AggregationTree, *, seed: SeedLike = None
) -> RetransmissionRound:
    """Draw one round's transmissions (geometric per link)."""
    rng = as_rng(seed)
    attempts = []
    for u, v in tree.edges():
        q = tree.network.prr(u, v)
        count = int(rng.geometric(q)) if q > 0 else MAX_ATTEMPTS_PER_LINK
        attempts.append(min(count, MAX_ATTEMPTS_PER_LINK))
    return RetransmissionRound(
        packets=int(sum(attempts)), per_link_attempts=tuple(attempts)
    )


def average_packets(
    tree: AggregationTree, n_rounds: int, *, seed: SeedLike = None
) -> float:
    """Empirical mean packets per round over *n_rounds* simulated rounds."""
    check_positive(n_rounds, "n_rounds")
    rng = as_rng(seed)
    total = 0
    for _ in range(int(n_rounds)):
        total += simulate_retransmission_round(tree, seed=rng).packets
    return total / int(n_rounds)
