"""The async tree server: admission → cache → batcher → worker shards.

Request lifecycle (one ``await server.submit(request)``):

1. **Resolve** — the builder name is resolved through the engine registry
   (fail fast on typos), ``lc_bound``/``seed`` sugar is merged into the
   effective params, and the topology fingerprint is computed (or taken
   precomputed / memoized from the structure cache).
2. **Cache** — the content-addressed result store is probed with the full
   request key; a hit returns immediately (``cache_info.source ==
   "result"``).  Otherwise, if an *identical* request is already queued or
   building, this one coalesces onto its future (``"inflight"``) — the
   build runs once however many clients ask.
3. **Admission** — if the pending count (queued + building) has reached
   ``max_pending``, the request is refused with
   :class:`~repro.serve.request.ServerOverloadedError` *before* touching
   the queue: backpressure rejects new work, never drops accepted work.
   Disconnected topologies are refused here too (no builder can span
   them).
4. **Batch** — the batcher task drains the queue into micro-batches: up to
   ``batch_size`` requests, waiting at most ``batch_window_s`` for
   stragglers after the first arrival.  A batch is grouped by topology
   fingerprint and split into shards, which the worker pool executes
   concurrently (processes in ``process`` mode — this is the sharded
   path; see :mod:`repro.serve.workers`).
5. **Resolve futures** — finished builds populate the result store and
   wake every coalesced waiter; per-item build errors become exceptions on
   exactly the futures that asked for them.

Builders remain pure ``(network, params, seed)`` functions, which is the
whole foundation: identical keys ⇒ identical trees, so serving from cache
is *bitwise* identical to a cold build (pinned per builder in
``tests/test_serve_cache.py``).

Observability: with an active :func:`repro.obs.instrument` session the
server reports ``serve.requests`` / ``serve.cache_hits`` /
``serve.rejected`` counters, ``serve.queue_depth`` / ``serve.inflight``
gauges, and ``serve.batch_size`` / ``serve.build_seconds`` /
``serve.request_seconds`` histograms — all behind ``OBS.enabled`` guards
(lint rule REP102 covers this package).  Each submitted request
additionally gets a trace of its own: a ``serve.request`` root span, a
``serve.queue`` span for time spent waiting on the batcher, and a
``serve.build`` span measured wherever the build ran — including inside
a process worker, whose span context travels out on the
:class:`~repro.serve.workers.WorkItem` and back on the
:class:`~repro.serve.workers.ShardOutcome` (see
:mod:`repro.obs.spanctx`).  Completed traces land in the server's
:class:`~repro.serve.telemetry.TraceBuffer`, and the response carries
``trace_id`` so a client can fetch them via the ``trace`` TCP op.

Independent of instrumentation, :class:`ServeConfig` may declare
:class:`~repro.obs.slo.SLO` objectives; the server then counts every
``submit`` against the ``build`` objective (latency breaches and errors)
and surfaces burn rates in :meth:`TreeServer.stats`.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.engine import BuildResult, get_builder
from repro.network.model import Network
from repro.obs import OBS
from repro.obs.slo import SLO, SLOTracker
from repro.obs.spanctx import SpanContext, activate_span
from repro.serve.cache import ResultCache, StructureCache, WarmStructures
from repro.serve.request import (
    BuildRequest,
    BuildResponse,
    CacheInfo,
    ServeError,
    ServerOverloadedError,
    effective_params,
    request_key,
)
from repro.serve.telemetry import ServeTelemetry
from repro.serve.workers import ShardOutcome, WorkItem, WorkerPool

__all__ = ["ServeConfig", "TreeServer", "make_response"]


def make_response(
    result: BuildResult,
    fingerprint: str,
    key: str,
    *,
    hit: bool,
    source: str,
    trace_id: Optional[str] = None,
) -> BuildResponse:
    """Assemble the public response for one finished build.

    Module-level (not a server method) so offline verifiers — the bench
    driver's divergence check, tests — produce byte-identical response
    shapes from a cold :func:`repro.engine.build_tree` call.
    """
    metrics: Dict[str, Any] = {
        "cost": result.cost,
        "reliability": result.reliability,
        "lifetime": result.lifetime,
        "elapsed_s": result.elapsed_s,
    }
    for name, value in result.meta.items():
        metrics.setdefault(name, value)
    return BuildResponse(
        builder=result.builder,
        tree=result.tree,
        metrics=metrics,
        cache_info=CacheInfo(
            hit=hit, source=source, fingerprint=fingerprint, key=key
        ),
        trace_id=trace_id,
    )


@dataclass(frozen=True)
class ServeConfig:
    """Scheduler and cache knobs.

    Attributes:
        batch_size: Max requests per micro-batch.
        batch_window_s: How long the batcher waits for stragglers after the
            first request of a batch arrives (0 disables waiting).
        max_pending: Admission ceiling on requests queued or building;
            submissions beyond it raise ``ServerOverloadedError``.
        result_cache_size: Capacity of the content-addressed result store.
        structure_cache_size: Capacity (in topologies) of the warm store.
        precheck_connectivity: Refuse requests on disconnected topologies
            at admission instead of failing inside every builder.
        slos: Declared :class:`~repro.obs.slo.SLO` objectives; an empty
            tuple (the default) disables SLO accounting entirely.
        snapshot_interval_s: Cadence of the telemetry sampling loop.
        telemetry_capacity: Samples kept per telemetry time-series ring.
        trace_capacity: Completed request traces kept for the ``trace`` op.
    """

    batch_size: int = 16
    batch_window_s: float = 0.002
    max_pending: int = 1024
    result_cache_size: int = 4096
    structure_cache_size: int = 256
    precheck_connectivity: bool = True
    slos: Tuple[SLO, ...] = ()
    snapshot_interval_s: float = 1.0
    telemetry_capacity: int = 256
    trace_capacity: int = 512

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.batch_window_s < 0:
            raise ValueError("batch_window_s must be non-negative")
        if self.max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {self.max_pending}")
        if self.snapshot_interval_s <= 0:
            raise ValueError("snapshot_interval_s must be positive")
        if self.telemetry_capacity < 1 or self.trace_capacity < 1:
            raise ValueError("telemetry/trace capacities must be >= 1")


@dataclass
class _Pending:
    """One queued build and the future its submitters share.

    ``ctx`` is the first submitter's request span context (``None`` with
    observability off); ``enqueued_at`` is its ``perf_counter`` enqueue
    time, read only to close the ``serve.queue`` span at dispatch.
    """

    key: str
    warm: WarmStructures
    item: WorkItem
    future: "asyncio.Future[BuildResult]"
    ctx: Optional[SpanContext] = None
    enqueued_at: float = 0.0


class TreeServer:
    """Long-running MRLC-as-a-service front end over the builder registry.

    Use as an async context manager (or call :meth:`start` / :meth:`aclose`
    explicitly)::

        async with TreeServer() as server:
            response = await server.submit(BuildRequest("mst", network=net))

    The server owns its caches; the worker pool is owned only when the
    caller did not pass one in.
    """

    def __init__(
        self,
        *,
        pool: Optional[WorkerPool] = None,
        config: Optional[ServeConfig] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self._pool = pool if pool is not None else WorkerPool(mode="inline")
        self._owns_pool = pool is None
        self.results = ResultCache(self.config.result_cache_size)
        self.structures = StructureCache(self.config.structure_cache_size)
        self._queue: "asyncio.Queue[_Pending]" = asyncio.Queue()
        self._inflight: Dict[str, _Pending] = {}
        self._batcher: Optional["asyncio.Task[None]"] = None
        self._telemetry_task: Optional["asyncio.Task[None]"] = None
        self._closed = False
        self.slo = SLOTracker(self.config.slos)
        self.telemetry = ServeTelemetry(
            self,
            interval_s=self.config.snapshot_interval_s,
            capacity=self.config.telemetry_capacity,
            trace_capacity=self.config.trace_capacity,
        )
        # Monotonic stats (cheap ints; obs mirrors them when enabled).
        self.requests = 0
        self.built = 0
        self.coalesced = 0
        self.rejected = 0
        self.batches = 0
        self.max_batch = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "TreeServer":
        """Spawn the batcher and telemetry tasks (idempotent)."""
        if self._batcher is None:
            self._closed = False
            self._batcher = asyncio.create_task(
                self._batch_loop(), name="repro-serve-batcher"
            )
        if self._telemetry_task is None:
            self._telemetry_task = asyncio.create_task(
                self.telemetry.run(), name="repro-serve-telemetry"
            )
        return self

    async def aclose(self) -> None:
        """Drain nothing, cancel the tasks, fail queued requests."""
        self._closed = True
        for attr in ("_batcher", "_telemetry_task"):
            task = getattr(self, attr)
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
                setattr(self, attr, None)
        while not self._queue.empty():
            pending = self._queue.get_nowait()
            if not pending.future.done():
                pending.future.set_exception(
                    ServeError("server closed before the build ran")
                )
        self._inflight.clear()
        if self._owns_pool:
            self._pool.close()

    async def __aenter__(self) -> "TreeServer":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def register_topology(self, network: Network) -> str:
        """Register *network* for later fingerprint-only requests.

        Returns the topology fingerprint clients should quote.
        """
        fingerprint = self.structures.fingerprint_of(network)
        self.structures.get_or_create(fingerprint, network)
        return fingerprint

    def min_cut(self, fingerprint: str, u: int, v: Optional[int] = None) -> float:
        """Min-cut query against a registered topology's warm cut tree."""
        warm = self.structures.get_or_create(fingerprint, None)
        return warm.min_cut(u, v)

    async def submit(self, request: BuildRequest) -> BuildResponse:
        """Serve one request; see the module docstring for the lifecycle.

        This wrapper owns the request's telemetry: it mints the trace's
        root span context, makes it ambient for the lifecycle, records
        the ``serve.request`` root span and end-to-end latency histogram
        on completion, and counts the request against the ``build`` SLO
        (when one is declared).  With observability off and no SLOs this
        is a single extra branch on the hot path.
        """
        track = bool(self.slo)
        if not OBS.enabled and not track:
            return await self._submit(request, None)
        start = time.perf_counter()
        ctx: Optional[SpanContext] = None
        if OBS.enabled:
            ctx = SpanContext.root()
        try:
            if ctx is not None:
                with activate_span(ctx):
                    response = await self._submit(request, ctx)
            else:
                response = await self._submit(request, None)
        except Exception as exc:
            dur = time.perf_counter() - start
            if track:
                self.slo.record("build", dur, ok=False)
            if OBS.enabled and ctx is not None:
                self._record_span(
                    "serve.request",
                    dur,
                    ctx,
                    builder=request.builder,
                    error=type(exc).__name__,
                )
            raise
        dur = time.perf_counter() - start
        if track:
            self.slo.record("build", dur, ok=True)
        if OBS.enabled and ctx is not None:
            OBS.registry.histogram(
                "serve.request_seconds", builder=request.builder
            ).observe(dur)
            self._record_span(
                "serve.request",
                dur,
                ctx,
                builder=request.builder,
                source=response.cache_info.source,
            )
        return response

    async def _submit(
        self, request: BuildRequest, ctx: Optional[SpanContext]
    ) -> BuildResponse:
        if self._batcher is None:
            raise ServeError("server not started; use `async with TreeServer()`")
        get_builder(request.builder)  # fail fast before any queueing
        params = effective_params(request)
        if request.fingerprint is not None:
            fingerprint = request.fingerprint
        else:
            fingerprint = self.structures.fingerprint_of(request.network)
        warm = self.structures.get_or_create(fingerprint, request.network)
        key = request_key(fingerprint, request.builder, params)

        self.requests += 1
        if OBS.enabled:
            OBS.registry.counter(
                "serve.requests", builder=request.builder
            ).inc()

        cached = self.results.get(key)
        if cached is not None:
            if OBS.enabled:
                OBS.registry.counter("serve.cache_hits", tier="result").inc()
            return self._respond(
                cached, fingerprint, key, hit=True, source="result", ctx=ctx
            )

        pending = self._inflight.get(key)
        if pending is not None:
            self.coalesced += 1
            if OBS.enabled:
                OBS.registry.counter("serve.cache_hits", tier="inflight").inc()
            result = await asyncio.shield(pending.future)
            return self._respond(
                result, fingerprint, key, hit=True, source="inflight", ctx=ctx
            )

        # Admission control: bound queued + building work.
        if len(self._inflight) >= self.config.max_pending:
            self.rejected += 1
            if OBS.enabled:
                OBS.registry.counter("serve.rejected").inc()
            raise ServerOverloadedError(
                f"{len(self._inflight)} requests pending "
                f"(max_pending={self.config.max_pending}); retry later"
            )
        if self.config.precheck_connectivity and not warm.is_connected():
            raise ServeError(
                "topology is disconnected; no spanning aggregation tree exists"
            )

        loop = asyncio.get_running_loop()
        entry = _Pending(
            key=key,
            warm=warm,
            item=WorkItem(
                key=key,
                builder=request.builder,
                params=params,
                span=ctx.to_dict() if ctx is not None else None,
            ),
            future=loop.create_future(),
            ctx=ctx,
            enqueued_at=time.perf_counter() if ctx is not None else 0.0,
        )
        self._inflight[key] = entry
        self._queue.put_nowait(entry)
        if OBS.enabled:
            OBS.registry.gauge("serve.queue_depth").set(self._queue.qsize())
            OBS.registry.gauge("serve.inflight").set(len(self._inflight))
        result = await asyncio.shield(entry.future)
        return self._respond(
            result, fingerprint, key, hit=False, source="built", ctx=ctx
        )

    async def submit_many(
        self, requests: Iterable[BuildRequest]
    ) -> List[BuildResponse]:
        """Submit concurrently and gather in request order."""
        return list(
            await asyncio.gather(*(self.submit(r) for r in requests))
        )

    def queue_depth(self) -> int:
        """Requests waiting for the batcher right now."""
        return self._queue.qsize()

    def inflight_count(self) -> int:
        """Requests queued or building right now."""
        return len(self._inflight)

    def trace_spans(self, trace_id: str) -> Optional[List[Dict[str, Any]]]:
        """Spans recorded for one request trace (``None`` if unknown)."""
        return self.telemetry.trace(trace_id)

    def stats(self) -> Dict[str, Any]:
        """One flat snapshot of scheduler + cache + budget health."""
        served = self.results.hits + self.coalesced
        return {
            "requests": self.requests,
            "built": self.built,
            "coalesced": self.coalesced,
            "rejected": self.rejected,
            "batches": self.batches,
            "max_batch": self.max_batch,
            "queue_depth": self.queue_depth(),
            "inflight": self.inflight_count(),
            "hit_rate": served / self.requests if self.requests else 0.0,
            "result_cache": self.results.stats(),
            "structure_cache": self.structures.stats(),
            "pool_mode": self._pool.mode,
            "pool_workers": self._pool.n_workers,
            "slo": self.slo.snapshot(),
            "telemetry": self.telemetry.snapshot(),
        }

    # ------------------------------------------------------------------
    # Scheduler internals
    # ------------------------------------------------------------------
    def _record_span(
        self,
        name: str,
        dur: float,
        ctx: SpanContext,
        **fields: Any,
    ) -> None:
        """Splice one externally measured span into tracer + trace buffer."""
        if OBS.enabled:
            event = OBS.tracer.add_span(name, dur=dur, context=ctx, **fields)
            doc: Dict[str, Any] = {
                "name": name,
                "kind": "span",
                "t": event.t,
                "dur": dur,
                "trace": ctx.trace_id,
                "span": ctx.span_id,
            }
            if ctx.parent_id is not None:
                doc["parent"] = ctx.parent_id
            if fields:
                doc["fields"] = dict(fields)
            self.telemetry.record_trace_span(ctx.trace_id, doc)

    def _respond(
        self,
        result: BuildResult,
        fingerprint: str,
        key: str,
        *,
        hit: bool,
        source: str,
        ctx: Optional[SpanContext] = None,
    ) -> BuildResponse:
        return make_response(
            result,
            fingerprint,
            key,
            hit=hit,
            source=source,
            trace_id=ctx.trace_id if ctx is not None else None,
        )

    async def _collect_batch(self) -> List[_Pending]:
        """Block for the first request, then drain stragglers briefly."""
        first = await self._queue.get()
        batch = [first]
        window = self.config.batch_window_s
        loop = asyncio.get_running_loop()
        deadline = loop.time() + window
        while len(batch) < self.config.batch_size:
            if not self._queue.empty():
                batch.append(self._queue.get_nowait())
                continue
            remaining = deadline - loop.time()
            if remaining <= 0 or window == 0:
                break
            try:
                batch.append(
                    await asyncio.wait_for(self._queue.get(), remaining)
                )
            except asyncio.TimeoutError:
                break
        return batch

    def _shard(self, batch: List[_Pending]) -> List[Tuple[WarmStructures, List[_Pending]]]:
        """Group by topology, then split groups across pool parallelism."""
        groups: Dict[str, List[_Pending]] = {}
        for pending in batch:
            groups.setdefault(pending.warm.fingerprint, []).append(pending)
        shard_cap = max(
            1, (len(batch) + self._pool.parallelism - 1) // self._pool.parallelism
        )
        shards: List[Tuple[WarmStructures, List[_Pending]]] = []
        for members in groups.values():
            for start in range(0, len(members), shard_cap):
                chunk = members[start : start + shard_cap]
                shards.append((chunk[0].warm, chunk))
        return shards

    async def _batch_loop(self) -> None:
        while True:
            batch = await self._collect_batch()
            self.batches += 1
            self.max_batch = max(self.max_batch, len(batch))
            if OBS.enabled:
                OBS.registry.counter("serve.batches").inc()
                OBS.registry.histogram("serve.batch_size").observe(len(batch))
                OBS.registry.gauge("serve.queue_depth").set(self._queue.qsize())
                dispatched_at = time.perf_counter()
                for pending in batch:
                    if pending.ctx is not None:
                        self._record_span(
                            "serve.queue",
                            dispatched_at - pending.enqueued_at,
                            pending.ctx.child(),
                            batch=len(batch),
                        )
            shards = self._shard(batch)
            outcomes = await asyncio.gather(
                *(
                    self._pool.run_shard(warm, [p.item for p in members])
                    for warm, members in shards
                ),
                return_exceptions=True,
            )
            for (warm, members), shard_result in zip(shards, outcomes):
                if isinstance(shard_result, BaseException):
                    self._fail_shard(members, shard_result)
                    continue
                self._settle_shard(members, shard_result)

    def _fail_shard(
        self, members: List[_Pending], error: BaseException
    ) -> None:
        for pending in members:
            self._inflight.pop(pending.key, None)
            if not pending.future.done():
                pending.future.set_exception(
                    ServeError(f"worker shard failed: {error!r}")
                )

    def _settle_shard(
        self, members: List[_Pending], outcomes: List[ShardOutcome]
    ) -> None:
        by_key = {outcome.key: outcome for outcome in outcomes}
        for pending in members:
            self._inflight.pop(pending.key, None)
            outcome = by_key.get(pending.key)
            if OBS.enabled and outcome is not None and outcome.span is not None:
                # Splice the worker-measured build span (possibly minted in
                # another process) back into the originating request trace.
                self._record_span(
                    "serve.build",
                    float(outcome.span["dur"]),
                    SpanContext.from_dict(outcome.span["ctx"]),
                    builder=pending.item.builder,
                    mode=self._pool.mode,
                    error=outcome.error is not None,
                )
            if pending.future.done():
                continue
            if outcome is None:
                pending.future.set_exception(
                    ServeError(f"worker returned no outcome for {pending.key[:16]}…")
                )
            elif outcome.result is None:
                pending.future.set_exception(
                    ServeError(f"build failed: {outcome.error}")
                )
            else:
                self.built += 1
                self.results.put(pending.key, outcome.result)
                if OBS.enabled:
                    OBS.registry.counter(
                        "serve.builds", builder=outcome.result.builder
                    ).inc()
                    OBS.registry.histogram(
                        "serve.build_seconds", builder=outcome.result.builder
                    ).observe(outcome.result.elapsed_s)
                    OBS.registry.gauge("serve.inflight").set(
                        len(self._inflight)
                    )
                pending.future.set_result(outcome.result)
