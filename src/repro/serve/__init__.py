"""MRLC-as-a-service: the async, cached, sharded tree-serving layer.

ROADMAP item 1: wrap the builder registry in a long-running service.
Clients submit :class:`BuildRequest` objects (topology + builder + knobs +
optional LC bound and seed); a :class:`TreeServer` batches compatible
requests, shards batches across a reusable :class:`WorkerPool`, and serves
repeat queries from a two-tier cache — a content-addressed
:class:`~repro.serve.cache.ResultCache` keyed by
(:func:`~repro.network.serialization.topology_fingerprint`, builder,
canonical params), plus per-fingerprint
:class:`~repro.serve.cache.WarmStructures` (pickled payloads, connectivity,
memoized Gomory–Hu min-cut trees) that nearby-LC queries reuse warm.

In-process usage::

    from repro.serve import BuildRequest, TreeServer

    async with TreeServer() as server:
        response = await server.submit(
            BuildRequest("ira", network=net, lc_bound=900_000)
        )
        response.tree.reliability()
        response.cache_info.hit     # False the first time, True after

Over the wire: ``repro serve run`` starts the JSON-lines TCP front end
(:mod:`repro.serve.tcp`), and ``repro serve bench`` drives the synthetic
repeat-query workload whose reports feed ``BENCH_serve.json``.  The full
architecture is documented in ``docs/serving.md``.
"""

from repro.serve.bench import BenchReport, append_bench_run, run_serve_bench
from repro.serve.cache import ResultCache, StructureCache, WarmStructures
from repro.serve.request import (
    BuildRequest,
    BuildResponse,
    CacheInfo,
    ServeError,
    ServerOverloadedError,
    UnknownTopologyError,
    canonical_params_json,
    effective_params,
    request_key,
)
from repro.serve.server import ServeConfig, TreeServer, make_response
from repro.serve.telemetry import ServeTelemetry, TraceBuffer
from repro.serve.workers import POOL_MODES, ShardOutcome, WorkItem, WorkerPool

__all__ = [
    "BenchReport",
    "BuildRequest",
    "BuildResponse",
    "CacheInfo",
    "POOL_MODES",
    "ResultCache",
    "ServeConfig",
    "ServeError",
    "ServeTelemetry",
    "ServerOverloadedError",
    "ShardOutcome",
    "StructureCache",
    "TraceBuffer",
    "TreeServer",
    "UnknownTopologyError",
    "WarmStructures",
    "WorkItem",
    "WorkerPool",
    "append_bench_run",
    "canonical_params_json",
    "effective_params",
    "make_response",
    "request_key",
    "run_serve_bench",
]
