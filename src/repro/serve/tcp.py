"""Asyncio TCP front end speaking the JSON-lines protocol.

One coroutine per connection; each line is decoded, dispatched against the
in-process :class:`~repro.serve.server.TreeServer`, and answered with one
line.  Requests on one connection are handled strictly in order (a client
wanting pipelined concurrency opens more connections — the server's
batcher coalesces and batches across all of them), which keeps the framing
trivial and the per-connection memory bounded.

This transport is deliberately thin: all admission, caching, batching, and
sharding live in the server object, so in-process callers (tests, the
bench driver, embedding applications) exercise exactly the code paths a
socket client does.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Dict, Optional

from repro.network.serialization import network_from_dict
from repro.obs import OBS
from repro.obs.export import render_json, render_prometheus
from repro.serve.protocol import (
    decode_build_request,
    encode_error,
    encode_response,
)
from repro.serve.request import ServeError
from repro.serve.server import TreeServer

__all__ = ["start_tcp_server", "serve_forever"]

#: Refuse single lines larger than this (64 MiB) instead of buffering them.
MAX_LINE_BYTES = 64 * 1024 * 1024


async def _handle_doc(server: TreeServer, doc: Dict[str, Any]) -> Dict[str, Any]:
    request_id = doc.get("id")
    op = doc.get("op", "build")
    # ``build`` latency/errors are counted inside ``submit`` (so in-process
    # callers burn the same budget); the transport covers every other op.
    track = bool(server.slo) and op != "build"
    start = time.perf_counter() if track else 0.0
    try:
        reply = await _dispatch(server, doc, op, request_id)
    except Exception as exc:  # noqa: BLE001 — every failure answers the line
        if track:
            server.slo.record(op, time.perf_counter() - start, ok=False)
        return encode_error(exc, request_id)
    if track:
        server.slo.record(op, time.perf_counter() - start, ok=True)
    return reply


async def _dispatch(
    server: TreeServer,
    doc: Dict[str, Any],
    op: str,
    request_id: Optional[Any],
) -> Dict[str, Any]:
    if op == "ping":
        return {"ok": True, "op": "ping", **_echo_id(request_id)}
    if op == "stats":
        return {"ok": True, "stats": server.stats(), **_echo_id(request_id)}
    if op == "register":
        network_doc = doc.get("network")
        if network_doc is None:
            raise ServeError("register needs a 'network' document")
        try:
            network = network_from_dict(network_doc)
        except (KeyError, TypeError, ValueError) as exc:
            raise ServeError(f"bad network document: {exc}") from exc
        fingerprint = server.register_topology(network)
        return {
            "ok": True,
            "fingerprint": fingerprint,
            **_echo_id(request_id),
        }
    if op == "min_cut":
        fingerprint = doc.get("fingerprint")
        if not isinstance(fingerprint, str):
            raise ServeError("min_cut needs a 'fingerprint' string")
        value = server.min_cut(fingerprint, int(doc["u"]), doc.get("v"))
        return {"ok": True, "value": value, **_echo_id(request_id)}
    if op == "metrics":
        fmt = doc.get("format", "prometheus")
        if fmt not in ("prometheus", "json"):
            raise ServeError("metrics 'format' must be 'prometheus' or 'json'")
        reply: Dict[str, Any] = {
            "ok": True,
            "format": fmt,
            "enabled": False,
            **_echo_id(request_id),
        }
        if fmt == "prometheus":
            reply["body"] = ""
            if OBS.enabled:
                reply["enabled"] = True
                reply["body"] = render_prometheus(OBS.registry)
        else:
            reply["metrics"] = {}
            reply["series"] = server.telemetry.series_doc()
            if OBS.enabled:
                reply["enabled"] = True
                reply["metrics"] = render_json(OBS.registry)
        return reply
    if op == "trace":
        trace_id = doc.get("trace")
        if not isinstance(trace_id, str):
            raise ServeError("trace needs a 'trace' id string")
        spans = server.trace_spans(trace_id)
        if spans is None:
            raise ServeError(
                f"unknown trace id {trace_id!r} (expired, or the server "
                "ran without instrumentation)"
            )
        return {
            "ok": True,
            "trace": trace_id,
            "spans": spans,
            **_echo_id(request_id),
        }
    if op == "build":
        response = await server.submit(decode_build_request(doc))
        return encode_response(response, request_id)
    raise ServeError(f"unknown op {op!r}")


def _echo_id(request_id: Optional[Any]) -> Dict[str, Any]:
    return {} if request_id is None else {"id": request_id}


async def _handle_connection(
    server: TreeServer,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        while True:
            try:
                line = await reader.readline()
            except (ConnectionResetError, asyncio.LimitOverrunError):
                break
            if not line:
                break
            text = line.strip()
            if not text:
                continue
            try:
                doc = json.loads(text)
                if not isinstance(doc, dict):
                    raise ValueError("request must be a JSON object")
            except ValueError as exc:
                reply: Dict[str, Any] = encode_error(
                    ServeError(f"bad JSON line: {exc}")
                )
            else:
                reply = await _handle_doc(server, doc)
            writer.write(json.dumps(reply).encode("utf-8") + b"\n")
            await writer.drain()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def start_tcp_server(
    server: TreeServer, host: str = "127.0.0.1", port: int = 0
) -> asyncio.base_events.Server:
    """Bind the JSONL transport; ``port=0`` picks a free port.

    The returned asyncio server's first socket reports the bound address
    (``srv.sockets[0].getsockname()``).  The caller owns both lifecycles:
    close the asyncio server, then ``await tree_server.aclose()``.
    """
    return await asyncio.start_server(
        lambda r, w: _handle_connection(server, r, w),
        host,
        port,
        limit=MAX_LINE_BYTES,
    )


async def serve_forever(
    server: TreeServer, host: str = "127.0.0.1", port: int = 8731
) -> None:
    """Foreground entry: start the transport and serve until cancelled."""
    tcp = await start_tcp_server(server, host, port)
    addr = tcp.sockets[0].getsockname()
    print(f"repro serve: listening on {addr[0]}:{addr[1]} (JSON lines)")
    async with tcp:
        await tcp.serve_forever()
