"""Worker pool: where batched build shards actually execute.

Three modes, one async-facing API (:meth:`WorkerPool.run_shard`):

* ``inline`` — builds run synchronously on the event-loop thread.  Zero
  concurrency, zero pickling, perfectly deterministic scheduling; the mode
  tests and small servers use.
* ``thread`` — builds run on a shared :class:`ThreadPoolExecutor`.  The
  event loop stays responsive while a build computes; CPU parallelism is
  still GIL-bound, so this mode is for latency, not throughput.
* ``process`` — shards are shipped to a shared
  :class:`ProcessPoolExecutor` (the sharded, "as fast as the hardware
  allows" mode).  Work items travel as ``(key, builder, params)`` triples
  next to the topology's pickled payload; each worker process keeps a
  fingerprint-keyed decode memo so a hot topology is unpickled once per
  worker, not once per shard.

The executor is created once and reused for the server's lifetime — the
same discipline :func:`repro.experiments.parallel.parallel_map` supports
via its ``executor`` argument, and :attr:`WorkerPool.executor` exposes the
underlying pool so sweep code can share the very same workers.

Worker-side results cross the process boundary as plain parent maps plus
meta dicts; the server re-binds them to its own ``Network`` object, which
reproduces the identical tree (same parents over the same links ⇒ same
cost/reliability/lifetime floats).  ``BuildResult.raw`` does not survive
the boundary (solver internals are not worth pickling) and is ``None`` for
process-built responses.

Tracing crosses the boundary the same way: a :class:`WorkItem` may carry
the originating request's serialized span context
(:meth:`~repro.obs.spanctx.SpanContext.to_dict`).  The worker mints a
child span id — its process-unique prefix guarantees no collision with
server-side ids — times the build with ``perf_counter``, and ships
``{"ctx": ..., "dur": ...}`` back on the :class:`ShardOutcome`; the
server splices it into the request trace with ``Tracer.add_span``.  With
observability off the context is ``None`` and no clock is read.
"""

from __future__ import annotations

import asyncio
import pickle
import time
import traceback
from collections import OrderedDict
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.tree import AggregationTree
from repro.engine import BuildResult, build_tree
from repro.engine.backend import resolve_backend
from repro.experiments.parallel import default_workers
from repro.network.model import Network
from repro.obs.spanctx import SpanContext
from repro.serve.cache import WarmStructures

__all__ = ["ShardOutcome", "WorkItem", "WorkerPool", "POOL_MODES"]

#: Supported pool modes, in increasing order of machinery.
POOL_MODES = ("inline", "thread", "process")


@dataclass(frozen=True)
class WorkItem:
    """One queued build: the request key plus what the builder needs.

    ``span`` is the originating request's serialized span context
    (``None`` when the server has observability off); it travels with
    the item so the worker-side build span re-attaches to the right
    trace.
    """

    key: str
    builder: str
    params: Mapping[str, Any]
    span: Optional[Dict[str, str]] = None


@dataclass(frozen=True)
class ShardOutcome:
    """One work item's result: a build or a re-raisable error string.

    ``span`` (when the item carried a parent context) is
    ``{"ctx": <serialized child SpanContext>, "dur": seconds}`` — the
    worker-measured build span for the server to splice into the trace.
    It is attached to error outcomes too: failed builds take time.
    """

    key: str
    result: Optional[BuildResult]
    error: Optional[str] = None
    span: Optional[Dict[str, Any]] = None


def _child_span(
    parent: Optional[Dict[str, str]], start: float
) -> Optional[Dict[str, Any]]:
    """Close a worker-side build span against its shipped parent context."""
    if parent is None:
        return None
    child = SpanContext.from_dict(parent).child()
    return {"ctx": child.to_dict(), "dur": time.perf_counter() - start}


def _build_one(
    network: Network, item: WorkItem, backend: Optional[str] = None
) -> ShardOutcome:
    start = time.perf_counter() if item.span is not None else 0.0
    try:
        result = build_tree(
            item.builder, network, backend=backend, **dict(item.params)
        )
        return ShardOutcome(
            key=item.key, result=result, span=_child_span(item.span, start)
        )
    except Exception as exc:  # noqa: BLE001 — reported per item, not fatal
        return ShardOutcome(
            key=item.key,
            result=None,
            error=f"{type(exc).__name__}: {exc}",
            span=_child_span(item.span, start),
        )


def _build_shard_local(
    network: Network, items: Sequence[WorkItem], backend: Optional[str] = None
) -> List[ShardOutcome]:
    return [_build_one(network, item, backend) for item in items]


# ----------------------------------------------------------------------
# Process-mode plumbing (module-level: must pickle by reference)
# ----------------------------------------------------------------------

#: Per-worker-process decode memo: fingerprint -> Network.  Bounded FIFO so
#: a long-lived worker serving many topologies cannot grow without limit.
_WORKER_NETWORKS: "OrderedDict[str, Network]" = OrderedDict()
_WORKER_MEMO_CAPACITY = 64


def _worker_network(fingerprint: str, payload: bytes) -> Network:
    network = _WORKER_NETWORKS.get(fingerprint)
    if network is None:
        network = pickle.loads(payload)
        _WORKER_NETWORKS[fingerprint] = network
        while len(_WORKER_NETWORKS) > _WORKER_MEMO_CAPACITY:
            _WORKER_NETWORKS.popitem(last=False)
    else:
        _WORKER_NETWORKS.move_to_end(fingerprint)
    return network


#: One remote work item on the wire: (key, builder, params, parent span ctx).
_WireItem = Tuple[str, str, Dict[str, Any], Optional[Dict[str, str]]]
#: One remote outcome on the wire: (key, parents, meta, elapsed_s, error, span).
_WireRow = Tuple[
    str,
    Optional[Dict[int, int]],
    Dict[str, Any],
    float,
    Optional[str],
    Optional[Dict[str, Any]],
]


def _build_shard_remote(
    fingerprint: str,
    payload: bytes,
    items: Sequence[_WireItem],
    backend: Optional[str] = None,
) -> List[_WireRow]:
    """Run one shard inside a worker process.

    Returns wire-friendly tuples ``(key, parents, meta, elapsed_s, error,
    span)`` — no ``AggregationTree``/``Network`` objects travel back, only
    the parent map the server re-binds locally plus the worker-measured
    build span (``None`` when the item carried no trace context).
    ``backend`` (a plain string on the wire) scopes every build to that
    TreeState implementation inside the worker process.
    """
    network = _worker_network(fingerprint, payload)
    out: List[_WireRow] = []
    for key, builder, params, parent_span in items:
        start = time.perf_counter() if parent_span is not None else 0.0
        try:
            result = build_tree(builder, network, backend=backend, **params)
            span = _child_span(parent_span, start)
            out.append(
                (
                    key,
                    dict(result.tree.parents),
                    dict(result.meta),
                    result.elapsed_s,
                    None,
                    span,
                )
            )
        except Exception as exc:  # noqa: BLE001 — reported per item
            detail = f"{type(exc).__name__}: {exc}"
            if not str(exc):
                detail = f"{type(exc).__name__}: {traceback.format_exc(limit=1)}"
            out.append((key, None, {}, 0.0, detail, _child_span(parent_span, start)))
    return out


class WorkerPool:
    """A reusable executor with an async shard-execution front end.

    ``backend`` pins every build this pool runs to one TreeState
    implementation (:mod:`repro.engine.backend`) — ``"numpy"`` makes served
    builds array-native in all three modes (the name travels over the wire
    to process workers).  ``None`` leaves each worker on its own ambient
    default (usually ``"object"``, or ``REPRO_ENGINE_BACKEND``).
    """

    def __init__(
        self,
        mode: str = "inline",
        n_workers: Optional[int] = None,
        *,
        backend: Optional[str] = None,
    ) -> None:
        if mode not in POOL_MODES:
            raise ValueError(
                f"mode must be one of {POOL_MODES}, got {mode!r}"
            )
        if n_workers is not None and n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if backend is not None:
            resolve_backend(backend)  # fail fast on unknown names
        self.backend = backend
        self.mode = mode
        self.n_workers = (
            1 if mode == "inline" else (n_workers or default_workers())
        )
        self._executor: Optional[Executor] = None
        if mode == "thread":
            self._executor = ThreadPoolExecutor(
                max_workers=self.n_workers, thread_name_prefix="repro-serve"
            )
        elif mode == "process":
            self._executor = ProcessPoolExecutor(max_workers=self.n_workers)

    @property
    def executor(self) -> Optional[Executor]:
        """The long-lived executor (``None`` in inline mode).

        Exposed so other layers reuse the same workers, e.g.
        ``parallel_map(..., executor=pool.executor)``.
        """
        return self._executor

    @property
    def parallelism(self) -> int:
        """How many shards are worth dispatching concurrently."""
        return self.n_workers

    async def run_shard(
        self, warm: WarmStructures, items: Sequence[WorkItem]
    ) -> List[ShardOutcome]:
        """Execute *items* (all on *warm*'s topology) in this pool."""
        if not items:
            return []
        if self.mode == "inline":
            return _build_shard_local(warm.network, items, self.backend)
        loop = asyncio.get_running_loop()
        if self.mode == "thread":
            return await loop.run_in_executor(
                self._executor,
                _build_shard_local,
                warm.network,
                list(items),
                self.backend,
            )
        wire_items = [
            (item.key, item.builder, dict(item.params), item.span)
            for item in items
        ]
        rows = await loop.run_in_executor(
            self._executor,
            _shard_call,
            warm.fingerprint,
            warm.payload(),
            wire_items,
            self.backend,
        )
        outcomes: List[ShardOutcome] = []
        by_key = {item.key: item for item in items}
        for key, parents, meta, elapsed, error, span in rows:
            if parents is None:
                outcomes.append(
                    ShardOutcome(key=key, result=None, error=error, span=span)
                )
                continue
            item = by_key[key]
            tree = AggregationTree(warm.network, parents)
            outcomes.append(
                ShardOutcome(
                    key=key,
                    result=BuildResult(
                        builder=item.builder,
                        tree=tree,
                        params=dict(item.params),
                        meta=meta,
                        raw=None,
                        elapsed_s=elapsed,
                    ),
                    span=span,
                )
            )
        return outcomes

    def close(self) -> None:
        """Shut the executor down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _shard_call(
    fingerprint: str,
    payload: bytes,
    items: List[_WireItem],
    backend: Optional[str] = None,
):
    """Picklable trampoline for ``run_in_executor`` (no kwargs support)."""
    return _build_shard_remote(fingerprint, payload, items, backend)
