"""Live serve telemetry: snapshot loop, time-series rings, trace buffer.

Two pieces that turn the server's instantaneous state into *queryable
history*:

* :class:`ServeTelemetry` — a periodic sampler (one asyncio task, started
  and stopped with the server) that appends the scheduler's health
  signals into bounded :class:`~repro.obs.export.TimeSeriesRing` buffers:
  queue depth, in-flight count, cumulative hit rate, requests/sec, and —
  when instrumentation is on — per-stage p50/p99 latency read from the
  ``serve.request_seconds`` / ``serve.build_seconds`` histograms.  The
  ``metrics`` TCP op and ``repro obs top`` read these rings.
* :class:`TraceBuffer` — a bounded LRU of completed request traces keyed
  by trace id.  The server appends every span it records (request root,
  queue wait, worker build) here as well as to the active tracer, so a
  TCP client can fetch one request's span tree with the ``trace`` op
  moments after getting its response.

Both are server state, not instrumentation: the sampler task always runs
(one wake-up per ``snapshot_interval_s``, entirely off the request path)
but touches ``OBS.registry`` only behind ``OBS.enabled`` per the REP102
hot-path contract.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.obs import OBS
from repro.obs.export import TimeSeriesRing

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.serve.server import TreeServer

__all__ = ["ServeTelemetry", "TraceBuffer"]


class TraceBuffer:
    """Bounded store of completed request traces (span docs by trace id).

    Append-only per trace; evicts whole least-recently-*written* traces
    beyond *capacity* so a long-lived server holds the most recent few
    hundred requests' traces, never an unbounded log.
    """

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._traces: "OrderedDict[str, List[Dict[str, Any]]]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._traces)

    def add(self, trace_id: str, span_doc: Dict[str, Any]) -> None:
        """Append one span document to *trace_id*'s trace."""
        spans = self._traces.get(trace_id)
        if spans is None:
            spans = self._traces[trace_id] = []
            while len(self._traces) > self.capacity:
                self._traces.popitem(last=False)
        else:
            self._traces.move_to_end(trace_id)
        spans.append(span_doc)

    def get(self, trace_id: str) -> Optional[List[Dict[str, Any]]]:
        """The spans of *trace_id* in record order, or ``None``."""
        spans = self._traces.get(trace_id)
        return list(spans) if spans is not None else None


#: Ring names the sampler maintains unconditionally.
_STATS_SERIES = ("queue_depth", "inflight", "hit_rate", "rps")
#: Ring names that need an active instrumentation session to fill.
_LATENCY_SERIES = (
    "request_p50_ms",
    "request_p99_ms",
    "build_p50_ms",
    "build_p99_ms",
)
#: Histogram families feeding the latency rings.
_STAGE_HISTOGRAMS = {
    "request": "serve.request_seconds",
    "build": "serve.build_seconds",
}


class ServeTelemetry:
    """The server's sampling loop and its ring-buffered time series."""

    def __init__(
        self,
        server: "TreeServer",
        *,
        interval_s: float = 1.0,
        capacity: int = 256,
        trace_capacity: int = 512,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self._server = server
        self.interval_s = interval_s
        self.rings: Dict[str, TimeSeriesRing] = {
            name: TimeSeriesRing(name, capacity)
            for name in _STATS_SERIES + _LATENCY_SERIES
        }
        self.traces = TraceBuffer(trace_capacity)
        self.samples = 0
        self._last_requests: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Trace side
    # ------------------------------------------------------------------
    def record_trace_span(self, trace_id: str, span_doc: Dict[str, Any]) -> None:
        """Store one span doc under its request trace."""
        self.traces.add(trace_id, span_doc)

    def trace(self, trace_id: str) -> Optional[List[Dict[str, Any]]]:
        """Fetch one request's recorded spans (``None`` if unknown)."""
        return self.traces.get(trace_id)

    # ------------------------------------------------------------------
    # Metrics side
    # ------------------------------------------------------------------
    @staticmethod
    def _percentile(values: List[float], p: float) -> Optional[float]:
        """Nearest-rank percentile of merged raw observations."""
        if not values:
            return None
        ordered = sorted(values)
        rank = max(
            0, min(len(ordered) - 1, round(p / 100.0 * (len(ordered) - 1)))
        )
        return ordered[rank]

    def sample_once(self, t: Optional[float] = None) -> None:
        """Append one sample to every ring that has data right now."""
        server = self._server
        if t is None:
            t = time.perf_counter()
        self.samples += 1
        self.rings["queue_depth"].sample(t, server.queue_depth())
        self.rings["inflight"].sample(t, server.inflight_count())
        served = server.results.hits + server.coalesced
        hit_rate = served / server.requests if server.requests else 0.0
        self.rings["hit_rate"].sample(t, hit_rate)

        if self._last_requests is not None:
            t_prev, n_prev = self._last_requests
            if t > t_prev:
                self.rings["rps"].sample(
                    t, (server.requests - n_prev) / (t - t_prev)
                )
        self._last_requests = (t, server.requests)

        if OBS.enabled:
            hists = list(OBS.registry.histograms())
            for stage, hist_name in _STAGE_HISTOGRAMS.items():
                merged = [
                    v
                    for hist in hists
                    if hist.name == hist_name
                    for v in hist.values
                ]
                for p, suffix in ((50.0, "p50"), (99.0, "p99")):
                    value = self._percentile(merged, p)
                    if value is not None:
                        self.rings[f"{stage}_{suffix}_ms"].sample(
                            t, 1000.0 * value
                        )

    async def run(self) -> None:
        """The sampling loop; cancelled by the server's ``aclose``."""
        while True:
            await asyncio.sleep(self.interval_s)
            self.sample_once()

    def series_doc(self) -> Dict[str, Any]:
        """JSON form of every ring (the ``metrics`` op's ``series`` key)."""
        return {name: ring.to_doc() for name, ring in self.rings.items()}

    def snapshot(self) -> Dict[str, Any]:
        """Compact health summary for ``stats``: latest sample per ring."""
        latest: Dict[str, Any] = {}
        for name, ring in self.rings.items():
            sample = ring.latest()
            if sample is not None:
                latest[name] = sample[1]
        return {
            "interval_s": self.interval_s,
            "samples": self.samples,
            "traces_buffered": len(self.traces),
            "latest": latest,
        }
