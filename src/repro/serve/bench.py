"""Synthetic client load for the tree server, and its trajectory file.

The driver builds a deterministic workload — ``n_topologies`` seeded
random graphs × one request per builder — and replays it against an
in-process :class:`~repro.serve.server.TreeServer` in two phases:

* **cold**: every unique request once, submitted in bounded-concurrency
  waves (this exercises admission, batching, and sharding);
* **warm**: ``repeats - 1`` more copies of each unique request in a
  seeded shuffle — the repeat-query regime the result cache exists for.

Each phase is timed separately, so the report carries both a cold
build-throughput number and a warm served-from-cache number.  With
``verify=True`` every unique request is additionally rebuilt cold through
:func:`repro.engine.build_tree` (no server, no cache) and compared
bitwise — parents and exact metric ``repr``s — against the served
response; any mismatch counts as *divergent* and fails the bench
assertions downstream.

``repro serve bench --out BENCH_serve.json`` appends the report to a
trajectory file (one JSON document, a ``runs`` list) so throughput
regressions are visible across PRs; ``benchmarks/test_bench_serve.py``
pins the n=100–500 numbers.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.local_search import bfs_tree
from repro.engine import build_tree, get_builder
from repro.network.model import Network
from repro.network.topology import random_graph
from repro.serve.request import BuildRequest, BuildResponse
from repro.serve.server import ServeConfig, TreeServer
from repro.serve.workers import WorkerPool
from repro.utils.rng import as_rng

__all__ = [
    "BenchReport",
    "append_bench_run",
    "make_workload",
    "run_serve_bench",
]

#: Builders the default workload mixes: cheap enough to sustain load at
#: n=500, and between them they cover deterministic, seeded, lc-bounded,
#: and depth-bounded request shapes.
DEFAULT_BENCH_BUILDERS = ("mst", "spt", "bfs", "random_tree")

BENCH_FORMAT = "repro-bench-serve"
BENCH_VERSION = 1


@dataclass(frozen=True)
class BenchReport:
    """One bench run's measurements (the trajectory-file record)."""

    n_nodes: int
    n_topologies: int
    builders: Tuple[str, ...]
    unique_requests: int
    total_requests: int
    cold_elapsed_s: float
    warm_elapsed_s: float
    hit_rate: float
    built: int
    coalesced: int
    rejected: int
    batches: int
    max_batch: int
    divergent: int
    pool_mode: str
    pool_workers: int
    timestamp: float

    @property
    def cold_rps(self) -> float:
        """Cold build throughput (unique requests / cold phase seconds)."""
        return (
            self.unique_requests / self.cold_elapsed_s
            if self.cold_elapsed_s > 0
            else float("inf")
        )

    @property
    def warm_rps(self) -> float:
        """Warm served throughput (repeat requests / warm phase seconds)."""
        repeats = self.total_requests - self.unique_requests
        return (
            repeats / self.warm_elapsed_s
            if self.warm_elapsed_s > 0
            else float("inf")
        )

    def render(self) -> str:
        """Human-readable summary block."""
        lines = [
            f"serve bench: n={self.n_nodes} nodes × {self.n_topologies} "
            f"topologies × builders {', '.join(self.builders)}",
            f"  pool            {self.pool_mode} ({self.pool_workers} workers)",
            f"  requests        {self.total_requests} total, "
            f"{self.unique_requests} unique",
            f"  cold phase      {self.cold_elapsed_s:.3f}s "
            f"({self.cold_rps:,.0f} req/s built)",
            f"  warm phase      {self.warm_elapsed_s:.3f}s "
            f"({self.warm_rps:,.0f} req/s served)",
            f"  hit rate        {self.hit_rate:.1%}",
            f"  batches         {self.batches} (max batch {self.max_batch})",
            f"  divergent       {self.divergent}",
        ]
        return "\n".join(lines)

    def to_doc(self) -> Dict[str, Any]:
        return {
            "n_nodes": self.n_nodes,
            "n_topologies": self.n_topologies,
            "builders": list(self.builders),
            "unique_requests": self.unique_requests,
            "total_requests": self.total_requests,
            "cold_elapsed_s": self.cold_elapsed_s,
            "warm_elapsed_s": self.warm_elapsed_s,
            "cold_rps": self.cold_rps,
            "warm_rps": self.warm_rps,
            "hit_rate": self.hit_rate,
            "built": self.built,
            "coalesced": self.coalesced,
            "rejected": self.rejected,
            "batches": self.batches,
            "max_batch": self.max_batch,
            "divergent": self.divergent,
            "pool_mode": self.pool_mode,
            "pool_workers": self.pool_workers,
            "timestamp": self.timestamp,
        }


def _bench_params(
    builder: str, network: Network, topology_index: int, seed: int
) -> Tuple[Dict[str, Any], Optional[float], Optional[int]]:
    """(params, lc_bound, seed) making *builder* feasible on *network*."""
    knobs = get_builder(builder).knobs
    params: Dict[str, Any] = {}
    lc_bound: Optional[float] = None
    request_seed: Optional[int] = None
    if "lc" in knobs:
        # Half the BFS tree's bottleneck lifetime is always reachable.
        lc_bound = 0.5 * bfs_tree(network).lifetime()
    if "seed" in knobs:
        request_seed = seed + 7919 * topology_index
    if "max_depth" in knobs:
        seed_tree = bfs_tree(network)
        params["max_depth"] = max(
            seed_tree.depth(v) for v in range(network.n)
        )
    return params, lc_bound, request_seed


def make_workload(
    *,
    n_nodes: int,
    n_topologies: int,
    builders: Sequence[str],
    link_probability: Optional[float] = None,
    seed: int = 0,
) -> Tuple[List[Network], List[BuildRequest]]:
    """Deterministic unique-request set: one per (topology, builder)."""
    if n_topologies < 1:
        raise ValueError(f"n_topologies must be >= 1, got {n_topologies}")
    if not builders:
        raise ValueError("builders must be non-empty")
    if link_probability is None:
        # Aim for a sparse but safely connected G(n, p): ~8 expected
        # neighbors, clamped to the paper's 0.7 for small n.
        link_probability = max(0.03, min(0.7, 8.0 / n_nodes))
    networks = [
        random_graph(
            n_nodes,
            link_probability,
            seed=seed + 100_003 * index,
            ensure_connected=True,
        )
        for index in range(n_topologies)
    ]
    requests: List[BuildRequest] = []
    for index, network in enumerate(networks):
        for builder in builders:
            params, lc_bound, request_seed = _bench_params(
                builder, network, index, seed
            )
            requests.append(
                BuildRequest(
                    builder=builder,
                    network=network,
                    params=params,
                    lc_bound=lc_bound,
                    seed=request_seed,
                )
            )
    return networks, requests


async def _submit_in_waves(
    server: TreeServer,
    requests: Sequence[BuildRequest],
    concurrency: int,
) -> List[BuildResponse]:
    responses: List[BuildResponse] = []
    for start in range(0, len(requests), concurrency):
        wave = requests[start : start + concurrency]
        responses.extend(await asyncio.gather(*(server.submit(r) for r in wave)))
    return responses


def _strip_elapsed(value: Any) -> Any:
    """Drop ``elapsed_s`` keys at any nesting depth (portfolio meta holds
    per-member wall times inside ``metrics["members"]``)."""
    if isinstance(value, dict):
        return {
            k: _strip_elapsed(v) for k, v in value.items() if k != "elapsed_s"
        }
    return value


def _content_signature(response: BuildResponse) -> str:
    """Bitwise content identity, ignoring only wall-clock ``elapsed_s``."""
    stripped = replace(response, metrics=_strip_elapsed(response.metrics))
    return stripped.signature()


def _verify_against_cold(
    served: Dict[str, BuildResponse], requests: Sequence[BuildRequest]
) -> int:
    """Rebuild each unique request cold (no server) and count divergence."""
    from repro.network.serialization import topology_fingerprint
    from repro.serve.request import effective_params, request_key
    from repro.serve.server import make_response

    divergent = 0
    for request in requests:
        params = effective_params(request)
        fingerprint = topology_fingerprint(request.network)
        key = request_key(fingerprint, request.builder, params)
        cold = build_tree(request.builder, request.network, **params)
        cold_response = make_response(
            cold, fingerprint, key, hit=False, source="built"
        )
        if _content_signature(cold_response) != _content_signature(
            served[key]
        ):
            divergent += 1
    return divergent


def run_serve_bench(
    *,
    n_nodes: int = 120,
    n_topologies: int = 3,
    builders: Sequence[str] = DEFAULT_BENCH_BUILDERS,
    repeats: int = 12,
    link_probability: Optional[float] = None,
    seed: int = 0,
    mode: str = "inline",
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    concurrency: int = 32,
    config: Optional[ServeConfig] = None,
    verify: bool = True,
) -> BenchReport:
    """Run the synthetic workload once and return its report.

    ``repeats`` is the total number of times each unique request is issued
    (1 cold + ``repeats - 1`` warm), so the expected hit rate is
    ``1 - 1/repeats`` — ≥ 90% from ``repeats=10`` up.  ``backend`` pins
    the pool's TreeState implementation (see :mod:`repro.engine.backend`).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    _, unique = make_workload(
        n_nodes=n_nodes,
        n_topologies=n_topologies,
        builders=builders,
        link_probability=link_probability,
        seed=seed,
    )

    async def _drive() -> Tuple[Dict[str, Any], Dict[str, BuildResponse], float, float]:
        pool = WorkerPool(mode=mode, n_workers=workers, backend=backend)
        served: Dict[str, BuildResponse] = {}
        async with TreeServer(pool=pool, config=config) as server:
            start = time.perf_counter()
            cold_responses = await _submit_in_waves(server, unique, concurrency)
            cold_elapsed = time.perf_counter() - start
            for response in cold_responses:
                served[response.cache_info.key] = response

            warm_requests = [r for r in unique for _ in range(repeats - 1)]
            order = as_rng(seed).permutation(len(warm_requests))
            warm_requests = [warm_requests[i] for i in order]
            start = time.perf_counter()
            await _submit_in_waves(server, warm_requests, concurrency)
            warm_elapsed = time.perf_counter() - start
            stats = server.stats()
        pool.close()
        return stats, served, cold_elapsed, warm_elapsed

    stats, served, cold_elapsed, warm_elapsed = asyncio.run(_drive())
    divergent = _verify_against_cold(served, unique) if verify else 0
    return BenchReport(
        n_nodes=n_nodes,
        n_topologies=n_topologies,
        builders=tuple(builders),
        unique_requests=len(unique),
        total_requests=len(unique) * repeats,
        cold_elapsed_s=cold_elapsed,
        warm_elapsed_s=warm_elapsed,
        hit_rate=float(stats["hit_rate"]),
        built=int(stats["built"]),
        coalesced=int(stats["coalesced"]),
        rejected=int(stats["rejected"]),
        batches=int(stats["batches"]),
        max_batch=int(stats["max_batch"]),
        divergent=divergent,
        pool_mode=str(stats["pool_mode"]),
        pool_workers=int(stats["pool_workers"]),
        timestamp=time.time(),
    )


def append_bench_run(
    path: Union[str, Path], report: BenchReport
) -> Dict[str, Any]:
    """Append *report* to the trajectory file at *path* (created if absent).

    The file is one JSON document: ``{"format": ..., "version": 1,
    "runs": [...]}`` with runs in append order — the cross-PR throughput
    trajectory.  Returns the written document.
    """
    target = Path(path)
    if target.exists():
        doc = json.loads(target.read_text(encoding="utf-8"))
        if doc.get("format") != BENCH_FORMAT:
            raise ValueError(
                f"{target} is not a {BENCH_FORMAT} document "
                f"(format={doc.get('format')!r})"
            )
    else:
        doc = {"format": BENCH_FORMAT, "version": BENCH_VERSION, "runs": []}
    doc["runs"].append(report.to_doc())
    target.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return doc
