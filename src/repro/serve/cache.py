"""The serving layer's two cache tiers.

Tier 1 — :class:`ResultCache`: a bounded LRU mapping full request keys
(topology fingerprint + builder + canonical effective params) to finished
:class:`~repro.engine.BuildResult` objects.  ``AggregationTree`` is
immutable (lint rule REP105 enforces it), so hits hand back the stored tree
itself; a repeat query costs two dict operations.

Tier 2 — :class:`StructureCache`: per-*fingerprint* warm state shared by
every request on a topology, whatever its builder, LC bound, or seed.  A
:class:`WarmStructures` entry memoizes, lazily:

* the topology fingerprint itself (computed once per ``Network`` object,
  via a weak identity map — O(E) hashing leaves the per-request path);
* the pickled network payload shipped to worker processes (pickled once,
  re-sent cheaply; workers keep their own fingerprint-keyed decode memo,
  see :mod:`repro.serve.workers`);
* connectivity, for admission prechecks;
* the Gomory–Hu cut tree (:mod:`repro.utils.gomoryhu`), so min-cut /
  separation-style queries against one topology pay the ``n - 1`` max-flow
  construction once and every later probe — e.g. sweeping nearby LC values
  and asking how well-connected a bottleneck node is — is a tree walk.

Both tiers expose hit/miss/eviction counts that the server surfaces through
``repro.obs`` and ``stats()``.
"""

from __future__ import annotations

import pickle
import weakref
from collections import OrderedDict
from typing import Dict, Optional

from repro.engine import BuildResult
from repro.network.model import Network
from repro.network.serialization import topology_fingerprint
from repro.serve.request import UnknownTopologyError
from repro.utils.gomoryhu import GomoryHuTree, build_gomory_hu_tree

__all__ = ["ResultCache", "StructureCache", "WarmStructures"]


class ResultCache:
    """Bounded LRU store of finished builds, keyed by request key."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[str, BuildResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[BuildResult]:
        """The cached build for *key*, refreshing its recency; else None."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: str, result: BuildResult) -> None:
        """Insert (or refresh) *key*; evicts the least-recent overflow."""
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    @property
    def hit_rate(self) -> float:
        """Hits over lookups so far (0.0 before the first lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class WarmStructures:
    """Everything reusable about one topology, built at most once.

    Instances are created by :class:`StructureCache` and shared by every
    request with the same fingerprint.  The serving layer treats the
    underlying network as frozen; re-registering a *changed* topology
    yields a different fingerprint and therefore a fresh entry.
    """

    __slots__ = (
        "fingerprint",
        "network",
        "_payload",
        "_connected",
        "_cut_tree",
        "cut_queries",
    )

    def __init__(self, fingerprint: str, network: Network) -> None:
        self.fingerprint = fingerprint
        self.network = network
        self._payload: Optional[bytes] = None
        self._connected: Optional[bool] = None
        self._cut_tree: Optional[GomoryHuTree] = None
        #: Min-cut probes answered from the memoized cut tree.
        self.cut_queries = 0

    def payload(self) -> bytes:
        """Pickled network bytes for worker-process shipment (memoized)."""
        if self._payload is None:
            self._payload = pickle.dumps(
                self.network, protocol=pickle.HIGHEST_PROTOCOL
            )
        return self._payload

    def is_connected(self) -> bool:
        """Memoized sink-reachability — the admission precheck."""
        if self._connected is None:
            self._connected = self.network.is_connected()
        return self._connected

    def cut_tree(self) -> GomoryHuTree:
        """The memoized Gomory–Hu tree over PRR capacities."""
        if self._cut_tree is None:
            self._cut_tree = build_gomory_hu_tree(
                self.network.n,
                [(e.u, e.v, e.prr) for e in self.network.edges()],
            )
        return self._cut_tree

    def min_cut(self, u: int, v: Optional[int] = None) -> float:
        """Min-cut value between *u* and *v* (default: the sink).

        First call per topology builds the cut tree (``n - 1`` max flows);
        every later call — any pair, any LC sweep — is a tree-path walk.
        """
        target = self.network.sink if v is None else v
        value = self.cut_tree().min_cut_value(u, target)
        self.cut_queries += 1
        return value


class StructureCache:
    """Fingerprint-keyed LRU of :class:`WarmStructures`.

    Also memoizes ``topology_fingerprint`` per live ``Network`` object
    (weak identity map, so retired networks do not pin memory): the O(E)
    canonical hash runs once per topology object, not once per request.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[str, WarmStructures]" = OrderedDict()
        self._fingerprints: "weakref.WeakValueDictionary[int, Network]" = (
            weakref.WeakValueDictionary()
        )
        self._fingerprint_by_id: Dict[int, str] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def fingerprint_of(self, network: Network) -> str:
        """Memoized :func:`topology_fingerprint` of a live network object."""
        key = id(network)
        if self._fingerprints.get(key) is network:
            return self._fingerprint_by_id[key]
        fingerprint = topology_fingerprint(network)
        self._fingerprints[key] = network
        self._fingerprint_by_id[key] = fingerprint
        # Drop ids whose network has been garbage collected (id reuse).
        for stale in [
            k for k in self._fingerprint_by_id if k not in self._fingerprints
        ]:
            del self._fingerprint_by_id[stale]
        return fingerprint

    def get(self, fingerprint: str) -> Optional[WarmStructures]:
        """The warm entry for *fingerprint*, refreshing recency; else None."""
        entry = self._entries.get(fingerprint)
        if entry is not None:
            self._entries.move_to_end(fingerprint)
        return entry

    def get_or_create(
        self, fingerprint: str, network: Optional[Network]
    ) -> WarmStructures:
        """Resolve warm structures, creating them when *network* is given.

        A fingerprint-only request (``network is None``) for a topology the
        server has never seen raises :class:`UnknownTopologyError` — the
        client must (re)upload the network.
        """
        entry = self.get(fingerprint)
        if entry is not None:
            self.hits += 1
            return entry
        self.misses += 1
        if network is None:
            raise UnknownTopologyError(
                f"no registered topology with fingerprint {fingerprint[:16]}…; "
                "send the network once to register it"
            )
        entry = WarmStructures(fingerprint, network)
        self._entries[fingerprint] = entry
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        return entry

    def stats(self) -> Dict[str, float]:
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "cut_queries": sum(e.cut_queries for e in self._entries.values()),
        }
