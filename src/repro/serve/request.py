"""Typed request/response model for the tree-serving layer.

A :class:`BuildRequest` names *what* to build — a topology, a registered
builder, its config knobs, an optional lifetime bound and seed — and the
server answers with a :class:`BuildResponse` carrying the tree, its summary
metrics, and a :class:`CacheInfo` describing where the answer came from.

Two derived identities make the cache tiers work:

* the **topology fingerprint** (:func:`repro.network.serialization.
  topology_fingerprint`) — content address of the network alone, shared by
  every request on that topology regardless of builder or knobs;
* the **request key** (:func:`request_key`) — SHA-256 over fingerprint +
  builder name + the canonical JSON of the *effective* params, so
  ``BuildRequest(..., lc_bound=500)`` and ``BuildRequest(...,
  params={"lc": 500})`` address the same cache slot and knob ordering
  never matters.

Builders stay pure functions of ``(network, params, seed)``: the request
model resolves knob defaults through the registry
(:mod:`repro.engine.registry`) and refuses seeds or lifetime bounds the
named builder does not declare, instead of silently dropping them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

import numpy as np

from repro.core.tree import AggregationTree
from repro.engine import get_builder
from repro.network.model import Network

__all__ = [
    "BuildRequest",
    "BuildResponse",
    "CacheInfo",
    "ServeError",
    "ServerOverloadedError",
    "UnknownTopologyError",
    "canonical_params_json",
    "effective_params",
    "request_key",
]


class ServeError(RuntimeError):
    """Base class for tree-serving errors (bad requests, admission, ...)."""


class ServerOverloadedError(ServeError):
    """Raised at admission when the pending-request ceiling is reached.

    This is the backpressure signal: the request was *not* queued, and the
    client should retry after backing off (or the load driver should slow
    down).  Queued work is never dropped.
    """


class UnknownTopologyError(ServeError):
    """A fingerprint-only request referenced a topology never registered."""


@dataclass(frozen=True)
class BuildRequest:
    """One tree-construction request.

    Attributes:
        builder: Registry name of the algorithm (``"ira"``, ``"mst"``, ...).
        network: The topology to build on.  May be ``None`` when
            *fingerprint* names a topology the server has already seen —
            the wire protocol uses this so clients upload a network once
            and then address it by content hash.
        params: Builder config knobs (the registry validates them at build
            time; unknown knobs fail inside the builder).
        lc_bound: Convenience alias for the paper's lifetime bound; merged
            into ``params["lc"]`` for builders that declare an ``lc`` knob.
        seed: Deterministic seed, merged into ``params["seed"]`` for
            builders that declare one (randomized builders must be replayable
            for the cache-identity guarantee to hold).
        fingerprint: Optional precomputed topology fingerprint; trusted as
            the topology's identity when given, so hot clients fingerprint
            once per topology instead of once per request.
    """

    builder: str
    network: Optional[Network] = None
    params: Mapping[str, Any] = field(default_factory=dict)
    lc_bound: Optional[float] = None
    seed: Optional[int] = None
    fingerprint: Optional[str] = None

    def __post_init__(self) -> None:
        if self.network is None and self.fingerprint is None:
            raise ServeError(
                "BuildRequest needs a network or a fingerprint referencing "
                "a previously registered topology"
            )
        object.__setattr__(self, "params", dict(self.params))


@dataclass(frozen=True)
class CacheInfo:
    """Where a response came from, for observability and tests.

    Attributes:
        hit: Whether the build itself was skipped (result-store hit or
            coalesced onto an identical in-flight request).
        source: ``"result"`` (content-addressed store), ``"inflight"``
            (coalesced), or ``"built"`` (cold build this request).
        fingerprint: Topology fingerprint of the request.
        key: Full request key (fingerprint + builder + effective params).
    """

    hit: bool
    source: str
    fingerprint: str
    key: str


@dataclass(frozen=True)
class BuildResponse:
    """The server's answer to one :class:`BuildRequest`.

    Attributes:
        builder: Registry name that produced the tree.
        tree: The constructed aggregation tree.
        metrics: Flat summary — ``cost`` / ``reliability`` / ``lifetime`` /
            ``elapsed_s`` plus the builder's own meta entries.
        cache_info: Provenance of the answer (cache tier, keys).
        trace_id: Request trace id when the server had instrumentation
            active; quote it to the ``trace`` TCP op to fetch this
            request's span tree.  ``None`` with observability off.
            Excluded from :meth:`signature` — provenance, not content.
    """

    builder: str
    tree: AggregationTree
    metrics: Dict[str, Any]
    cache_info: CacheInfo
    trace_id: Optional[str] = None

    def signature(self) -> str:
        """Canonical text form of the *served content* (tree + metrics).

        Two responses are bitwise-identical answers iff their signatures
        are equal: parents in sorted node order and every float rendered
        with ``repr`` (the shortest exact round-trip form).  Tests use this
        to pin that cache hits equal cold builds without comparing floats
        with ``==`` at hundreds of call sites.
        """
        parents = ",".join(
            f"{v}:{p}" for v, p in sorted(self.tree.parents.items())
        )
        metrics = ",".join(
            f"{k}={_canonical_scalar(self.metrics[k])}"
            for k in sorted(self.metrics)
        )
        return f"{self.builder}|{parents}|{metrics}"


def _canonical_scalar(value: Any) -> Any:
    """Normalize one leaf value for hashing/signatures (dtype-stable)."""
    if isinstance(value, bool):  # before int: bool is an int subclass
        return value
    if isinstance(value, (np.floating, float)):
        return repr(float(value))
    if isinstance(value, (np.integer, int)):
        return int(value)
    if value is None or isinstance(value, str):
        return value
    if isinstance(value, (list, tuple)):
        return [_canonical_scalar(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _canonical_scalar(v) for k, v in value.items()}
    return repr(value)


def canonical_params_json(params: Mapping[str, Any]) -> str:
    """Sorted-key, dtype-normalized JSON of a params mapping.

    Key order and numpy scalar types never change the output, so the
    request key is stable across call-site styles.
    """
    return json.dumps(
        {str(k): _canonical_scalar(v) for k, v in params.items()},
        sort_keys=True,
        separators=(",", ":"),
    )


def effective_params(request: BuildRequest) -> Dict[str, Any]:
    """Merge ``lc_bound``/``seed`` sugar into the builder's knob namespace.

    Raises :class:`ServeError` when the sugar conflicts with an explicit
    param or names a knob the builder does not declare — dropping either
    silently would cache a different build than the client asked for.
    """
    builder = get_builder(request.builder)
    params = dict(request.params)
    if request.lc_bound is not None:
        if "lc" not in builder.knobs:
            raise ServeError(
                f"builder {request.builder!r} takes no lifetime bound "
                f"(lc_bound={request.lc_bound!r})"
            )
        if "lc" in params:
            raise ServeError(
                "request sets both params['lc'] and lc_bound; pass one"
            )
        params["lc"] = float(request.lc_bound)
    if request.seed is not None:
        if "seed" not in builder.knobs:
            raise ServeError(
                f"builder {request.builder!r} is deterministic and takes "
                f"no seed (seed={request.seed!r})"
            )
        if "seed" in params:
            raise ServeError(
                "request sets both params['seed'] and seed; pass one"
            )
        params["seed"] = int(request.seed)
    return params


def request_key(fingerprint: str, builder: str, params: Mapping[str, Any]) -> str:
    """Content address of one (topology, builder, effective params) build."""
    material = f"{fingerprint}|{builder}|{canonical_params_json(params)}"
    return hashlib.sha256(material.encode("utf-8")).hexdigest()
