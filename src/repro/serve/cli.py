"""``repro serve`` — run the tree server or drive synthetic load at it.

Examples::

    repro serve run                          # foreground JSONL server :8731
    repro serve run --port 0 --mode process  # free port, sharded workers
    repro serve run --slo build:0.25         # declare a build-latency SLO
    repro serve run --no-obs                 # no metrics export / tracing
    repro serve bench --nodes 200            # synthetic repeat-query load
    repro serve bench --mode process --workers 4 --out BENCH_serve.json

``run`` starts the asyncio TCP front end (JSON lines; see
:mod:`repro.serve.protocol` for the operations) and serves until
interrupted.  ``bench`` runs the in-process synthetic workload
(:mod:`repro.serve.bench`), prints the throughput/hit-rate report, and
with ``--out`` appends it to the ``BENCH_serve.json`` trajectory file.
"""

from __future__ import annotations

import argparse
import asyncio
from typing import List, Optional

from repro.engine.backend import available_tree_backends
from repro.obs.slo import SLO
from repro.serve.bench import (
    DEFAULT_BENCH_BUILDERS,
    append_bench_run,
    run_serve_bench,
)
from repro.serve.server import ServeConfig, TreeServer
from repro.serve.workers import POOL_MODES, WorkerPool

__all__ = ["serve_main", "build_serve_parser"]


def _add_pool_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--mode",
        choices=POOL_MODES,
        default="inline",
        help="worker pool mode (default inline; 'process' shards across "
        "CPU cores)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for thread/process modes (default: cores - 1)",
    )
    parser.add_argument(
        "--backend",
        choices=available_tree_backends(),
        default=None,
        help="TreeState backend every build runs on ('numpy' = array-"
        "native; default: ambient/REPRO_ENGINE_BACKEND)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=16,
        help="max requests per micro-batch (default 16)",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=1024,
        help="admission ceiling before ServerOverloadedError (default 1024)",
    )


def build_serve_parser() -> argparse.ArgumentParser:
    """Construct the ``repro serve`` argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Long-running MRLC tree-serving layer over the builder "
        "registry: batched, sharded, content-addressed-cached.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="foreground JSON-lines TCP server")
    run.add_argument("--host", default="127.0.0.1", help="bind address")
    run.add_argument(
        "--port", type=int, default=8731, help="TCP port (0 = pick free)"
    )
    run.add_argument(
        "--no-obs",
        action="store_true",
        help="run without an instrumentation session (no metrics export, "
        "no request traces; default is instrumented)",
    )
    run.add_argument(
        "--slo",
        action="append",
        default=[],
        metavar="OP:BUDGET_S[:LATENCY_TARGET[:ERROR_TARGET]]",
        help="declare a latency/error objective, e.g. 'build:0.25' or "
        "'build:0.25:0.99:0.999'; repeatable, surfaced in the stats op",
    )
    run.add_argument(
        "--snapshot-interval",
        type=float,
        default=1.0,
        help="telemetry sampling interval in seconds (default 1.0)",
    )
    _add_pool_options(run)

    bench = sub.add_parser(
        "bench", help="drive a synthetic repeat-query workload in-process"
    )
    bench.add_argument(
        "--nodes", type=int, default=120, help="network size (default 120)"
    )
    bench.add_argument(
        "--topologies",
        type=int,
        default=3,
        help="distinct topologies in the workload (default 3)",
    )
    bench.add_argument(
        "--builders",
        default=",".join(DEFAULT_BENCH_BUILDERS),
        help="comma-separated registry builder names "
        f"(default {','.join(DEFAULT_BENCH_BUILDERS)})",
    )
    bench.add_argument(
        "--repeats",
        type=int,
        default=12,
        help="times each unique request is issued (default 12 → ~92%% "
        "expected hit rate)",
    )
    bench.add_argument(
        "--seed", type=int, default=0, help="workload seed (default 0)"
    )
    bench.add_argument(
        "--concurrency",
        type=int,
        default=32,
        help="in-flight submissions per wave (default 32)",
    )
    bench.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the cold-rebuild divergence check (faster)",
    )
    bench.add_argument(
        "--out",
        default=None,
        help="append the report to this BENCH_serve.json trajectory file",
    )
    _add_pool_options(bench)
    return parser


def _serve_config(args: argparse.Namespace) -> ServeConfig:
    return ServeConfig(
        batch_size=args.batch_size, max_pending=args.max_pending
    )


#: The --slo grammar, quoted by every parse error so a typo'd flag never
#: surfaces as a bare float() complaint.
_SLO_USAGE = "OP:BUDGET_S[:LATENCY_TARGET[:ERROR_TARGET]]"


def _parse_slo(spec: str) -> SLO:
    parts = spec.split(":")
    if not 2 <= len(parts) <= 4 or not parts[0]:
        raise ValueError(f"--slo expects {_SLO_USAGE}, got {spec!r}")
    labels = ("latency budget", "latency target", "error target")
    values = []
    for label, text in zip(labels, parts[1:]):
        try:
            values.append(float(text))
        except ValueError:
            raise ValueError(
                f"--slo {label} must be a number, got {text!r} "
                f"(expected {_SLO_USAGE})"
            ) from None
    if values[0] <= 0:
        raise ValueError(
            f"--slo latency budget must be positive, got {parts[1]!r} "
            f"(expected {_SLO_USAGE})"
        )
    for label, value, text in zip(labels[1:], values[1:], parts[2:]):
        # The burn-rate math in repro.obs.slo needs strictly 0 < target < 1;
        # a target of exactly 1 would make every window a violation anyway.
        if not 0.0 < value < 1.0:
            raise ValueError(
                f"--slo {label} must be a fraction in (0, 1), got {text!r} "
                f"(expected {_SLO_USAGE})"
            )
    kwargs = {"op": parts[0], "latency_budget_s": values[0]}
    if len(values) >= 2:
        kwargs["latency_target"] = values[1]
    if len(values) == 3:
        kwargs["error_target"] = values[2]
    return SLO(**kwargs)


def _run_server(args: argparse.Namespace) -> int:
    from repro.obs import instrument
    from repro.serve.tcp import serve_forever

    try:
        slos = tuple(_parse_slo(spec) for spec in args.slo)
    except ValueError as exc:
        print(f"repro serve: {exc}")
        return 2
    config = ServeConfig(
        batch_size=args.batch_size,
        max_pending=args.max_pending,
        slos=slos,
        snapshot_interval_s=args.snapshot_interval,
    )

    async def _main() -> None:
        pool = WorkerPool(
            mode=args.mode, n_workers=args.workers, backend=args.backend
        )
        async with TreeServer(pool=pool, config=config) as server:
            await serve_forever(server, args.host, args.port)

    try:
        if args.no_obs:
            asyncio.run(_main())
        else:
            # The instrumentation session makes the metrics/trace ops live
            # for the whole server lifetime.
            with instrument(params={"serve": True}):
                asyncio.run(_main())
    except KeyboardInterrupt:
        print("repro serve: interrupted, shutting down")
    return 0


def _run_bench(args: argparse.Namespace) -> int:
    builders = tuple(
        name.strip() for name in args.builders.split(",") if name.strip()
    )
    report = run_serve_bench(
        n_nodes=args.nodes,
        n_topologies=args.topologies,
        builders=builders,
        repeats=args.repeats,
        seed=args.seed,
        mode=args.mode,
        workers=args.workers,
        backend=args.backend,
        concurrency=args.concurrency,
        config=_serve_config(args),
        verify=not args.no_verify,
    )
    print(report.render())
    if args.out:
        append_bench_run(args.out, report)
        print(f"[appended run to {args.out}]")
    return 1 if report.divergent else 0


def serve_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro serve ...``; returns the exit code."""
    parser = build_serve_parser()
    args = parser.parse_args(argv)
    for name in ("workers", "batch_size", "max_pending"):
        value = getattr(args, name, None)
        if value is not None and value < 1:
            parser.error(f"--{name.replace('_', '-')} must be positive")
    if args.command == "run":
        if args.snapshot_interval <= 0:
            parser.error("--snapshot-interval must be positive")
        return _run_server(args)
    if getattr(args, "repeats", 1) < 1 or getattr(args, "topologies", 1) < 1:
        parser.error("--repeats and --topologies must be positive")
    if getattr(args, "concurrency", 1) < 1:
        parser.error("--concurrency must be positive")
    return _run_bench(args)
