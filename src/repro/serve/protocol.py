"""JSON-lines wire protocol for the tree server.

Each request and response is one JSON document per line.  Operations:

``{"op": "ping"}``
    → ``{"ok": true, "op": "ping"}`` — liveness probe.

``{"op": "register", "network": {<repro-network doc>}}``
    → ``{"ok": true, "fingerprint": "..."}`` — upload a topology once;
    later builds may reference it by fingerprint only.

``{"op": "build", "builder": "ira", "network": {...} | null,
"fingerprint": "..." | null, "params": {...}, "lc": 900000, "seed": 7,
"id": "anything"}``
    → ``{"ok": true, "id": ..., "builder": ..., "fingerprint": ...,
    "key": ..., "cache": {"hit": ..., "source": ...}, "metrics": {...},
    "tree": {<repro-tree doc>}}`` — the build itself.  ``id`` is echoed
    verbatim so clients can pipeline requests on one connection.

``{"op": "stats"}``
    → ``{"ok": true, "stats": {...}}`` — the server's
    :meth:`~repro.serve.server.TreeServer.stats` snapshot.

``{"op": "min_cut", "fingerprint": "...", "u": 3, "v": 0}``
    → ``{"ok": true, "value": ...}`` — probe the topology's memoized
    Gomory–Hu structure (``v`` defaults to the sink).

``{"op": "metrics", "format": "prometheus" | "json"}``
    → ``{"ok": true, "format": "prometheus", "enabled": ..., "body":
    "<exposition text>"}`` or ``{"ok": true, "format": "json",
    "enabled": ..., "metrics": {...}, "series": {...}}`` — a live export
    of the server's metrics registry (Prometheus text or JSON snapshot)
    plus, in JSON form, the telemetry rings.  ``enabled`` is ``false``
    (and the registry payload empty) when the server runs without an
    instrumentation session; the time-series rings are served either way.

``{"op": "trace", "trace": "<trace_id>"}``
    → ``{"ok": true, "trace": ..., "spans": [...]}`` — the span
    documents of one request's trace, as quoted by a build response's
    ``trace`` key.  Unknown (or expired) ids are ``bad-request`` errors.

When the server traced a build, its response carries a ``trace`` key with
the request's trace id.

Errors come back as ``{"ok": false, "error": "...", "kind":
"overloaded" | "unknown-topology" | "bad-request"}`` with the request
``id`` echoed when present; ``overloaded`` is the backpressure signal and
the only kind worth retrying verbatim.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.network.serialization import network_from_dict, tree_to_dict
import numpy as np

from repro.serve.request import (
    BuildRequest,
    BuildResponse,
    ServeError,
    ServerOverloadedError,
    UnknownTopologyError,
)

__all__ = [
    "decode_build_request",
    "encode_error",
    "encode_response",
]


def _jsonable(value: Any) -> Any:
    """Coerce builder meta values to plain JSON types for the wire."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


def decode_build_request(doc: Dict[str, Any]) -> BuildRequest:
    """Parse a ``build`` op document into a :class:`BuildRequest`.

    Raises :class:`ServeError` on structural problems so the transport can
    answer with a ``bad-request`` error instead of dropping the line.
    """
    builder = doc.get("builder")
    if not isinstance(builder, str) or not builder:
        raise ServeError("build request needs a 'builder' name")
    network_doc = doc.get("network")
    network = None
    if network_doc is not None:
        try:
            network = network_from_dict(network_doc)
        except (KeyError, TypeError, ValueError) as exc:
            raise ServeError(f"bad network document: {exc}") from exc
    params = doc.get("params") or {}
    if not isinstance(params, dict):
        raise ServeError("'params' must be an object")
    fingerprint = doc.get("fingerprint")
    if fingerprint is not None and not isinstance(fingerprint, str):
        raise ServeError("'fingerprint' must be a string")
    return BuildRequest(
        builder=builder,
        network=network,
        params=params,
        lc_bound=doc.get("lc"),
        seed=doc.get("seed"),
        fingerprint=fingerprint,
    )


def encode_response(
    response: BuildResponse, request_id: Optional[Any] = None
) -> Dict[str, Any]:
    """Serialize a :class:`BuildResponse` to its wire document."""
    info = response.cache_info
    doc: Dict[str, Any] = {
        "ok": True,
        "builder": response.builder,
        "fingerprint": info.fingerprint,
        "key": info.key,
        "cache": {"hit": info.hit, "source": info.source},
        "metrics": {k: _jsonable(v) for k, v in response.metrics.items()},
        "tree": tree_to_dict(response.tree),
    }
    if response.trace_id is not None:
        doc["trace"] = response.trace_id
    if request_id is not None:
        doc["id"] = request_id
    return doc


def encode_error(
    error: BaseException, request_id: Optional[Any] = None
) -> Dict[str, Any]:
    """Serialize any serve-side failure to its wire document."""
    if isinstance(error, ServerOverloadedError):
        kind = "overloaded"
    elif isinstance(error, UnknownTopologyError):
        kind = "unknown-topology"
    else:
        kind = "bad-request"
    doc: Dict[str, Any] = {
        "ok": False,
        "kind": kind,
        "error": f"{type(error).__name__}: {error}",
    }
    if request_id is not None:
        doc["id"] = request_id
    return doc
