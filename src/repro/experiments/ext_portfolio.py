"""Extension: portfolio tournament — which builder wins where?

The ``portfolio`` meta-builder (:mod:`repro.engine.portfolio`) races a
member set and keeps the best LC-feasible tree.  This experiment asks the
question that justifies carrying a portfolio at all: *does any single
member dominate?*  It sweeps instance size, lifetime-bound tightness, and
topology family (Bernoulli random graphs vs. unit-disk deployments with
log-normal shadowing), runs one deterministic race per trial, and tabulates
each member's win rate per cell.

If one member won every cell the portfolio would be dead weight — you
would just call that builder.  The default panel therefore races the
LC-*blind* specialists (the paper's MST reliability bound plus the four
related-work builders), where the crossover actually lives: the MST takes
the loose-bound cells outright, the lifetime-greedy CLMT takes the tight
ones, and the in-between cells split — precisely the regime where racing
pays.  (``local_search`` is deliberately not in this panel: being LC-aware
it wins essentially every cell, which is an argument for *it*, not a
tournament.)

Races here are serial and budget-free, so every trial is a pure function
of its seed; trial-level parallelism comes from
:func:`~repro.experiments.parallel.parallel_map` (``--jobs``) with
bitwise-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Tuple

from repro.engine.portfolio import race_builders, select_winner
from repro.engine.registry import build_tree
from repro.experiments.parallel import parallel_map
from repro.network.model import Network
from repro.network.topology import random_graph, unit_disk_graph
from repro.utils.ascii_chart import bar_chart
from repro.utils.rng import stable_hash_seed
from repro.utils.tables import format_table

__all__ = [
    "CellWinRates",
    "ExtPortfolioResult",
    "PORTFOLIO_TOURNAMENT_MEMBERS",
    "run_ext_portfolio",
]

#: Default tournament panel: the paper's MST reliability bound plus the
#: related-work lifetime/energy specialists — all LC-blind and
#: parameter-free, so the race needs no per-member tuning and the win-rate
#: table is a pure property of each algorithm's trade-off point.
PORTFOLIO_TOURNAMENT_MEMBERS: Tuple[str, ...] = (
    "mst",
    "min_energy",
    "clmt",
    "dlmt",
    "convergecast",
)

#: Sweep cells: (topology, n_nodes, lc_fraction).  Two topology families ×
#: two sizes × two bound tightnesses (0.4 of the max lifetime is loose,
#: 0.8 is tight — the crossover sits between them).
DEFAULT_CELLS: Tuple[Tuple[str, int, float], ...] = (
    ("random", 16, 0.4),
    ("random", 16, 0.8),
    ("random", 30, 0.4),
    ("random", 30, 0.8),
    ("disk", 16, 0.4),
    ("disk", 16, 0.8),
    ("disk", 30, 0.4),
    ("disk", 30, 0.8),
)


@dataclass(frozen=True)
class CellWinRates:
    """One sweep cell's tournament outcome.

    Attributes:
        topology: ``"random"`` (Bernoulli G(n, p)) or ``"disk"``
            (unit-disk deployment with log-normal shadowing).
        n_nodes: Instance size.
        lc_fraction: The LC bound as a fraction of the instance's AAML
            (max-lifetime) bottleneck — 0.4 is loose, 0.8 is tight.
        wins: Race wins per member over the cell's trials.
        feasible_fraction: Fraction of trials whose *winner* met LC.
    """

    topology: str
    n_nodes: int
    lc_fraction: float
    wins: Dict[str, int]
    feasible_fraction: float


@dataclass(frozen=True)
class ExtPortfolioResult:
    """Win-rate table of the portfolio tournament."""

    members: Tuple[str, ...]
    cells: Tuple[CellWinRates, ...]
    n_trials: int

    def overall_wins(self) -> Dict[str, int]:
        totals = {m: 0 for m in self.members}
        for cell in self.cells:
            for member, count in cell.wins.items():
                totals[member] += count
        return totals

    def render(self) -> str:
        header = ["topology", "n", "lc/L*"] + list(self.members) + ["feasible"]
        rows: List[List[object]] = []
        for cell in self.cells:
            rows.append(
                [cell.topology, cell.n_nodes, cell.lc_fraction]
                + [
                    f"{cell.wins.get(m, 0) / self.n_trials:.0%}"
                    for m in self.members
                ]
                + [f"{cell.feasible_fraction:.0%}"]
            )
        total = self.n_trials * len(self.cells)
        overall = self.overall_wins()
        rows.append(
            ["overall", "", ""]
            + [f"{overall[m] / total:.0%}" for m in self.members]
            + [""]
        )
        return format_table(
            header,
            rows,
            title=(
                "Extension — portfolio tournament: win rate per member, "
                f"{self.n_trials} trials/cell, LC = fraction of L_AAML"
            ),
        )

    def render_chart(self) -> str:
        """Bar chart of overall race wins per member."""
        overall = self.overall_wins()
        return bar_chart(
            list(self.members),
            [overall[m] for m in self.members],
            title="portfolio tournament — total race wins",
            value_fmt=".0f",
        )


def _make_network(topology: str, n_nodes: int, seed: int) -> Network:
    if topology == "random":
        return random_graph(n_nodes, 0.3, seed=seed)
    if topology == "disk":
        return unit_disk_graph(
            n_nodes, 50.0, 20.0, tx_power_dbm=-8.0, seed=seed, max_attempts=100
        )
    raise ValueError(f"unknown topology {topology!r}")


def _tournament_trial(
    members: Tuple[str, ...],
    cells: Tuple[Tuple[str, int, float], ...],
    trials_per_cell: int,
    base_seed: int,
    index: int,
) -> Tuple[int, str, bool]:
    """One race; module-level so :func:`parallel_map` can pickle it."""
    cell_index, trial = divmod(index, trials_per_cell)
    topology, n_nodes, lc_fraction = cells[cell_index]
    seed = stable_hash_seed(
        "ext-portfolio", base_seed, topology, n_nodes, lc_fraction, trial
    )
    network = _make_network(topology, n_nodes, seed)
    lc = lc_fraction * build_tree("aaml", network).lifetime
    outcomes = race_builders(network, members, lc=lc, seed=seed, parallel=False)
    winner = select_winner(outcomes, lc=lc)
    return (cell_index, winner.member, winner.feasible)


def run_ext_portfolio(
    *,
    n_trials: int = 10,
    members: Tuple[str, ...] = PORTFOLIO_TOURNAMENT_MEMBERS,
    cells: Tuple[Tuple[str, int, float], ...] = DEFAULT_CELLS,
    base_seed: int = 310,
    n_jobs: Optional[int] = None,
) -> ExtPortfolioResult:
    """Run the tournament: ``n_trials`` races per sweep cell.

    Args:
        n_trials: Races per (topology, n, lc_fraction) cell.
        members: Registry builder names racing in every trial (≥ 2).
        cells: The sweep grid; see :data:`DEFAULT_CELLS`.
        base_seed: Label mixed into every trial seed.
        n_jobs: Worker processes for the trial sweep (results identical).
    """
    if n_trials <= 0:
        raise ValueError(f"n_trials must be positive, got {n_trials}")
    if len(members) < 2:
        raise ValueError(f"a tournament needs >= 2 members, got {list(members)}")
    trial = partial(
        _tournament_trial, tuple(members), tuple(cells), n_trials, base_seed
    )
    rows = parallel_map(trial, n_trials * len(cells), n_jobs=n_jobs)

    wins: List[Dict[str, int]] = [{m: 0 for m in members} for _ in cells]
    feasible: List[int] = [0 for _ in cells]
    for cell_index, winner, winner_feasible in rows:
        wins[cell_index][winner] += 1
        feasible[cell_index] += int(winner_feasible)
    cell_results = tuple(
        CellWinRates(
            topology=topology,
            n_nodes=n_nodes,
            lc_fraction=lc_fraction,
            wins=wins[i],
            feasible_fraction=feasible[i] / n_trials,
        )
        for i, (topology, n_nodes, lc_fraction) in enumerate(cells)
    )
    return ExtPortfolioResult(
        members=tuple(members), cells=cell_results, n_trials=n_trials
    )
