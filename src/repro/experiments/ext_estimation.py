"""Extension: how many beacons does link estimation actually need?

The paper's deployment estimates PRRs from 1000 beacon rounds before
building trees, without justifying the number.  This study quantifies the
choice: for each beacon budget, links are estimated from simulated beacon
traces (binomial noise), trees are built **on the estimates**, and their
*true* reliability (on the ground-truth PRRs) is compared against the
oracle tree built with perfect knowledge.

The reported **regret** is ``1 - Q_true(tree_est) / Q_true(tree_oracle)``,
averaged over independent estimation draws — the reliability a deployment
loses to estimation noise.  Expected shape: regret falls roughly with
``1/sqrt(beacons)`` and is already small at a few hundred beacons,
supporting (and sharpening) the paper's choice of 1000.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.experiments.common import builder_tree
from repro.core.tree import AggregationTree
from repro.network.dfl import dfl_network
from repro.network.model import Network
from repro.network.trace import BeaconTraceEstimator
from repro.utils.ascii_chart import line_chart
from repro.utils.rng import stable_hash_seed
from repro.utils.tables import format_table

__all__ = ["EstimationPoint", "ExtEstimationResult", "run_ext_estimation"]

DEFAULT_BUDGETS = (10, 25, 50, 100, 250, 500, 1000, 2000)


@dataclass(frozen=True)
class EstimationPoint:
    """Regret statistics for one beacon budget.

    Attributes:
        n_beacons: Beacons per link used for estimation.
        mean_regret: Mean relative true-reliability loss vs the oracle tree.
        max_regret: Worst draw's loss.
        mean_estimation_error: Mean absolute PRR estimation error.
    """

    n_beacons: int
    mean_regret: float
    max_regret: float
    mean_estimation_error: float


@dataclass(frozen=True)
class ExtEstimationResult:
    """Regret curve over beacon budgets."""

    points: Tuple[EstimationPoint, ...]
    oracle_reliability: float

    def point(self, n_beacons: int) -> EstimationPoint:
        for p in self.points:
            if p.n_beacons == n_beacons:
                return p
        raise KeyError(n_beacons)

    def render(self) -> str:
        rows = [
            [
                p.n_beacons,
                f"{p.mean_regret:.4%}",
                f"{p.max_regret:.4%}",
                round(p.mean_estimation_error, 4),
            ]
            for p in self.points
        ]
        table = format_table(
            ["beacons", "mean regret", "max regret", "mean |PRR err|"],
            rows,
            title=(
                "Extension — reliability regret of estimate-built trees "
                f"(oracle Q = {self.oracle_reliability:.4f})"
            ),
        )
        return table

    def render_chart(self) -> str:
        xs = tuple(float(np.log10(p.n_beacons)) for p in self.points)
        return line_chart(
            {
                "mean regret": (xs, tuple(p.mean_regret for p in self.points)),
                "max regret": (xs, tuple(p.max_regret for p in self.points)),
            },
            title="regret vs log10(beacons)",
        )


def run_ext_estimation(
    network: Optional[Network] = None,
    budgets: Sequence[int] = DEFAULT_BUDGETS,
    *,
    n_draws: int = 20,
    base_seed: int = 31,
) -> ExtEstimationResult:
    """Run the beacon-budget sweep.

    Args:
        network: Ground-truth network (default: the DFL geometry with
            ground-truth PRRs, i.e. *without* the built-in beacon step).
        budgets: Beacon counts to evaluate.
        n_draws: Independent estimation draws per budget.
    """
    if n_draws <= 0:
        raise ValueError(f"n_draws must be positive, got {n_draws}")
    truth = (
        network
        if network is not None
        else dfl_network(estimate_with_beacons=False)
    )
    oracle = builder_tree("mst", truth)
    oracle_q = oracle.reliability()

    points = []
    for budget in budgets:
        if budget <= 0:
            raise ValueError(f"beacon budgets must be positive, got {budget}")
        regrets = []
        errors = []
        for draw in range(n_draws):
            seed = stable_hash_seed("ext-estimation", base_seed, budget, draw)
            estimator = BeaconTraceEstimator(n_beacons=budget)
            estimated = estimator.estimate(truth, seed=seed)
            if not estimated.is_connected():
                regrets.append(1.0)  # estimation killed connectivity
                continue
            tree_est = builder_tree("mst", estimated)
            # Evaluate the chosen structure on the TRUE link qualities.
            true_view = AggregationTree(truth, tree_est.parents)
            regrets.append(max(0.0, 1.0 - true_view.reliability() / oracle_q))
            errors.append(
                float(
                    np.mean(
                        [
                            abs(estimated.prr(e.u, e.v) - e.prr)
                            for e in truth.edges()
                            if estimated.has_edge(e.u, e.v)
                        ]
                    )
                )
            )
        points.append(
            EstimationPoint(
                n_beacons=budget,
                mean_regret=float(np.mean(regrets)),
                max_regret=float(np.max(regrets)),
                mean_estimation_error=float(np.mean(errors)) if errors else 1.0,
            )
        )
    return ExtEstimationResult(
        points=tuple(points), oracle_reliability=oracle_q
    )
