"""Fig. 7 — cost and reliability in the DFL system.

The headline comparison (Section VII-A): on the 16-node DFL network,

* AAML (link-quality agnostic; links with PRR < 0.95 removed first):
  paper cost 378, reliability ≈ 0.77;
* MST (no lifetime constraint, the reliability optimum): cost 55, ≈ 0.963;
* IRA under four lifetime constraints derived from AAML's near-optimal
  lifetime ``L_AAML``: cost 68 / 0.954 at the strictest and descending to
  the MST cost as the constraint relaxes.

On the constraint ladder: the published numbers (cost falling toward MST as
the multiplier grows, and the text's "achieve the optimal reliability by a
little violation of lifetime") only cohere if the "1.5L, 2L, 2.5L" settings
*relax* the requirement, so this reproduction uses ``LC_k = L_AAML / k``
for k ∈ {1, 1.5, 2, 2.5}.  All reported trees' lifetimes are re-checked
against their bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.experiments.common import build_tree, builder_tree
from repro.core.tree import PAPER_COST_SCALE, AggregationTree
from repro.network.dfl import dfl_network
from repro.network.model import Network
from repro.utils.ascii_chart import bar_chart
from repro.utils.tables import format_table

__all__ = ["Fig7Entry", "Fig7Result", "run_fig7", "DEFAULT_LC_DIVISORS"]

DEFAULT_LC_DIVISORS = (1.0, 1.5, 2.0, 2.5)

#: PRR threshold below which links are hidden from AAML (Section VII-A).
AAML_PRR_FILTER = 0.95


@dataclass(frozen=True)
class Fig7Entry:
    """One bar pair of Fig. 7.

    Attributes:
        label: Algorithm/constraint label (e.g. ``"IRA@LC/1.5"``).
        cost: Tree cost in paper units (−1000·log2 q).
        reliability: ``Q(T)``.
        lifetime: ``L(T)`` in aggregation rounds.
        lifetime_bound: The bound the tree had to satisfy (None for
            unconstrained algorithms).
    """

    label: str
    cost: float
    reliability: float
    lifetime: float
    lifetime_bound: Optional[float]

    @property
    def meets_bound(self) -> bool:
        if self.lifetime_bound is None:
            return True
        return self.lifetime >= self.lifetime_bound * (1 - 1e-9)


@dataclass(frozen=True)
class Fig7Result:
    """All Fig. 7 bars plus the instance's ``L_AAML``."""

    entries: Tuple[Fig7Entry, ...]
    l_aaml: float

    def entry(self, label: str) -> Fig7Entry:
        for e in self.entries:
            if e.label == label:
                return e
        raise KeyError(label)

    def render(self) -> str:
        rows = [
            [
                e.label,
                round(e.cost, 1),
                round(e.reliability, 4),
                f"{e.lifetime:.3e}",
                "-" if e.lifetime_bound is None else f"{e.lifetime_bound:.3e}",
                e.meets_bound,
            ]
            for e in self.entries
        ]
        return format_table(
            ["algorithm", "cost", "reliability", "lifetime", "bound", "ok"],
            rows,
            title="Fig. 7 — performance in the DFL system",
        )

    def render_chart(self) -> str:
        """The two bar groups of Fig. 7 (cost and reliability)."""
        labels = [e.label for e in self.entries]
        cost = bar_chart(
            labels,
            [e.cost for e in self.entries],
            title="Fig. 7 — total cost (paper units)",
        )
        reliability = bar_chart(
            labels,
            [e.reliability for e in self.entries],
            title="Fig. 7 — reliability",
            value_fmt=".4f",
        )
        return cost + "\n\n" + reliability


def run_fig7(
    network: Optional[Network] = None,
    lc_divisors: Tuple[float, ...] = DEFAULT_LC_DIVISORS,
) -> Fig7Result:
    """Run the DFL comparison (default: the canonical synthetic DFL instance)."""
    net = network if network is not None else dfl_network()

    aaml = build_tree("aaml", net.filtered(AAML_PRR_FILTER))
    # AAML's tree is evaluated on the full network's PRRs (same links).
    aaml_tree = AggregationTree(net, aaml.tree.parents)
    mst = builder_tree("mst", net)

    entries = [
        Fig7Entry(
            label="AAML",
            cost=aaml_tree.cost() * PAPER_COST_SCALE,
            reliability=aaml_tree.reliability(),
            lifetime=aaml_tree.lifetime(),
            lifetime_bound=None,
        )
    ]
    for k in lc_divisors:
        lc = aaml.lifetime / k
        result = build_tree("ira", net, lc=lc)
        entries.append(
            Fig7Entry(
                label=f"IRA@LC/{k:g}",
                cost=result.tree.cost() * PAPER_COST_SCALE,
                reliability=result.tree.reliability(),
                lifetime=result.tree.lifetime(),
                lifetime_bound=lc,
            )
        )
    entries.append(
        Fig7Entry(
            label="MST",
            cost=mst.cost() * PAPER_COST_SCALE,
            reliability=mst.reliability(),
            lifetime=mst.lifetime(),
            lifetime_bound=None,
        )
    )
    return Fig7Result(entries=tuple(entries), l_aaml=aaml.lifetime)
