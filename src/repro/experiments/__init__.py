"""Experiment harness: one module per figure of the paper's evaluation.

| Module | Paper artifact |
|--------|----------------|
| :mod:`repro.experiments.fig1_packets` | Fig. 1 — packets vs link quality |
| :mod:`repro.experiments.fig2_distance` | Fig. 2 — PRR vs distance |
| :mod:`repro.experiments.fig3_energy` | Fig. 3 — power per radio state |
| :mod:`repro.experiments.fig7_dfl` | Fig. 7 — DFL cost/reliability bars |
| :mod:`repro.experiments.fig8_same_energy` | Fig. 8 — random graphs, same energy |
| :mod:`repro.experiments.fig9_diff_energy` | Fig. 9 — random graphs, mixed energy |
| :mod:`repro.experiments.fig10_link_prob` | Fig. 10 — cost vs link probability |
| :mod:`repro.experiments.fig11_13_distributed` | Figs. 11–13 — protocol churn |
| :mod:`repro.experiments.ext_baselines` | extension — wide algorithm panel vs the exact optimum |
| :mod:`repro.experiments.ext_energy_hole` | extension — energy-hole depth profiles |
| :mod:`repro.experiments.ext_latency` | extension — latency/reliability/lifetime triangle |
| :mod:`repro.experiments.ext_estimation` | extension — beacon-budget vs estimation regret |
| :mod:`repro.experiments.ext_stability` | extension — structural churn under estimation noise |
| :mod:`repro.experiments.ext_faulty_control` | extension — maintained tree vs control-plane loss rate |
| :mod:`repro.experiments.ext_portfolio` | extension — portfolio tournament win-rate table |

Every ``run_*`` function is deterministic given its ``base_seed``/``seed``
and accepts reduced trial counts for quick runs; paper-scale defaults
regenerate the full figures.  Fig. 4 (the toy reliability example) lives in
``examples/quickstart.py`` and the test suite.
"""

from repro.experiments.fig1_packets import Fig1Result, run_fig1
from repro.experiments.parallel import (
    ParallelBuildError,
    default_workers,
    parallel_map,
)
from repro.experiments.fig2_distance import Fig2Result, run_fig2
from repro.experiments.fig3_energy import Fig3Result, run_fig3
from repro.experiments.fig7_dfl import Fig7Entry, Fig7Result, run_fig7
from repro.experiments.fig8_same_energy import Fig8Result, RandomGraphTrial, run_fig8
from repro.experiments.fig9_diff_energy import Fig9Result, run_fig9
from repro.experiments.fig10_link_prob import Fig10Result, run_fig10
from repro.experiments.ext_baselines import (
    AlgorithmSummary,
    ExtBaselinesResult,
    run_ext_baselines,
)
from repro.experiments.ext_energy_hole import (
    DepthProfile,
    EnergyHoleResult,
    run_energy_hole,
)
from repro.experiments.ext_estimation import (
    EstimationPoint,
    ExtEstimationResult,
    run_ext_estimation,
)
from repro.experiments.ext_stability import (
    ExtStabilityResult,
    run_ext_stability,
)
from repro.experiments.ext_faulty_control import (
    ExtFaultyControlResult,
    FaultSweepPoint,
    run_ext_faulty_control,
)
from repro.experiments.ext_portfolio import (
    CellWinRates,
    ExtPortfolioResult,
    run_ext_portfolio,
)
from repro.experiments.ext_latency import (
    ExtLatencyResult,
    LatencyEntry,
    run_ext_latency,
)
from repro.experiments.fig11_13_distributed import (
    DistributedResult,
    run_distributed_experiment,
)

__all__ = [
    "AlgorithmSummary",
    "CellWinRates",
    "DepthProfile",
    "DistributedResult",
    "EnergyHoleResult",
    "EstimationPoint",
    "ExtBaselinesResult",
    "ExtEstimationResult",
    "ExtFaultyControlResult",
    "ExtPortfolioResult",
    "ExtStabilityResult",
    "ExtLatencyResult",
    "FaultSweepPoint",
    "Fig1Result",
    "Fig2Result",
    "Fig3Result",
    "Fig7Entry",
    "Fig7Result",
    "Fig8Result",
    "Fig9Result",
    "Fig10Result",
    "LatencyEntry",
    "ParallelBuildError",
    "RandomGraphTrial",
    "default_workers",
    "parallel_map",
    "run_distributed_experiment",
    "run_energy_hole",
    "run_ext_baselines",
    "run_ext_estimation",
    "run_ext_faulty_control",
    "run_ext_latency",
    "run_ext_portfolio",
    "run_ext_stability",
    "run_fig1",
    "run_fig10",
    "run_fig2",
    "run_fig3",
    "run_fig7",
    "run_fig8",
    "run_fig9",
]
