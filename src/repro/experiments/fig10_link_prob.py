"""Fig. 10 — average cost vs. link connection probability.

Section VII-B3: for each link probability, 100 random graphs are drawn and
the average cost of each algorithm is reported.  Expected shape (paper):
AAML's average cost *increases* with connectivity (more links = more
load-balancing choices = more bad links adopted), while IRA and MST stay
essentially flat (they only care about the cheapest links, which denser
graphs supply just as well).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.experiments.fig8_same_energy import (
    RandomGraphTrial,
    run_random_graph_trials,
)
from repro.utils.ascii_chart import line_chart
from repro.utils.tables import format_table

__all__ = ["Fig10Result", "run_fig10", "DEFAULT_LINK_PROBABILITIES"]

DEFAULT_LINK_PROBABILITIES = (0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


@dataclass(frozen=True)
class Fig10Result:
    """Average paper-unit cost per algorithm at each link probability.

    Attributes:
        probabilities: Swept link probabilities (x axis).
        averages: ``{algorithm: (avg cost per probability,)}``.
        trials: Raw per-probability trials (for deeper analysis).
    """

    probabilities: Tuple[float, ...]
    averages: Dict[str, Tuple[float, ...]]
    trials: Dict[float, Tuple[RandomGraphTrial, ...]]

    def render(self) -> str:
        rows = []
        for i, p in enumerate(self.probabilities):
            rows.append(
                [
                    p,
                    round(self.averages["aaml"][i], 1),
                    round(self.averages["ira"][i], 1),
                    round(self.averages["mst"][i], 1),
                ]
            )
        return format_table(
            ["link prob", "AAML", "IRA", "MST"],
            rows,
            title="Fig. 10 — average cost vs link probability (paper units)",
        )

    def render_chart(self) -> str:
        """Average-cost-vs-density curves."""
        series = {
            alg.upper(): (self.probabilities, self.averages[alg])
            for alg in ("aaml", "ira", "mst")
        }
        return line_chart(
            series, title="Fig. 10 — avg cost vs link probability"
        )


def run_fig10(
    probabilities: Sequence[float] = DEFAULT_LINK_PROBABILITIES,
    *,
    n_trials: int = 100,
    n_nodes: int = 16,
    base_seed: int = 10,
    n_jobs: Optional[int] = None,
) -> Fig10Result:
    """Run the Fig. 10 sweep (paper defaults: 100 graphs per probability)."""
    trials: Dict[float, Tuple[RandomGraphTrial, ...]] = {}
    averages: Dict[str, list] = {"aaml": [], "ira": [], "mst": []}
    for p in probabilities:
        batch = run_random_graph_trials(
            n_trials=n_trials,
            n_nodes=n_nodes,
            link_probability=p,
            energy_low=None,
            energy_high=None,
            label="fig10",
            base_seed=base_seed,
            n_jobs=n_jobs,
        )
        trials[p] = batch
        for alg in averages:
            costs = [getattr(t, f"{alg}_cost") for t in batch]
            averages[alg].append(sum(costs) / len(costs))
    return Fig10Result(
        probabilities=tuple(probabilities),
        averages={alg: tuple(vals) for alg, vals in averages.items()},
        trials=trials,
    )
