"""Fig. 2 — average packet reception ratio vs. distance per transmit power.

The paper measured TelosB links from 4 ft to 16 ft at CC2420 power settings
Tx ∈ {19, 15, 11, 7, 3}: at Tx = 19 the quality declines gently with
distance, while at Tx = 15 and 11 it collapses from ~100% to under 10%
across the same range.

We reproduce the measurement with the log-normal-shadowing + CC2420 PER
chain (:class:`repro.network.linkquality.LogNormalShadowingModel`),
averaging repeated shadowing draws per distance exactly as repeated testbed
trials would.  The model below is calibrated so the three regimes of the
paper's description appear: Tx=19 degrades but stays usable at 16 ft, Tx=15
and 11 traverse the full cliff inside the measured range, and the lowest
powers are dead beyond a few feet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.network.linkquality import (
    LogNormalShadowingModel,
    prr_vs_distance_curve,
)
from repro.utils.ascii_chart import line_chart
from repro.utils.rng import stable_hash_seed
from repro.utils.tables import format_table

__all__ = ["Fig2Result", "run_fig2", "FIG2_MODEL"]

DEFAULT_POWER_LEVELS = (19, 15, 11, 7, 3)
DEFAULT_DISTANCES_FT = (4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0)

#: Model calibrated to the paper's testbed behaviour (see module docstring).
FIG2_MODEL = LogNormalShadowingModel(
    path_loss_exponent=3.2,
    reference_loss_db=72.0,
    shadowing_sigma_db=2.0,
    noise_floor_dbm=-98.0,
    frame_bytes=34,
)


@dataclass(frozen=True)
class Fig2Result:
    """PRR-vs-distance curves, one per transmit-power level.

    Attributes:
        distances_ft: Swept distances (x axis, feet as in the paper).
        curves: ``{power_level: [avg PRR per distance]}``.
    """

    distances_ft: Tuple[float, ...]
    curves: Dict[int, Tuple[float, ...]]

    def render(self) -> str:
        headers = ["distance (ft)"] + [
            f"Tx={level}" for level in sorted(self.curves, reverse=True)
        ]
        rows = []
        for i, d in enumerate(self.distances_ft):
            row = [d] + [
                round(self.curves[level][i], 3)
                for level in sorted(self.curves, reverse=True)
            ]
            rows.append(row)
        return format_table(
            headers, rows, title="Fig. 2 — avg PRR vs distance per Tx power"
        )

    def render_chart(self) -> str:
        """Line plot of the per-power PRR curves."""
        series = {
            f"Tx={level}": (self.distances_ft, self.curves[level])
            for level in sorted(self.curves, reverse=True)
        }
        return line_chart(series, title="Fig. 2 — PRR vs distance (ft)")


def run_fig2(
    power_levels: Sequence[int] = DEFAULT_POWER_LEVELS,
    distances_ft: Sequence[float] = DEFAULT_DISTANCES_FT,
    *,
    n_trials: int = 200,
    model: LogNormalShadowingModel = FIG2_MODEL,
    base_seed: int = 2,
) -> Fig2Result:
    """Run the Fig. 2 sweep (*n_trials* shadowing draws per point)."""
    curves: Dict[int, Tuple[float, ...]] = {}
    for level in power_levels:
        seed = stable_hash_seed("fig2", base_seed, level)
        curve = prr_vs_distance_curve(
            model, level, np.asarray(distances_ft), n_trials=n_trials, seed=seed
        )
        curves[level] = tuple(float(x) for x in curve)
    return Fig2Result(distances_ft=tuple(distances_ft), curves=curves)
