"""Figs. 11–13 — distributed protocol vs. centralized IRA under churn.

One churn simulation (Section VII-C) produces all three figures:

* Fig. 11 — total cost of the protocol-maintained tree vs. a freshly
  recomputed IRA tree, per round (both rise as links degrade; the paper
  reports a gap of only ~25 paper-cost units);
* Fig. 12 — the same trees' reliabilities (gap ≤ ~0.02);
* Fig. 13 — total messages (rising) and average messages per update
  (stabilising under ~10 for 16 nodes).

Setup: the canonical DFL instance, initial tree from IRA at
``LC = L_AAML / 1.5`` (the paper's curves start at cost ≈ 58, which is that
regime), 100 rounds of one-tree-link degradation of 1e-3 cost units each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.experiments.common import build_tree
from repro.core.tree import PAPER_COST_SCALE
from repro.distributed.simulator import ChurnSimulation, MaintenanceRecord
from repro.experiments.fig7_dfl import AAML_PRR_FILTER
from repro.network.dfl import dfl_network
from repro.network.model import Network
from repro.utils.ascii_chart import line_chart
from repro.utils.tables import format_table

__all__ = ["DistributedResult", "run_distributed_experiment"]

DEFAULT_LC_DIVISOR = 1.5


@dataclass(frozen=True)
class DistributedResult:
    """All per-round records plus the derived figure series."""

    records: Tuple[MaintenanceRecord, ...]
    lc: float

    # ------------------------------------------------------------------
    # Figure series
    # ------------------------------------------------------------------
    def fig11_series(self) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
        """(distributed cost, centralized cost) per round, paper units."""
        dist = tuple(r.distributed_cost * PAPER_COST_SCALE for r in self.records)
        cent = tuple(r.centralized_cost * PAPER_COST_SCALE for r in self.records)
        return dist, cent

    def fig12_series(self) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
        """(distributed reliability, centralized reliability) per round."""
        dist = tuple(r.distributed_reliability for r in self.records)
        cent = tuple(r.centralized_reliability for r in self.records)
        return dist, cent

    def fig13_series(self) -> Tuple[Tuple[int, ...], Tuple[float, ...]]:
        """(cumulative messages, avg messages per update) per round."""
        total = tuple(r.cumulative_messages for r in self.records)
        avg = tuple(r.avg_messages_per_update for r in self.records)
        return total, avg

    @property
    def max_cost_gap(self) -> float:
        """Largest per-round cost gap (paper units; paper reports ~25)."""
        dist, cent = self.fig11_series()
        return max(d - c for d, c in zip(dist, cent))

    @property
    def max_reliability_gap(self) -> float:
        """Largest per-round reliability gap (paper reports ~0.02)."""
        dist, cent = self.fig12_series()
        return max(c - d for d, c in zip(dist, cent))

    def render(self) -> str:
        dist_c, cent_c = self.fig11_series()
        dist_r, cent_r = self.fig12_series()
        total_m, avg_m = self.fig13_series()
        rows = [
            [
                r.round_index,
                round(dist_c[i], 1),
                round(cent_c[i], 1),
                round(dist_r[i], 4),
                round(cent_r[i], 4),
                total_m[i],
                round(avg_m[i], 2),
            ]
            for i, r in enumerate(self.records)
        ]
        table = format_table(
            [
                "round",
                "dist cost",
                "IRA cost",
                "dist rel",
                "IRA rel",
                "total msgs",
                "msgs/update",
            ],
            rows,
            title="Figs. 11-13 — distributed protocol vs centralized IRA",
        )
        footer = (
            f"\nmax cost gap: {self.max_cost_gap:.1f} paper units; "
            f"max reliability gap: {self.max_reliability_gap:.4f}; "
            f"updates: {self.records[-1].cumulative_updates}; "
            f"avg msgs/update: {self.records[-1].avg_messages_per_update:.2f}"
        )
        return table + footer

    def render_chart(self) -> str:
        """The three figures' series as stacked line plots."""
        rounds = tuple(r.round_index for r in self.records)
        dist_c, cent_c = self.fig11_series()
        dist_r, cent_r = self.fig12_series()
        total_m, avg_m = self.fig13_series()
        fig11 = line_chart(
            {"distributed": (rounds, dist_c), "IRA": (rounds, cent_c)},
            title="Fig. 11 — total cost (paper units)",
            height=10,
        )
        fig12 = line_chart(
            {"distributed": (rounds, dist_r), "IRA": (rounds, cent_r)},
            title="Fig. 12 — reliability",
            height=10,
        )
        fig13 = line_chart(
            {
                "total msgs": (rounds, total_m),
                "msgs/update": (rounds, avg_m),
            },
            title="Fig. 13 — message complexity",
            height=10,
        )
        return "\n\n".join([fig11, fig12, fig13])


def run_distributed_experiment(
    network: Optional[Network] = None,
    *,
    rounds: int = 100,
    lc_divisor: float = DEFAULT_LC_DIVISOR,
    cost_delta: float = 1e-3,
    seed: int = 11,
) -> DistributedResult:
    """Run the Section VII-C churn experiment.

    Args:
        network: Instance to churn (default: a fresh canonical DFL network;
            it is copied, the caller's object is never mutated).
        rounds: Degradation rounds (paper: 100).
        lc_divisor: ``LC = L_AAML / lc_divisor`` for the maintained bound.
        cost_delta: Per-round cost degradation (paper: 1e-3).
        seed: Degraded-edge randomness.
    """
    net = (network if network is not None else dfl_network()).copy()
    aaml = build_tree("aaml", net.filtered(AAML_PRR_FILTER))
    lc = aaml.lifetime / lc_divisor
    initial = build_tree("ira", net, lc=lc)
    sim = ChurnSimulation(
        net, initial.tree, lc, cost_delta=cost_delta, seed=seed
    )
    records = sim.run(rounds)
    return DistributedResult(records=tuple(records), lc=lc)
