"""Shared infrastructure for the figure-reproduction experiments.

Every ``figN_*`` module follows the same contract:

* a ``run_*`` function executes the experiment with paper-default
  parameters (overridable, notably trial counts for quick runs) and returns
  a frozen result object holding the raw series;
* the result object's ``render()`` produces the plain-text table with the
  same rows/series the paper's figure plots;
* seeds are derived from semantic labels via
  :func:`repro.utils.rng.stable_hash_seed`, so every trial is reproducible
  independently of sweep ordering.

Costs are reported in the paper's plotted units (−1000·log2 q; see
:data:`repro.core.tree.PAPER_COST_SCALE`) so the numbers are directly
comparable with the published figures.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from repro.core.tree import PAPER_COST_SCALE, AggregationTree
from repro.engine import BuildResult, available_builders, build_tree, get_builder
from repro.network.model import Network
from repro.obs import OBS, ObsSession, instrument

__all__ = [
    "BuildResult",
    "PAPER_COST_SCALE",
    "available_builders",
    "build_tree",
    "builder_tree",
    "get_builder",
    "metrics_snapshot",
    "paper_cost",
    "run_instrumented",
    "summarize",
]


def builder_tree(name: str, network: Network, **config: Any) -> AggregationTree:
    """Build a tree through the registry and return just the tree.

    Experiments that only need the structure (not the builder's metadata)
    use this; the full :class:`~repro.engine.BuildResult` comes from
    :func:`~repro.engine.build_tree`.
    """
    return build_tree(name, network, **config).tree


def paper_cost(natural_cost: float) -> float:
    """Convert a natural-log tree cost to the paper's plotted units."""
    return natural_cost * PAPER_COST_SCALE


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Mean / min / max summary used by the per-trial experiment tables."""
    if not values:
        raise ValueError("cannot summarize an empty series")
    ordered = sorted(values)
    n = len(ordered)
    mid = ordered[n // 2] if n % 2 else 0.5 * (ordered[n // 2 - 1] + ordered[n // 2])
    return {
        "mean": sum(ordered) / n,
        "median": mid,
        "min": ordered[0],
        "max": ordered[-1],
    }


def metrics_snapshot() -> Optional[Dict[str, Dict[str, Any]]]:
    """Snapshot of the active instrumentation registry, if one is enabled.

    ``None`` when instrumentation is off — callers attach it to result
    artifacts only when there is something to attach.
    """
    if OBS.enabled:
        return OBS.registry.snapshot()
    return None


def run_instrumented(
    fn: Callable[..., Any],
    *args: Any,
    obs_seed: Optional[int] = None,
    obs_params: Optional[Dict[str, Any]] = None,
    **kwargs: Any,
) -> Tuple[Any, ObsSession]:
    """Run *fn* under a fresh instrumentation session.

    All positional and keyword arguments except ``obs_seed`` / ``obs_params``
    are forwarded to *fn* untouched (so an experiment's own ``seed`` kwarg
    passes through).  Returns ``(result, session)``; the session carries the
    metrics registry, the structured trace, and the run manifest.
    ``obs_params`` defaults to the forwarded keyword arguments, so the
    manifest records how the experiment was parameterized without extra
    plumbing::

        result, session = run_instrumented(run_fig8, n_trials=20)
        save_result(result, "fig8.json",
                    manifest=session.manifest, metrics=session.registry.snapshot())
    """
    manifest_params = obs_params if obs_params is not None else dict(kwargs)
    if obs_seed is None:
        forwarded = kwargs.get("seed")
        obs_seed = forwarded if isinstance(forwarded, int) else None
    with instrument(seed=obs_seed, params=manifest_params) as session:
        result = fn(*args, **kwargs)
    return result, session
