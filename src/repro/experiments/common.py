"""Shared infrastructure for the figure-reproduction experiments.

Every ``figN_*`` module follows the same contract:

* a ``run_*`` function executes the experiment with paper-default
  parameters (overridable, notably trial counts for quick runs) and returns
  a frozen result object holding the raw series;
* the result object's ``render()`` produces the plain-text table with the
  same rows/series the paper's figure plots;
* seeds are derived from semantic labels via
  :func:`repro.utils.rng.stable_hash_seed`, so every trial is reproducible
  independently of sweep ordering.

Costs are reported in the paper's plotted units (−1000·log2 q; see
:data:`repro.core.tree.PAPER_COST_SCALE`) so the numbers are directly
comparable with the published figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence

from repro.core.tree import PAPER_COST_SCALE

__all__ = ["PAPER_COST_SCALE", "paper_cost", "summarize"]


def paper_cost(natural_cost: float) -> float:
    """Convert a natural-log tree cost to the paper's plotted units."""
    return natural_cost * PAPER_COST_SCALE


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Mean / min / max summary used by the per-trial experiment tables."""
    if not values:
        raise ValueError("cannot summarize an empty series")
    ordered = sorted(values)
    n = len(ordered)
    mid = ordered[n // 2] if n % 2 else 0.5 * (ordered[n // 2 - 1] + ordered[n // 2])
    return {
        "mean": sum(ordered) / n,
        "median": mid,
        "min": ordered[0],
        "max": ordered[-1],
    }
