"""Extension: all-algorithm comparison table (beyond the paper's three).

The paper compares IRA against AAML and the MST.  This extension widens the
panel with the library's additional baselines — the ETX-style shortest-path
tree (what deployed collection stacks build), RaSMaLai-style randomized
switching, a uniform random spanning tree (the null model), and the exact
MILP optimum — over a batch of random instances, reporting mean cost,
reliability, lifetime, and how often each algorithm meets the lifetime
bound ``LC = L_AAML``.

This is the summary table a practitioner would want before picking an
algorithm: it shows each point of the (reliability, lifetime) trade-off
space the library covers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.experiments.common import build_tree, builder_tree
from repro.core.tree import PAPER_COST_SCALE, AggregationTree
from repro.network.topology import random_graph
from repro.utils.ascii_chart import bar_chart
from repro.utils.rng import stable_hash_seed
from repro.utils.tables import format_table

__all__ = ["AlgorithmSummary", "ExtBaselinesResult", "run_ext_baselines"]


@dataclass(frozen=True)
class AlgorithmSummary:
    """Aggregated behaviour of one algorithm over the trial batch.

    Attributes:
        name: Algorithm label.
        mean_cost: Mean tree cost (paper units).
        mean_reliability: Mean ``Q(T)``.
        mean_lifetime: Mean ``L(T)`` in rounds.
        meets_lc_fraction: Fraction of trials whose tree met ``LC = L_AAML``.
    """

    name: str
    mean_cost: float
    mean_reliability: float
    mean_lifetime: float
    meets_lc_fraction: float


@dataclass(frozen=True)
class ExtBaselinesResult:
    """Per-algorithm summaries over the random-graph batch."""

    summaries: Tuple[AlgorithmSummary, ...]
    n_trials: int

    def summary(self, name: str) -> AlgorithmSummary:
        for s in self.summaries:
            if s.name == name:
                return s
        raise KeyError(name)

    def render(self) -> str:
        rows = [
            [
                s.name,
                round(s.mean_cost, 1),
                round(s.mean_reliability, 4),
                f"{s.mean_lifetime:.3e}",
                f"{s.meets_lc_fraction:.0%}",
            ]
            for s in self.summaries
        ]
        return format_table(
            ["algorithm", "mean cost", "mean Q(T)", "mean lifetime", "meets LC"],
            rows,
            title=(
                f"Extension — all algorithms over {self.n_trials} random "
                "G(16, 0.7) graphs, LC = L_AAML"
            ),
        )

    def render_chart(self) -> str:
        """Bar charts of mean cost and mean reliability per algorithm."""
        labels = [s.name for s in self.summaries]
        cost = bar_chart(
            labels,
            [s.mean_cost for s in self.summaries],
            title="mean cost (paper units)",
        )
        rel = bar_chart(
            labels,
            [s.mean_reliability for s in self.summaries],
            title="mean reliability",
            value_fmt=".4f",
        )
        return cost + "\n\n" + rel


def run_ext_baselines(
    *,
    n_trials: int = 20,
    n_nodes: int = 16,
    link_probability: float = 0.7,
    include_exact: bool = True,
    base_seed: int = 77,
) -> ExtBaselinesResult:
    """Run the wide-panel comparison (exact solver optional, n ≤ ~20)."""
    if n_trials <= 0:
        raise ValueError(f"n_trials must be positive, got {n_trials}")
    names = ["MST", "SPT", "random", "RaSMaLai", "AAML", "IRA"]
    if include_exact:
        names.append("optimal")
    acc: Dict[str, Dict[str, list]] = {
        name: {"cost": [], "rel": [], "life": [], "ok": []} for name in names
    }

    for i in range(n_trials):
        seed = stable_hash_seed("ext-baselines", base_seed, i)
        net = random_graph(n_nodes, link_probability, seed=seed)
        aaml = build_tree("aaml", net)
        lc = aaml.lifetime

        trees: Dict[str, AggregationTree] = {
            "MST": builder_tree("mst", net),
            "SPT": builder_tree("spt", net),
            "random": builder_tree("random_tree", net, seed=seed),
            "RaSMaLai": builder_tree("rasmalai", net, seed=seed),
            "AAML": aaml.tree,
            "IRA": builder_tree("ira", net, lc=lc),
        }
        if include_exact:
            trees["optimal"] = builder_tree("exact", net, lc=lc)

        for name, tree in trees.items():
            acc[name]["cost"].append(tree.cost() * PAPER_COST_SCALE)
            acc[name]["rel"].append(tree.reliability())
            acc[name]["life"].append(tree.lifetime())
            acc[name]["ok"].append(tree.lifetime() >= lc * (1 - 1e-9))

    summaries = tuple(
        AlgorithmSummary(
            name=name,
            mean_cost=float(np.mean(acc[name]["cost"])),
            mean_reliability=float(np.mean(acc[name]["rel"])),
            mean_lifetime=float(np.mean(acc[name]["life"])),
            meets_lc_fraction=float(np.mean(acc[name]["ok"])),
        )
        for name in names
    )
    return ExtBaselinesResult(summaries=summaries, n_trials=n_trials)
