"""Persisting experiment results.

The harness's result objects are nested frozen dataclasses; this module
exports them to JSON (numpy-safe, recursion-safe) so runs can be archived,
diffed, or plotted later without re-running the sweep, and loads them back
as plain dictionaries.

The export is deliberately *schema-light*: each document records the result
class name, the library version, the recursively-converted payload, and —
since the instrumentation layer landed — a **run manifest** (seed, parameter
dict, git revision, tool versions) so archived artifacts are reproducible
and diffable, not just raw series.  When an instrumentation session is
active (or a snapshot is passed explicitly) the document also carries the
run's metrics.  Loading returns the dict — downstream analysis works on the
data, not on reconstructed objects (the objects can always be regenerated
from the recorded experiment module + seed).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

from repro.obs import RunManifest, collect_manifest
from repro.obs.runtime import OBS

__all__ = ["result_to_dict", "save_result", "load_result"]

_FORMAT = "repro-experiment-result"
_MAX_DEPTH = 32


def _convert(value: Any, depth: int = 0) -> Any:
    """Recursively convert a result payload into JSON-compatible values."""
    if depth > _MAX_DEPTH:
        raise ValueError("result structure too deeply nested to serialize")
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _convert(getattr(value, field.name), depth + 1)
            for field in dataclasses.fields(value)
        }
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    if isinstance(value, dict):
        return {str(k): _convert(v, depth + 1) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_convert(v, depth + 1) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(
        f"cannot serialize value of type {type(value).__name__} in a result"
    )


def result_to_dict(
    result: Any,
    *,
    manifest: Optional[RunManifest] = None,
    metrics: Optional[Dict[str, Any]] = None,
) -> Dict:
    """Wrap *result* (a harness result dataclass) into an export document.

    Args:
        result: The harness result dataclass to export.
        manifest: Reproducibility record to embed; collected automatically
            (seed unknown, current environment) when not supplied.
        metrics: Metrics snapshot to embed; defaults to the active
            instrumentation session's registry when one is enabled.
    """
    from repro import __version__

    if not dataclasses.is_dataclass(result):
        raise TypeError(
            f"expected a result dataclass, got {type(result).__name__}"
        )
    if manifest is None:
        manifest = collect_manifest()
    if metrics is None and OBS.enabled:
        metrics = OBS.registry.snapshot()
    doc = {
        "format": _FORMAT,
        "library_version": __version__,
        "result_class": type(result).__name__,
        "manifest": manifest.to_dict(),
        "data": _convert(result),
    }
    if metrics is not None:
        doc["metrics"] = _convert(metrics)
    return doc


def save_result(
    result: Any,
    path: Union[str, Path],
    *,
    manifest: Optional[RunManifest] = None,
    metrics: Optional[Dict[str, Any]] = None,
) -> None:
    """Write *result* to *path* as a JSON document (manifest included)."""
    Path(path).write_text(
        json.dumps(
            result_to_dict(result, manifest=manifest, metrics=metrics), indent=2
        )
    )


def load_result(path: Union[str, Path]) -> Dict:
    """Load an exported result; returns the document as a plain dict.

    Raises ``ValueError`` for documents that are not harness exports.
    """
    data = json.loads(Path(path).read_text())
    if data.get("format") != _FORMAT:
        raise ValueError(
            f"not a {_FORMAT} document (format={data.get('format')!r})"
        )
    return data
