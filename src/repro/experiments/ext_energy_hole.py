"""Extension: energy-hole analysis — who dies first, and where?

The paper's introduction motivates aggregation with the *energy hole*
phenomenon [2]: in a collection tree, nodes near the sink forward (receive)
more and die first.  This extension quantifies the effect on our substrate:
for each algorithm's tree over a unit-disk field, it bins nodes by hop
distance from the sink and reports the mean children count and the mean
node lifetime per depth bin, plus the tree's overall bottleneck depth.

Expected shape: the BFS/SPT trees concentrate children near the sink
(depth-1 nodes carry the network) while AAML/IRA flatten the load — their
bottleneck lifetime is higher and, notably, *not* adjacent to the sink.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.experiments.common import build_tree, builder_tree
from repro.core.tree import AggregationTree
from repro.network.model import Network
from repro.network.topology import unit_disk_graph
from repro.utils.ascii_chart import bar_chart
from repro.utils.tables import format_table

__all__ = ["DepthProfile", "EnergyHoleResult", "run_energy_hole"]


@dataclass(frozen=True)
class DepthProfile:
    """Per-depth load/lifetime profile of one tree.

    Attributes:
        name: Algorithm label.
        mean_children_by_depth: Depth (hops from sink) -> mean children.
        mean_lifetime_by_depth: Depth -> mean node lifetime.
        bottleneck_depth: Hop distance of the first node that would die.
        lifetime: The tree's network lifetime.
    """

    name: str
    mean_children_by_depth: Dict[int, float]
    mean_lifetime_by_depth: Dict[int, float]
    bottleneck_depth: int
    lifetime: float

    @classmethod
    def of(cls, name: str, tree: AggregationTree) -> "DepthProfile":
        by_depth: Dict[int, List[int]] = {}
        life_by_depth: Dict[int, List[float]] = {}
        for v in range(tree.n):
            d = tree.depth(v)
            by_depth.setdefault(d, []).append(tree.n_children(v))
            life_by_depth.setdefault(d, []).append(tree.node_lifetime(v))
        return cls(
            name=name,
            mean_children_by_depth={
                d: float(np.mean(ch)) for d, ch in sorted(by_depth.items())
            },
            mean_lifetime_by_depth={
                d: float(np.mean(lv)) for d, lv in sorted(life_by_depth.items())
            },
            bottleneck_depth=tree.depth(tree.bottleneck()),
            lifetime=tree.lifetime(),
        )


@dataclass(frozen=True)
class EnergyHoleResult:
    """Depth profiles of every compared tree over the same field."""

    profiles: Tuple[DepthProfile, ...]

    def profile(self, name: str) -> DepthProfile:
        for p in self.profiles:
            if p.name == name:
                return p
        raise KeyError(name)

    def render(self) -> str:
        depths = sorted(
            {d for p in self.profiles for d in p.mean_children_by_depth}
        )
        rows = []
        for p in self.profiles:
            row = [p.name]
            for d in depths:
                value = p.mean_children_by_depth.get(d)
                row.append("-" if value is None else round(value, 2))
            row.append(p.bottleneck_depth)
            row.append(f"{p.lifetime:.3e}")
            rows.append(row)
        headers = (
            ["tree"]
            + [f"ch@d{d}" for d in depths]
            + ["bottleneck depth", "lifetime"]
        )
        return format_table(
            headers,
            rows,
            title="Extension — mean children per hop depth (energy hole)",
        )

    def render_chart(self) -> str:
        """Bar chart of each tree's network lifetime."""
        return bar_chart(
            [p.name for p in self.profiles],
            [p.lifetime for p in self.profiles],
            title="network lifetime by tree (rounds)",
            value_fmt=".3e",
        )


def run_energy_hole(
    network: Optional[Network] = None,
    *,
    lc_fraction: float = 0.8,
    seed: int = 99,
) -> EnergyHoleResult:
    """Profile BFS / SPT / MST / AAML / IRA trees over a unit-disk field.

    Args:
        network: Field to analyse (default: a 40-node lossy unit-disk
            deployment).
        lc_fraction: IRA's bound as a fraction of AAML's optimal lifetime.
        seed: Topology seed for the default field.
    """
    if not (0 < lc_fraction <= 1):
        raise ValueError(f"lc_fraction must be in (0, 1], got {lc_fraction}")
    net = (
        network
        if network is not None
        else unit_disk_graph(
            40, 60.0, 22.0, tx_power_dbm=-8.0, seed=seed, max_attempts=100
        )
    )
    aaml = build_tree("aaml", net)
    ira = build_tree("ira", net, lc=aaml.lifetime * lc_fraction)
    profiles = (
        DepthProfile.of("BFS", builder_tree("bfs", net)),
        DepthProfile.of("SPT", builder_tree("spt", net)),
        DepthProfile.of("MST", builder_tree("mst", net)),
        DepthProfile.of("AAML", aaml.tree),
        DepthProfile.of("IRA", ira.tree),
    )
    return EnergyHoleResult(profiles=profiles)
