"""Extension: the latency / reliability / lifetime triangle.

The paper optimizes reliability under a lifetime bound; its related work
(delay-constrained trees) adds the third axis.  Under the TDMA collection
schedule the per-round latency equals the tree depth, so the three
objectives pull in different directions:

* lifetime wants *flat load* → path-like trees → deep → slow;
* latency wants *shallow* trees → heavy hubs → short-lived;
* reliability wants *cheap links* regardless of shape.

This experiment places every algorithm in that triangle on one field: for
each tree it reports depth (slots per round), measured TDMA latency,
closed-form and empirical reliability, and lifetime.  Delay-bounded trees
at several depth budgets trace the latency knob explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.experiments.common import build_tree, builder_tree
from repro.core.tree import PAPER_COST_SCALE, AggregationTree
from repro.network.model import Network
from repro.network.topology import unit_disk_graph
from repro.simulation.events import TDMACollectionSimulator
from repro.utils.ascii_chart import bar_chart
from repro.utils.tables import format_table

__all__ = ["LatencyEntry", "ExtLatencyResult", "run_ext_latency"]


@dataclass(frozen=True)
class LatencyEntry:
    """One tree's position in the latency/reliability/lifetime triangle.

    Attributes:
        name: Algorithm label.
        depth: Tree depth == TDMA slots per round.
        latency_s: Measured mean round latency.
        cost: Tree cost (paper units).
        reliability: Closed-form ``Q(T)``.
        empirical_reliability: Complete-round frequency over the TDMA run.
        lifetime: ``L(T)`` in rounds.
    """

    name: str
    depth: int
    latency_s: float
    cost: float
    reliability: float
    empirical_reliability: float
    lifetime: float


@dataclass(frozen=True)
class ExtLatencyResult:
    """All entries over the shared field."""

    entries: Tuple[LatencyEntry, ...]
    slot_duration: float

    def entry(self, name: str) -> LatencyEntry:
        for e in self.entries:
            if e.name == name:
                return e
        raise KeyError(name)

    def render(self) -> str:
        rows = [
            [
                e.name,
                e.depth,
                round(e.latency_s * 1000, 1),
                round(e.cost, 1),
                round(e.reliability, 4),
                round(e.empirical_reliability, 4),
                f"{e.lifetime:.3e}",
            ]
            for e in self.entries
        ]
        return format_table(
            [
                "tree",
                "depth",
                "latency ms",
                "cost",
                "Q(T)",
                "measured Q",
                "lifetime",
            ],
            rows,
            title="Extension — latency / reliability / lifetime triangle",
        )

    def render_chart(self) -> str:
        """Bar chart of per-round latency per tree."""
        return bar_chart(
            [e.name for e in self.entries],
            [e.latency_s * 1000 for e in self.entries],
            title="round latency (ms)",
            value_fmt=".1f",
        )


def run_ext_latency(
    network: Optional[Network] = None,
    *,
    depth_budgets: Sequence[int] = (3, 5),
    slot_duration: float = 0.01,
    n_rounds: int = 1500,
    seed: int = 55,
) -> ExtLatencyResult:
    """Run the triangle study (default: a 30-node lossy unit-disk field)."""
    if n_rounds <= 0:
        raise ValueError(f"n_rounds must be positive, got {n_rounds}")
    net = (
        network
        if network is not None
        else unit_disk_graph(
            30, 50.0, 20.0, tx_power_dbm=-8.0, seed=seed, max_attempts=100
        )
    )
    aaml = build_tree("aaml", net)
    trees: Dict[str, AggregationTree] = {
        "SPT": builder_tree("spt", net),
        "MST": builder_tree("mst", net),
        "AAML": aaml.tree,
        "IRA@0.8L": builder_tree("ira", net, lc=0.8 * aaml.lifetime),
    }
    for budget in depth_budgets:
        try:
            trees[f"delay<={budget}"] = builder_tree("delay_bounded", net, max_depth=budget)
        except ValueError:
            continue  # budget below the field's BFS eccentricity

    entries = []
    for name, tree in trees.items():
        sim = TDMACollectionSimulator(
            tree, slot_duration=slot_duration, seed=seed
        )
        sim.run_rounds(n_rounds)
        entries.append(
            LatencyEntry(
                name=name,
                depth=max(tree.depth(v) for v in range(tree.n)),
                latency_s=sim.mean_latency(),
                cost=tree.cost() * PAPER_COST_SCALE,
                reliability=tree.reliability(),
                empirical_reliability=sim.empirical_reliability(),
                lifetime=tree.lifetime(),
            )
        )
    return ExtLatencyResult(
        entries=tuple(entries), slot_duration=slot_duration
    )
