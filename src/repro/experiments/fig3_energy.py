"""Fig. 3 — TelosB power draw per radio state (send / receive / idle).

The paper measures three identical TelosB nodes with a Monsoon PowerMonitor:
~80 mW while sending 34-byte packets, ~60 mW while listening/receiving, and
~80 µW idle with the radio off.  Those averages justify estimating lifetime
from send/receive packet counts only (Eq. 1).

Without the hardware, this experiment synthesizes PowerMonitor-like traces
around the published averages (:func:`repro.network.energy
.synthesize_power_trace`) and reports the per-state means plus the ratios
the paper's argument rests on (idle power is 3 orders of magnitude below
active power).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.network.energy import (
    IDLE_POWER_W,
    RECV_POWER_W,
    SEND_POWER_W,
    PowerTrace,
    synthesize_power_trace,
)
from repro.utils.ascii_chart import bar_chart
from repro.utils.rng import stable_hash_seed
from repro.utils.tables import format_table

__all__ = ["Fig3Result", "run_fig3"]

_REFERENCE_W = {"send": SEND_POWER_W, "recv": RECV_POWER_W, "idle": IDLE_POWER_W}


@dataclass(frozen=True)
class Fig3Result:
    """Measured (synthesized) per-state power draw.

    Attributes:
        mean_power_w: Average power per radio state.
        reference_w: The paper's published averages for comparison.
        traces: The underlying traces (for plotting/inspection).
    """

    mean_power_w: Dict[str, float]
    reference_w: Dict[str, float]
    traces: Dict[str, PowerTrace]

    @property
    def idle_to_active_ratio(self) -> float:
        """Idle draw as a fraction of send draw (paper: ~1/1000)."""
        return self.mean_power_w["idle"] / self.mean_power_w["send"]

    def render(self) -> str:
        rows = [
            [
                state,
                f"{self.mean_power_w[state] * 1e3:.3f} mW",
                f"{self.reference_w[state] * 1e3:.3f} mW",
            ]
            for state in ("send", "recv", "idle")
        ]
        return format_table(
            ["state", "measured mean", "paper average"],
            rows,
            title="Fig. 3 — TelosB power draw per radio state",
        )

    def render_chart(self) -> str:
        """Bar chart of the per-state power draw (mW)."""
        states = ("send", "recv", "idle")
        return bar_chart(
            states,
            [self.mean_power_w[s] * 1e3 for s in states],
            title="Fig. 3 — mean power per radio state (mW)",
            value_fmt=".3f",
        )


def run_fig3(
    *, duration_s: float = 10.0, sample_hz: float = 1000.0, base_seed: int = 3
) -> Fig3Result:
    """Synthesize the three state traces and summarize them."""
    traces = {
        state: synthesize_power_trace(
            state,
            duration_s=duration_s,
            sample_hz=sample_hz,
            seed=stable_hash_seed("fig3", base_seed, state),
        )
        for state in ("send", "recv", "idle")
    }
    return Fig3Result(
        mean_power_w={s: t.mean_power_w for s, t in traces.items()},
        reference_w=dict(_REFERENCE_W),
        traces=traces,
    )
