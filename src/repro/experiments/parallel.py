"""Parallel execution of embarrassingly-parallel experiment sweeps.

The random-graph experiments (Figs. 8–10) run hundreds of independent
trials; each trial's seed is already a pure function of its semantic labels
(:func:`repro.utils.rng.stable_hash_seed`), so trials can be distributed
across processes with **bitwise-identical** results to the serial loop —
the property the tests pin.

Design notes (per the scientific-Python guidance this project follows):

* processes, not threads — the LP solver and the local searches are
  CPU-bound Python;
* chunked map — each worker gets a contiguous block of trial indices to
  amortise process start-up and pickling;
* the pool is only engaged when the caller asks for it — an explicit
  ``n_jobs > 1`` is always honoured (it used to be silently demoted to the
  serial path below a size threshold); :data:`MIN_ITEMS_FOR_POOL` remains
  the published guidance for callers deciding whether a sweep is big
  enough to be worth forking for;
* long-running callers can pass a pre-created ``executor`` — the serving
  layer (:mod:`repro.serve`) dispatches many small batches and must not
  pay fork+import per batch, so both entry points accept an existing
  :class:`concurrent.futures.Executor` and leave its lifecycle to the
  owner (no ``shutdown`` on exit).
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

__all__ = [
    "ParallelBuildError",
    "default_workers",
    "parallel_build",
    "parallel_map",
]

T = TypeVar("T")


class ParallelBuildError(RuntimeError):
    """A sweep trial's builder failed; names the builder and trial index.

    Raised by :func:`parallel_build` in place of the builder's own
    exception, which — surfacing from a worker process deep in a pool map —
    otherwise says nothing about *which* of the hundreds of trials died or
    what builder/config it was running.  The original exception stays
    available as ``__cause__``.

    The ``(builder, index, detail)`` args round-trip through pickle, so the
    error crosses the process boundary intact.
    """

    def __init__(self, builder: str, index: int, detail: str):
        super().__init__(builder, index, detail)
        self.builder = builder
        self.index = index
        self.detail = detail

    def __str__(self) -> str:
        return (
            f"builder {self.builder!r} failed on trial {self.index}: "
            f"{self.detail}"
        )

#: Advisory pool threshold: below this many items the fork+import cost
#: typically dwarfs the work, so callers picking a worker count themselves
#: should prefer ``n_jobs=None`` (serial).  :func:`parallel_map` no longer
#: applies it to an *explicit* ``n_jobs > 1`` — the caller knows their
#: per-item cost better than a global constant does.
MIN_ITEMS_FOR_POOL = 8


def default_workers() -> int:
    """Worker count: physical parallelism minus one, at least 1."""
    return max((os.cpu_count() or 2) - 1, 1)


def _run_block(args: Tuple[Callable[[int], T], Sequence[int]]) -> List[T]:
    func, indices = args
    return [func(i) for i in indices]


def _build_indexed(
    builder: str,
    network_factory: Callable[[int], Any],
    config: Dict[str, Any],
    backend: Optional[str],
    index: int,
):
    from repro.engine import build_tree

    try:
        return build_tree(
            builder, network_factory(index), backend=backend, **config
        )
    except Exception as exc:
        raise ParallelBuildError(
            builder, index, f"{type(exc).__name__}: {exc}"
        ) from exc


def parallel_build(
    builder: str,
    network_factory: Callable[[int], Any],
    n_trials: int,
    *,
    config: Optional[Dict[str, Any]] = None,
    backend: Optional[str] = None,
    n_jobs: Optional[int] = None,
    chunk_size: Optional[int] = None,
    executor: Optional[Executor] = None,
) -> List[Any]:
    """Run one registry builder over ``n_trials`` independent networks.

    The builder is addressed by its registry *name* (a plain string, so the
    work items pickle cheaply) and is resolved once up-front to fail fast on
    typos.  ``network_factory(i)`` must build trial *i*'s network from the
    index alone (derive seeds from ``i``), which makes the sweep
    schedule-independent exactly like :func:`parallel_map`.

    ``backend`` selects the TreeState implementation every trial builds on
    (:mod:`repro.engine.backend`); being a plain string it pickles into
    worker processes, so a sweep can run array-native regardless of each
    worker's own environment.  Results are bitwise identical across
    backends — only throughput changes.

    ``executor`` reuses a caller-owned worker pool (see
    :func:`parallel_map`) instead of spawning one per call.

    Returns the :class:`repro.engine.BuildResult` list in trial order.
    """
    from functools import partial

    from repro.engine import get_builder
    from repro.engine.backend import resolve_backend

    get_builder(builder)  # fail fast on unknown names before forking
    resolve_backend(backend)  # and on unknown backends, same rule
    func = partial(
        _build_indexed, builder, network_factory, dict(config or {}), backend
    )
    return parallel_map(
        func, n_trials, n_jobs=n_jobs, chunk_size=chunk_size, executor=executor
    )


def parallel_map(
    func: Callable[[int], T],
    n_items: int,
    *,
    n_jobs: Optional[int] = None,
    chunk_size: Optional[int] = None,
    executor: Optional[Executor] = None,
) -> List[T]:
    """Evaluate ``[func(0), ..., func(n_items - 1)]``, possibly in parallel.

    Args:
        func: Index -> result; must be picklable (a module-level function or
            functools.partial of one) and must derive all randomness from
            the index, so results are order- and schedule-independent.
        n_items: Number of items.
        n_jobs: Process count; ``None`` or ``1`` runs serially (``None``
            stays serial to keep the default path dependency-free;
            pass ``default_workers()`` to use all cores).  An explicit
            ``n_jobs > 1`` always engages the pool — the
            :data:`MIN_ITEMS_FOR_POOL` heuristic only applies when the
            caller left the decision to this function.  (It used to apply
            unconditionally, silently running serially for small sweeps the
            caller explicitly asked to parallelise — e.g. few trials that
            are each expensive.)
        chunk_size: Items per worker task (default: balanced blocks).
        executor: Pre-created worker pool to submit blocks to.  The pool is
            *borrowed*: it is not shut down on return, so a long-running
            caller (the tree server, a sweep loop) pays process start-up
            once and reuses the same workers across many calls.  With an
            executor, ``n_jobs`` only sizes the chunking (default
            :func:`default_workers`); the executor's own worker count
            bounds actual parallelism.

    Returns results in index order, identical to the serial evaluation.
    """
    if n_items < 0:
        raise ValueError(f"n_items must be non-negative, got {n_items}")
    if n_items == 0:
        return []
    if n_jobs is not None and n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    if chunk_size is not None and chunk_size < 1:
        # Without this, chunk_size=0 used to escape as an opaque
        # "range() arg 3 must not be zero" from the block splitter.
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")

    if executor is None and (n_jobs is None or n_jobs == 1):
        return [func(i) for i in range(n_items)]

    workers = min(n_jobs if n_jobs is not None else default_workers(), n_items)
    if chunk_size is None:
        chunk_size = max(1, (n_items + workers - 1) // workers)
    blocks = [
        list(range(start, min(start + chunk_size, n_items)))
        for start in range(0, n_items, chunk_size)
    ]
    tasks = [(func, block) for block in blocks]
    results: List[T] = []
    if executor is not None:
        for block_result in executor.map(_run_block, tasks):
            results.extend(block_result)
        return results
    with ProcessPoolExecutor(max_workers=workers) as pool:
        for block_result in pool.map(_run_block, tasks):
            results.extend(block_result)
    return results
