"""Fig. 8 — cost over random graphs, uniform initial energy.

Section VII-B1: 100 random graphs with 16 nodes, link probability 70%, link
PRRs uniform in (0.95, 1), every node at 3000 J.  For each graph the AAML
lifetime is used as IRA's lifetime constraint, and the per-trial costs of
AAML, IRA, and MST are compared.  Expected shape (paper): AAML between ~400
and ~800 paper-cost units (reliability 57–75%), IRA between ~75 and ~250
(85–95%), MST slightly below IRA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.experiments.common import build_tree
from repro.core.tree import PAPER_COST_SCALE
from functools import partial

from repro.experiments.common import summarize
from repro.experiments.parallel import parallel_map
from repro.network.energy import DEFAULT_BATTERY_J
from repro.network.topology import random_graph
from repro.utils.ascii_chart import line_chart
from repro.utils.rng import as_rng, stable_hash_seed
from repro.utils.tables import format_table

__all__ = ["RandomGraphTrial", "Fig8Result", "run_fig8", "run_random_graph_trials"]


@dataclass(frozen=True)
class RandomGraphTrial:
    """Per-graph costs/reliabilities of the three algorithms (paper units).

    Attributes:
        index: Trial number.
        aaml_cost / ira_cost / mst_cost: Paper-unit tree costs.
        aaml_reliability / ira_reliability / mst_reliability: ``Q(T)``.
        lc: The lifetime constraint handed to IRA (the AAML lifetime).
        ira_lifetime_ok: Whether IRA's tree met ``lc``.
    """

    index: int
    aaml_cost: float
    ira_cost: float
    mst_cost: float
    aaml_reliability: float
    ira_reliability: float
    mst_reliability: float
    lc: float
    ira_lifetime_ok: bool


@dataclass(frozen=True)
class Fig8Result:
    """All trials plus per-algorithm summaries."""

    trials: Tuple[RandomGraphTrial, ...]

    def costs(self, algorithm: str) -> Tuple[float, ...]:
        return tuple(getattr(t, f"{algorithm}_cost") for t in self.trials)

    def summary(self) -> Dict[str, Dict[str, float]]:
        return {alg: summarize(self.costs(alg)) for alg in ("aaml", "ira", "mst")}

    def render(self) -> str:
        rows = [
            [
                t.index,
                round(t.aaml_cost, 1),
                round(t.ira_cost, 1),
                round(t.mst_cost, 1),
                t.ira_lifetime_ok,
            ]
            for t in self.trials
        ]
        table = format_table(
            ["trial", "AAML", "IRA", "MST", "IRA ok"],
            rows,
            title="Fig. 8 — cost per trial (paper units), same initial energy",
        )
        summary = self.summary()
        stats = format_table(
            ["algorithm", "mean", "median", "min", "max"],
            [
                [alg.upper()] + [round(summary[alg][k], 1) for k in ("mean", "median", "min", "max")]
                for alg in ("aaml", "ira", "mst")
            ],
        )
        return table + "\n\n" + stats

    def render_chart(self) -> str:
        """Per-trial cost curves (the three lines of the paper's figure)."""
        xs = tuple(t.index for t in self.trials)
        series = {
            "AAML": (xs, self.costs("aaml")),
            "IRA": (xs, self.costs("ira")),
            "MST": (xs, self.costs("mst")),
        }
        return line_chart(series, title="cost per trial (paper units)")


def _run_one_trial(
    label: str,
    base_seed: int,
    n_nodes: int,
    link_probability: float,
    energy_low: Optional[float],
    energy_high: Optional[float],
    index: int,
) -> RandomGraphTrial:
    """One random-graph trial; seeded purely by its labels (parallel-safe)."""
    seed = stable_hash_seed(label, base_seed, n_nodes, link_probability, index)
    rng_seed = np.random.SeedSequence(seed)
    children = rng_seed.spawn(2)
    if energy_low is not None and energy_high is not None:
        energies = as_rng(children[0]).uniform(
            energy_low, energy_high, size=n_nodes
        )
    else:
        energies = DEFAULT_BATTERY_J
    net = random_graph(
        n_nodes,
        link_probability,
        initial_energy=energies,
        seed=as_rng(children[1]),
    )
    aaml = build_tree("aaml", net)
    mst = build_tree("mst", net)
    ira = build_tree("ira", net, lc=aaml.lifetime)
    return RandomGraphTrial(
        index=index,
        aaml_cost=aaml.cost * PAPER_COST_SCALE,
        ira_cost=ira.cost * PAPER_COST_SCALE,
        mst_cost=mst.cost * PAPER_COST_SCALE,
        aaml_reliability=aaml.reliability,
        ira_reliability=ira.reliability,
        mst_reliability=mst.reliability,
        lc=aaml.lifetime,
        ira_lifetime_ok=ira.meta["lifetime_satisfied"],
    )


def run_random_graph_trials(
    *,
    n_trials: int,
    n_nodes: int,
    link_probability: float,
    energy_low: Optional[float],
    energy_high: Optional[float],
    label: str,
    base_seed: int,
    n_jobs: Optional[int] = None,
) -> Tuple[RandomGraphTrial, ...]:
    """Shared trial loop behind Figs. 8, 9 and 10.

    With ``energy_low``/``energy_high`` set, per-node energies are drawn
    uniformly from that interval (Fig. 9); otherwise every node gets the
    default 3000 J battery (Figs. 8 and 10).  ``n_jobs > 1`` distributes
    trials over processes with bitwise-identical results (each trial's seed
    is a pure function of its labels).
    """
    trial = partial(
        _run_one_trial,
        label,
        base_seed,
        n_nodes,
        link_probability,
        energy_low,
        energy_high,
    )
    return tuple(parallel_map(trial, n_trials, n_jobs=n_jobs))


def run_fig8(
    *,
    n_trials: int = 100,
    n_nodes: int = 16,
    link_probability: float = 0.7,
    base_seed: int = 8,
    n_jobs: Optional[int] = None,
) -> Fig8Result:
    """Run the Fig. 8 workload (paper defaults)."""
    trials = run_random_graph_trials(
        n_trials=n_trials,
        n_nodes=n_nodes,
        link_probability=link_probability,
        energy_low=None,
        energy_high=None,
        label="fig8",
        base_seed=base_seed,
        n_jobs=n_jobs,
    )
    return Fig8Result(trials=trials)
