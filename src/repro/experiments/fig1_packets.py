"""Fig. 1 — average packets per aggregation round vs. average link quality.

The motivation experiment: under retransmit-until-success, one aggregation
round over an ``n``-node tree needs ``sum_e 1/q_e`` packets in expectation.
The paper reports that a 16-node network grows from 15 packets at perfect
quality to ~150 at 10% quality, worse for larger networks.

Workload: for each network size and each average link quality, a random
connected topology is drawn, all link PRRs are set to the target quality, a
spanning tree is built, and packets per round are measured by simulation
(with the closed-form expectation recorded alongside).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.experiments.common import builder_tree
from repro.network.topology import random_graph
from repro.simulation.retransmission import average_packets, expected_packets_per_round
from repro.utils.ascii_chart import line_chart
from repro.utils.rng import stable_hash_seed
from repro.utils.tables import format_table

__all__ = ["Fig1Result", "run_fig1"]

DEFAULT_SIZES = (16, 32, 64)
DEFAULT_QUALITIES = tuple(round(q, 2) for q in np.arange(1.0, 0.09, -0.1))


@dataclass(frozen=True)
class Fig1Result:
    """Series for Fig. 1: one packets-per-round curve per network size.

    Attributes:
        qualities: The swept average link qualities (x axis).
        simulated: ``{n: [avg packets]}`` measured by simulation.
        expected: ``{n: [avg packets]}`` from the closed form ``sum 1/q``.
    """

    qualities: Tuple[float, ...]
    simulated: Dict[int, Tuple[float, ...]]
    expected: Dict[int, Tuple[float, ...]]

    def render(self) -> str:
        headers = ["avg quality"] + [
            f"n={n} (sim/exp)" for n in sorted(self.simulated)
        ]
        rows = []
        for i, q in enumerate(self.qualities):
            row = [q]
            for n in sorted(self.simulated):
                row.append(
                    f"{self.simulated[n][i]:.1f}/{self.expected[n][i]:.1f}"
                )
            rows.append(row)
        return format_table(
            headers,
            rows,
            title="Fig. 1 — avg packets per round vs avg link quality",
        )

    def render_chart(self) -> str:
        """Line plot of the per-size packet curves."""
        series = {
            f"n={n}": (self.qualities, self.simulated[n])
            for n in sorted(self.simulated)
        }
        return line_chart(
            series, title="Fig. 1 — packets per round vs link quality"
        )


def run_fig1(
    sizes: Sequence[int] = DEFAULT_SIZES,
    qualities: Sequence[float] = DEFAULT_QUALITIES,
    *,
    n_rounds: int = 200,
    base_seed: int = 1,
) -> Fig1Result:
    """Run the Fig. 1 sweep.

    Args:
        sizes: Network sizes (paper shows 16 plus larger networks).
        qualities: Average link qualities from good to bad.
        n_rounds: Simulated rounds per (size, quality) point.
        base_seed: Label mixed into every per-point seed.
    """
    simulated: Dict[int, List[float]] = {n: [] for n in sizes}
    expected: Dict[int, List[float]] = {n: [] for n in sizes}
    for n in sizes:
        topo_seed = stable_hash_seed("fig1-topology", base_seed, n)
        net = random_graph(n, 0.5, prr_low=0.5, prr_high=0.999, seed=topo_seed)
        for q in qualities:
            # Same topology at every quality so only link quality varies.
            for edge in list(net.edges()):
                net.set_prr(edge.u, edge.v, q)
            tree = builder_tree("mst", net)
            sim_seed = stable_hash_seed("fig1-sim", base_seed, n, q)
            simulated[n].append(average_packets(tree, n_rounds, seed=sim_seed))
            expected[n].append(expected_packets_per_round(tree))
    return Fig1Result(
        qualities=tuple(qualities),
        simulated={n: tuple(v) for n, v in simulated.items()},
        expected={n: tuple(v) for n, v in expected.items()},
    )
