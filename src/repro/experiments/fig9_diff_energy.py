"""Fig. 9 — cost over random graphs, heterogeneous initial energy.

Section VII-B2: as Fig. 8 but with per-node initial energy uniform in
[1500 J, 5000 J] (a network that has already been running for a while).
Expected shape (paper): IRA and MST are even closer than with uniform
energy — low-energy nodes end up as leaves, high-energy nodes have slack —
while AAML stays unstable, costing at least ~50% more than IRA in most
cases and far more in the bad tail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.experiments.fig8_same_energy import Fig8Result, run_random_graph_trials

__all__ = ["Fig9Result", "run_fig9", "DEFAULT_ENERGY_RANGE_J"]

DEFAULT_ENERGY_RANGE_J = (1500.0, 5000.0)


@dataclass(frozen=True)
class Fig9Result(Fig8Result):
    """Same structure as Fig. 8's result, heterogeneous-energy workload."""

    def render(self) -> str:
        out = super().render()
        return out.replace(
            "Fig. 8 — cost per trial (paper units), same initial energy",
            "Fig. 9 — cost per trial (paper units), energy ~ U[1500, 5000] J",
        )


def run_fig9(
    *,
    n_trials: int = 100,
    n_nodes: int = 16,
    link_probability: float = 0.7,
    energy_range: Tuple[float, float] = DEFAULT_ENERGY_RANGE_J,
    base_seed: int = 9,
    n_jobs: Optional[int] = None,
) -> Fig9Result:
    """Run the Fig. 9 workload (paper defaults)."""
    low, high = energy_range
    if not (0 < low <= high):
        raise ValueError(f"invalid energy range {energy_range}")
    trials = run_random_graph_trials(
        n_trials=n_trials,
        n_nodes=n_nodes,
        link_probability=link_probability,
        energy_low=low,
        energy_high=high,
        label="fig9",
        base_seed=base_seed,
        n_jobs=n_jobs,
    )
    return Fig9Result(trials=trials)
