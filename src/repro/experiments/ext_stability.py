"""Extension: structural stability of tree choices under estimation noise.

Every structural difference between two runs costs a real Parent-Changing
broadcast when maintained online, so an algorithm whose output flips with
every beacon re-estimate is operationally expensive even if every variant
is individually fine.  This study re-estimates the canonical DFL field many
times and reports, per algorithm, how much the produced tree churns
(pairwise parent disagreements) versus how much its true quality moves.

Expected shape: MST/IRA outputs churn noticeably (estimated costs are full
of near-ties) while their *true reliability* barely moves — instability is
benign for quality but motivates damping in the maintenance protocol.
AAML, being link-blind, is perfectly stable: it never reads the estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.analysis.stability import StabilityReport, estimation_stability
from repro.experiments.common import build_tree, builder_tree
from repro.network.dfl import dfl_network
from repro.network.model import Network
from repro.utils.ascii_chart import bar_chart
from repro.utils.tables import format_table

__all__ = ["ExtStabilityResult", "run_ext_stability"]


@dataclass(frozen=True)
class ExtStabilityResult:
    """Per-algorithm stability reports over one ground-truth field."""

    reports: Dict[str, StabilityReport]
    n_beacons: int

    def report(self, name: str) -> StabilityReport:
        return self.reports[name]

    def render(self) -> str:
        rows = [
            [
                name,
                round(r.mean_pairwise_distance, 2),
                r.max_pairwise_distance,
                round(r.mean_true_reliability, 4),
                round(r.reliability_spread, 4),
            ]
            for name, r in self.reports.items()
        ]
        return format_table(
            [
                "algorithm",
                "mean churn",
                "max churn",
                "mean true Q",
                "Q spread",
            ],
            rows,
            title=(
                "Extension — structural churn under estimation resampling "
                f"({self.n_beacons} beacons/draw; churn = parent "
                "disagreements between draws)"
            ),
        )

    def render_chart(self) -> str:
        names = list(self.reports)
        return bar_chart(
            names,
            [self.reports[n].mean_pairwise_distance for n in names],
            title="mean structural churn (re-parented nodes per draw pair)",
            value_fmt=".2f",
        )


def run_ext_stability(
    network: Optional[Network] = None,
    *,
    n_draws: int = 10,
    n_beacons: int = 1000,
    lc_divisor: float = 1.5,
    base_seed: int = 61,
) -> ExtStabilityResult:
    """Run the stability comparison on the DFL ground truth (default)."""
    truth = (
        network
        if network is not None
        else dfl_network(estimate_with_beacons=False)
    )
    # A fixed LC so IRA's requirement does not depend on the estimate draw.
    lc = build_tree("aaml", truth.filtered(0.95)).lifetime / lc_divisor

    builders: Dict[str, Callable[[Network], object]] = {
        "MST": lambda net: builder_tree("mst", net),
        "SPT": lambda net: builder_tree("spt", net),
        "IRA": lambda net: builder_tree("ira", net, lc=lc),
        "AAML": lambda net: builder_tree("aaml", net),
    }
    reports = {
        name: estimation_stability(
            truth,
            build,
            n_draws=n_draws,
            n_beacons=n_beacons,
            base_seed=base_seed,
        )
        for name, build in builders.items()
    }
    return ExtStabilityResult(reports=reports, n_beacons=n_beacons)
