"""Extension: maintained-tree quality under a lossy *control* plane.

The Figs. 11–13 churn study assumes the protocol's own Parent-Changing and
Code-Announcement floods always arrive — only the data plane is lossy.
This extension drops that assumption: the same churn workload runs under a
:class:`repro.faults.FaultPlan` sweep, pinning the control-plane loss rate
to increasing values (with proportional duplicate/delay rates riding
along), and reports what the faults cost:

* **quality** — final cost and reliability of the maintained tree versus
  the centralized IRA recomputation (does a lossy control plane actually
  degrade the tree, or does divergence detection + code-rebroadcast resync
  keep it on track?);
* **overhead** — total control messages, now including per-link
  retransmissions and recovery floods, versus the perfect-channel
  baseline.

The ``loss_rate = 0`` point uses a fully inactive plan and therefore
reproduces the perfect-channel experiment bit for bit — it *is* the
baseline, not an approximation of it.  Every run ends with the protocol's
settle pass, so the consistency invariant holds at every sweep point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.core.tree import PAPER_COST_SCALE
from repro.distributed.simulator import ChurnSimulation
from repro.experiments.common import build_tree
from repro.experiments.fig7_dfl import AAML_PRR_FILTER
from repro.faults import FaultPlan
from repro.network.dfl import dfl_network
from repro.network.model import Network
from repro.utils.ascii_chart import line_chart
from repro.utils.rng import stable_hash_seed
from repro.utils.tables import format_table

__all__ = ["FaultSweepPoint", "ExtFaultyControlResult", "run_ext_faulty_control"]

DEFAULT_LOSS_RATES: Tuple[float, ...] = (0.0, 0.05, 0.1, 0.2, 0.3)


@dataclass(frozen=True)
class FaultSweepPoint:
    """One churn run at one control-plane loss rate.

    Attributes:
        loss_rate: Pinned per-attempt drop probability of the fault plan.
        final_cost / final_reliability: Maintained tree at the end of the
            run (paper cost units / plain reliability).
        centralized_cost / centralized_reliability: The centralized IRA
            recomputation at the same point, for reference.
        total_messages: All control transmissions — updates, retries,
            recovery floods, and the end-of-run settle pass.
        recovery_messages: The resync-flood share of the total (in-run
            plus settle).
        updates: Rounds in which a re-parenting happened.
        fault_stats: The protocol's closing fault/recovery totals.
    """

    loss_rate: float
    final_cost: float
    final_reliability: float
    centralized_cost: float
    centralized_reliability: float
    total_messages: int
    recovery_messages: int
    updates: int
    fault_stats: Dict[str, int]


@dataclass(frozen=True)
class ExtFaultyControlResult:
    """The full loss-rate sweep."""

    points: Tuple[FaultSweepPoint, ...]
    rounds: int
    lc: float

    @property
    def baseline(self) -> FaultSweepPoint:
        """The sweep point at the lowest loss rate (0 = perfect channel)."""
        return min(self.points, key=lambda p: p.loss_rate)

    def quality_series(self) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
        """(maintained reliability, centralized reliability) per point."""
        dist = tuple(p.final_reliability for p in self.points)
        cent = tuple(p.centralized_reliability for p in self.points)
        return dist, cent

    def overhead_series(self) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """(total messages, recovery messages) per point."""
        total = tuple(p.total_messages for p in self.points)
        recovery = tuple(p.recovery_messages for p in self.points)
        return total, recovery

    def render(self) -> str:
        rows = [
            [
                f"{p.loss_rate:.2f}",
                round(p.final_cost, 1),
                round(p.centralized_cost, 1),
                round(p.final_reliability, 4),
                p.total_messages,
                p.recovery_messages,
                p.fault_stats["retries"],
                p.fault_stats["divergences"],
                p.fault_stats["resyncs"],
                p.updates,
            ]
            for p in self.points
        ]
        table = format_table(
            [
                "loss",
                "cost",
                "IRA cost",
                "rel",
                "total msgs",
                "recovery",
                "retries",
                "diverged",
                "resyncs",
                "updates",
            ],
            rows,
            title=(
                "Extension — maintained tree vs control-plane loss rate "
                f"({self.rounds} churn rounds; costs in paper units)"
            ),
        )
        base = self.baseline
        worst = max(self.points, key=lambda p: p.loss_rate)
        footer = (
            f"\nbaseline (loss {base.loss_rate:.2f}): {base.total_messages} msgs, "
            f"reliability {base.final_reliability:.4f}; "
            f"worst (loss {worst.loss_rate:.2f}): {worst.total_messages} msgs "
            f"({worst.total_messages / max(base.total_messages, 1):.1f}x), "
            f"reliability {worst.final_reliability:.4f}"
        )
        return table + footer

    def render_chart(self) -> str:
        rates = tuple(p.loss_rate for p in self.points)
        dist_r, cent_r = self.quality_series()
        total_m, recovery_m = self.overhead_series()
        quality = line_chart(
            {"maintained": (rates, dist_r), "IRA": (rates, cent_r)},
            title="reliability vs control-plane loss rate",
            height=10,
        )
        overhead = line_chart(
            {
                "total msgs": (rates, total_m),
                "recovery msgs": (rates, recovery_m),
            },
            title="control messages vs control-plane loss rate",
            height=10,
        )
        return quality + "\n\n" + overhead


def run_ext_faulty_control(
    network: Optional[Network] = None,
    *,
    loss_rates: Sequence[float] = DEFAULT_LOSS_RATES,
    rounds: int = 100,
    lc_divisor: float = 1.5,
    cost_delta: float = 1e-3,
    max_retries: int = 2,
    seed: int = 17,
) -> ExtFaultyControlResult:
    """Sweep the churn experiment over control-plane loss rates.

    Args:
        network: Instance to churn (default: canonical DFL; copied per
            sweep point, never mutated).
        loss_rates: Pinned drop rates to sweep.  Duplicate and delay rates
            ride along at half the drop rate each, so the zero point is a
            fully inactive plan (exact perfect-channel baseline).
        rounds: Churn rounds per point (paper workload: 100).
        lc_divisor: ``LC = L_AAML / lc_divisor`` for the maintained bound.
        cost_delta: Per-round degradation (paper: 1e-3).
        max_retries: Per-link retransmission budget of the fault plan.
        seed: Churn randomness; each point's fault plan derives its own
            independent stream from (seed, loss rate).
    """
    if not loss_rates:
        raise ValueError("loss_rates must be non-empty")
    base = network if network is not None else dfl_network()
    aaml = build_tree("aaml", base.filtered(AAML_PRR_FILTER))
    lc = aaml.lifetime / lc_divisor

    points = []
    for rate in loss_rates:
        net = base.copy()
        initial = build_tree("ira", net, lc=lc)
        plan = FaultPlan(
            drop_rate=rate,
            duplicate_rate=rate / 2.0,
            delay_rate=rate / 2.0,
            max_retries=max_retries,
            seed=stable_hash_seed("ext_faulty_control", seed, rate),
        )
        sim = ChurnSimulation(
            net,
            initial.tree,
            lc,
            cost_delta=cost_delta,
            fault_plan=plan,
            seed=seed,
        )
        records = sim.run(rounds)
        last = records[-1]
        stats = sim.protocol.fault_stats.to_dict()
        in_run_recovery = sum(r.recovery_messages for r in records)
        points.append(
            FaultSweepPoint(
                loss_rate=float(rate),
                final_cost=last.distributed_cost * PAPER_COST_SCALE,
                final_reliability=last.distributed_reliability,
                centralized_cost=last.centralized_cost * PAPER_COST_SCALE,
                centralized_reliability=last.centralized_reliability,
                total_messages=last.cumulative_messages + sim.settle_messages,
                recovery_messages=in_run_recovery + sim.settle_messages,
                updates=last.cumulative_updates,
                fault_stats=stats,
            )
        )
    return ExtFaultyControlResult(points=tuple(points), rounds=rounds, lc=lc)
