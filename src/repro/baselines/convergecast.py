"""Maximum-lifetime convergecast tree (John, Kasbekar & Baghini, arXiv:1910.09793).

Convergecast is collection *without* aggregation: each round every node
forwards every packet of its subtree to its parent.  A node ``v`` with
subtree size ``s_v`` (itself plus its descendants) therefore transmits
``s_v`` packets and receives ``s_v - 1``, so its per-round energy is
``Tx * s_v + Rx * (s_v - 1)`` — a load model driven by *subtree size*,
not child count like the aggregation model of Eq. 1.  That difference is
the whole point of racing this builder against the aggregation-aware
ones: the convergecast optimum hates deep heavy spines that the
aggregation model tolerates.

Following John et al., the sink is the mains-powered base station and is
excluded from the objective — necessarily so here, because the sink's
convergecast load (all ``n - 1`` packets) is the same for every spanning
tree, which would make a sink-inclusive minimum a constant.

The builder maximizes the minimum convergecast lifetime with a
lexicographic local search over reparent moves (the same potential
argument AAML uses, applied to the convergecast lifetime vector): each
accepted move strictly increases the ascending per-node lifetime vector,
which over the finite tree space guarantees termination.  Starting point
is the BFS tree; candidate evaluation updates subtree sizes only along
the two affected ancestor chains, so a move scan is cheap.

The returned :class:`AggregationTree` is judged by the library's usual
aggregation metrics like every other builder — the *construction
objective* is convergecast lifetime, reported in the result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.local_search import bfs_tree
from repro.core.tree import AggregationTree
from repro.network.model import Network

__all__ = [
    "ConvergecastResult",
    "build_convergecast_tree",
    "convergecast_lifetime",
    "convergecast_node_lifetime",
]

#: Safety cap on accepted moves; the lexicographic potential terminates the
#: search long before this on any realistic instance.
MAX_MOVES = 100_000


def convergecast_node_lifetime(
    network: Network, node: int, subtree_size: int
) -> float:
    """Rounds until *node* dies forwarding ``subtree_size`` packets per round."""
    model = network.energy_model
    per_round = model.tx * subtree_size + model.rx * (subtree_size - 1)
    return network.initial_energy(node) / per_round


def convergecast_lifetime(tree: AggregationTree) -> float:
    """Minimum convergecast lifetime over the sensor (non-sink) nodes.

    The sink is excluded: it is the base station, and its load is
    tree-invariant anyway.  A single-node network has no sensors and
    returns ``inf``.
    """
    if tree.n == 1:
        return math.inf
    sizes = _subtree_sizes(
        [tree.parent(v) if v != tree.sink else -1 for v in range(tree.n)],
        tree.sink,
    )
    return min(
        convergecast_node_lifetime(tree.network, v, sizes[v])
        for v in range(tree.n)
        if v != tree.sink
    )


@dataclass(frozen=True)
class ConvergecastResult:
    """Outcome of the convergecast lifetime search.

    Attributes:
        tree: The final tree.
        lifetime: Its minimum convergecast lifetime in rounds (the search
            objective; *not* the aggregation lifetime of Eq. 1).
        moves: Accepted local-search moves.
    """

    tree: AggregationTree
    lifetime: float
    moves: int


def _subtree_sizes(parent: List[int], sink: int) -> List[int]:
    """Subtree size per node for a parent-array tree (iterative, no recursion)."""
    n = len(parent)
    sizes = [1] * n
    order = sorted(range(n), key=lambda v: -_depth(parent, sink, v))
    for v in order:
        if v != sink:
            sizes[parent[v]] += sizes[v]
    return sizes


def _depth(parent: List[int], sink: int, v: int) -> int:
    d = 0
    while v != sink:
        v = parent[v]
        d += 1
    return d


def build_convergecast_tree(
    network: Network,
    *,
    initial_tree: Optional[AggregationTree] = None,
    max_moves: int = MAX_MOVES,
) -> ConvergecastResult:
    """Lexicographic max-min convergecast-lifetime local search.

    Args:
        network: Connected WSN instance.
        initial_tree: Starting tree; defaults to the BFS tree.
        max_moves: Safety cap on accepted moves.

    Raises:
        DisconnectedNetworkError: No spanning tree exists (via the BFS
            start tree).
        ValueError: ``initial_tree`` spans a different network.
    """
    start = initial_tree if initial_tree is not None else bfs_tree(network)
    if start.network is not network:
        raise ValueError("initial_tree must be built over the same network")
    n = network.n
    sink = network.sink
    if n == 1:
        return ConvergecastResult(start, math.inf, 0)

    parent: List[int] = [
        -1 if v == sink else int(start.parent(v))  # type: ignore[arg-type]
        for v in range(n)
    ]
    sizes = _subtree_sizes(parent, sink)
    # life[sink] is pinned +inf so the sink never participates in the
    # objective vector (its load is tree-invariant; see module docstring).
    life = [
        math.inf
        if v == sink
        else convergecast_node_lifetime(network, v, sizes[v])
        for v in range(n)
    ]

    def in_subtree(candidate: int, root: int) -> bool:
        v = candidate
        while v != sink:
            if v == root:
                return True
            v = parent[v]
        return v == root

    def chain_deltas(child: int, new_parent: int) -> Dict[int, int]:
        """Net subtree-size change per node if *child* moves under *new_parent*."""
        moved = sizes[child]
        deltas: Dict[int, int] = {}
        v = parent[child]
        while v != -1:
            deltas[v] = deltas.get(v, 0) - moved
            v = parent[v]
        v = new_parent
        while v != -1:
            deltas[v] = deltas.get(v, 0) + moved
            v = parent[v]
        return {v: d for v, d in deltas.items() if d != 0}

    current = sorted(life)
    moves = 0
    improved = True
    while improved and moves < max_moves:
        improved = False
        best_vector: Optional[List[float]] = None
        best_move: Optional[Tuple[int, int]] = None
        for child in range(n):
            if child == sink:
                continue
            for q in network.neighbors(child):
                if q == parent[child] or in_subtree(q, child):
                    continue
                deltas = chain_deltas(child, q)
                trial = life.copy()
                for v, d in deltas.items():
                    if v == sink:
                        continue
                    trial[v] = convergecast_node_lifetime(
                        network, v, sizes[v] + d
                    )
                trial_sorted = sorted(trial)
                if trial_sorted > current and (
                    best_vector is None or trial_sorted > best_vector
                ):
                    best_vector = trial_sorted
                    best_move = (child, q)
        if best_move is not None:
            child, q = best_move
            for v, d in chain_deltas(child, q).items():
                sizes[v] += d
                if v != sink:
                    life[v] = convergecast_node_lifetime(network, v, sizes[v])
            parent[child] = q
            current = sorted(life)
            moves += 1
            improved = True

    tree = AggregationTree(
        network, {v: parent[v] for v in range(n) if v != sink}
    )
    return ConvergecastResult(tree=tree, lifetime=min(life), moves=moves)
