"""Delay-bounded collection trees (depth-capped cost minimisation).

The paper's related work (Shen et al., IWCMC 2012) builds gathering trees
under a delay constraint; under the TDMA schedule of
:mod:`repro.simulation.events` the per-round latency is exactly the tree
depth, so "delay bound" = "hop bound".  Minimum-cost spanning trees of
depth ≤ D are NP-hard (hop-constrained MST), and — a subtlety worth
recording — the natural "union of per-node optimal ≤D-hop paths" does
**not** yield a depth-≤D tree: a node's recorded predecessor may itself
prefer a cheaper-but-longer path, so the union tree's depth is unbounded.

The implementation here is therefore constructive:

1. **Layered seed** — BFS hop levels (feasibility check: the BFS
   eccentricity must be ≤ D), each node adopting the cheapest parent among
   its strictly-shallower neighbours.  Depth equals the minimum possible.
2. **Depth-aware cost descent** — greedy re-parent moves that strictly
   reduce tree cost and keep every node of the moved subtree within the
   bound.  With a loose bound this walks toward the SPT; with a tight one
   it only reshuffles within the latency budget.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.errors import DisconnectedNetworkError
from repro.core.tree import AggregationTree
from repro.engine.treestate import TreeState, freeze_parents
from repro.network.model import Network

__all__ = ["build_delay_bounded_tree"]

#: Safety cap on local-search moves (each strictly decreases tree cost).
MAX_MOVES = 100_000


def _layered_seed(network: Network, max_depth: int) -> AggregationTree:
    """Minimum-hop tree with cheapest-parent selection per BFS layer."""
    n = network.n
    hop = [-1] * n
    hop[network.sink] = 0
    frontier = [network.sink]
    order: List[int] = [network.sink]
    while frontier:
        nxt: List[int] = []
        for u in frontier:
            for v in network.neighbors(u):
                if hop[v] < 0:
                    hop[v] = hop[u] + 1
                    nxt.append(v)
                    order.append(v)
        frontier = nxt
    if any(h < 0 for h in hop):
        raise DisconnectedNetworkError(
            "network is disconnected; no spanning tree exists"
        )
    eccentricity = max(hop)
    if eccentricity > max_depth:
        offenders = [v for v in range(n) if hop[v] > max_depth]
        raise ValueError(
            f"depth bound {max_depth} infeasible: nodes {offenders} are "
            f"{eccentricity} hops from the sink even on shortest paths"
        )
    # Cheapest parent among strictly shallower neighbours, accumulated
    # along the BFS order so parents' path costs are already final.
    path_cost = [0.0] * n
    parents: Dict[int, int] = {}
    for v in order:
        if v == network.sink:
            continue
        best: Optional[Tuple[float, int]] = None
        for p in network.neighbors(v):
            if hop[p] == hop[v] - 1:
                candidate = path_cost[p] + network.cost(p, v)
                if best is None or candidate < best[0]:
                    best = (candidate, p)
        assert best is not None  # BFS guarantees a shallower neighbour
        path_cost[v] = best[0]
        parents[v] = best[1]
    return AggregationTree(network, parents)


def build_delay_bounded_tree(
    network: Network, max_depth: int, *, max_moves: int = MAX_MOVES
) -> AggregationTree:
    """Heuristic cheapest tree with every node within *max_depth* hops.

    See the module docstring for the construction.  The returned tree's
    depth is guaranteed ≤ *max_depth*; its cost is locally optimal under
    single re-parent moves that respect the bound.

    Raises:
        DisconnectedNetworkError: Some node cannot reach the sink at all.
        ValueError: *max_depth* < 1, or smaller than the graph's BFS
            eccentricity (no tree can meet the bound).
    """
    if max_depth < 1:
        raise ValueError(f"max_depth must be >= 1, got {max_depth}")
    n = network.n
    if n == 1:
        return freeze_parents(network, {})

    state = TreeState.from_tree(_layered_seed(network, max_depth))
    sink = state.sink
    fast = getattr(state, "best_cost_reparent", None)

    moves = 0
    improved = True
    while improved and moves < max_moves:
        improved = False
        best: Optional[Tuple[float, int, int]] = None
        depths = state.depths()
        # Deepest descendant of every node, by relaxing depths upward in
        # deepest-first order (each node folds into its parent exactly once).
        subtree_max = list(depths)
        for v in sorted(range(n), key=depths.__getitem__, reverse=True):
            if v == sink:
                continue
            p = state.parent(v)
            assert p is not None
            if subtree_max[v] > subtree_max[p]:
                subtree_max[p] = subtree_max[v]
        if fast is not None:
            # Vectorized scan; the depth gate below is the loop's condition
            # "depths[cand] + 1 + relative_depth > max_depth" negated.
            depths_arr = np.asarray(depths, dtype=np.int64)
            rel_arr = np.asarray(subtree_max, dtype=np.int64) - depths_arr

            def _depth_ok(child: np.ndarray, cand: np.ndarray) -> np.ndarray:
                return depths_arr[cand] + 1 + rel_arr[child] <= max_depth

            best = fast(pair_ok=_depth_ok, threshold=-1e-15)
        else:
            for child in range(n):
                if child == sink:
                    continue
                parent = state.parent(child)
                assert parent is not None
                relative_depth = subtree_max[child] - depths[child]
                for cand in network.neighbors(child):
                    if cand == parent or state.in_subtree(cand, child):
                        continue
                    if depths[cand] + 1 + relative_depth > max_depth:
                        continue  # the move would push the subtree too deep
                    delta = network.cost(child, cand) - network.cost(
                        child, parent
                    )
                    if delta < -1e-15 and (best is None or delta < best[0]):
                        best = (delta, child, cand)
        if best is not None:
            state.reparent(best[1], best[2], check=False)
            moves += 1
            improved = True

    tree = state.freeze()
    final_depth = max(tree.depth(v) for v in range(n))
    assert final_depth <= max_depth
    return tree
