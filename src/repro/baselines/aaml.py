"""AAML — Approximation Algorithm for Maximizing Lifetime (Wu et al., 2008).

The paper's primary comparison baseline (Section VII): "AAML starts from an
arbitrary tree and iteratively reduce the load on bottleneck nodes. The
bottleneck nodes are likely to deplete their energy due to high number of
children or low remaining energy."

This re-implementation (the original code was never released) performs the
same bottleneck-load-reduction local search:

* state: a spanning aggregation tree;
* move: detach some node ``c`` from its parent and re-attach it under a
  neighbouring node ``p`` outside ``c``'s subtree;
* acceptance: the move must *lexicographically increase* the ascending
  per-node lifetime vector — i.e. it strictly improves the most-starved
  node's situation (or, at equal bottleneck value, reduces how many nodes sit
  at the bottleneck).  The lifetime vector over a finite state space strictly
  increases each step, so the search terminates, matching the original
  algorithm's polynomial-termination and near-optimality claims.

AAML is deliberately link-quality agnostic — that is the paper's whole
point.  The DFL experiment (Section VII-A) therefore drops links with
PRR < 0.95 before handing the network to AAML; use
:meth:`repro.network.model.Network.filtered` for that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.local_search import bfs_tree, maximize_lifetime
from repro.core.tree import AggregationTree
from repro.network.model import Network

__all__ = ["AAMLResult", "build_aaml_tree", "bfs_tree"]

#: Hard cap on local-search iterations; the lexicographic potential ensures
#: termination long before this on any realistic instance.
MAX_ITERATIONS = 100_000


@dataclass
class AAMLResult:
    """Outcome of an AAML run.

    Attributes:
        tree: The final aggregation tree.
        lifetime: Its network lifetime (``L_AAML``, used by the paper as the
            lifetime constraint handed to IRA).
        iterations: Accepted local-search moves.
    """

    tree: AggregationTree
    lifetime: float
    iterations: int


def build_aaml_tree(
    network: Network,
    *,
    initial_tree: Optional[AggregationTree] = None,
    max_iterations: int = MAX_ITERATIONS,
) -> AAMLResult:
    """Run the AAML bottleneck-load-reduction local search.

    The search itself is :func:`repro.core.local_search.maximize_lifetime`
    (shared with IRA's repair pass): detach a child of a bottleneck node and
    re-attach it wherever the ascending lifetime vector improves the most.

    Args:
        network: Connected WSN instance (AAML ignores its PRRs).
        initial_tree: Starting tree; defaults to the BFS tree.
        max_iterations: Safety cap on accepted moves.

    Raises:
        DisconnectedNetworkError: No spanning tree exists.
    """
    tree = initial_tree if initial_tree is not None else bfs_tree(network)
    if tree.network is not network:
        raise ValueError("initial_tree must be built over the same network")
    tree, iterations = maximize_lifetime(tree, max_moves=max_iterations)
    return AAMLResult(tree=tree, lifetime=tree.lifetime(), iterations=iterations)
