"""RaSMaLai-style randomized switching for lifetime (extra baseline).

The paper's related work cites Imon et al. (INFOCOM 2013), "RaSMaLai: A
Randomized Switching algorithm for Maximizing Lifetime in tree-based
wireless sensor networks": instead of scanning every move like AAML's
deterministic local search, repeatedly pick a *random* overloaded node and
switch one of its children to a *random* eligible lighter parent, which
gives a much lower per-step cost at the price of randomized convergence.

The original targets collection without aggregation (load = subtree size);
this adaptation uses the paper's aggregation load model (Eq. 1: load =
children count), so it is directly comparable to AAML and IRA here.  A
switch is *eligible* when the new parent's post-move lifetime stays above
the current network bottleneck — the same acceptance logic RaSMaLai uses
with its load threshold.

Included as an extension baseline: the extended benchmarks use it to show
that (a) randomized switching approaches AAML's lifetime far faster per
move scan, and (b) like AAML it remains link-quality oblivious, so IRA
dominates it on reliability just the same.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.local_search import bfs_tree
from repro.core.tree import AggregationTree
from repro.engine.treestate import TreeState
from repro.network.model import Network
from repro.utils.rng import SeedLike, as_rng

__all__ = ["RaSMaLaiResult", "build_rasmalai_tree"]

#: Consecutive failed switch attempts before declaring convergence.
DEFAULT_PATIENCE = 200


@dataclass(frozen=True)
class RaSMaLaiResult:
    """Outcome of a randomized-switching run.

    Attributes:
        tree: The final aggregation tree.
        lifetime: Its network lifetime.
        switches: Accepted random switches.
        attempts: Total switch attempts (accepted + rejected).
    """

    tree: AggregationTree
    lifetime: float
    switches: int
    attempts: int


def build_rasmalai_tree(
    network: Network,
    *,
    initial_tree: Optional[AggregationTree] = None,
    max_switches: int = 10_000,
    patience: int = DEFAULT_PATIENCE,
    seed: SeedLike = None,
) -> RaSMaLaiResult:
    """Randomized bottleneck-switching lifetime maximization.

    Each attempt: pick a uniformly random bottleneck node (minimum
    lifetime), a random child of it, and a random eligible new parent
    (neighbour outside the child's subtree whose post-move lifetime exceeds
    the current bottleneck).  Accept if the move strictly raises the
    bottleneck or strictly shrinks the bottleneck set; stop after *patience*
    consecutive rejected attempts.

    Args:
        network: Connected WSN instance (PRRs ignored — like AAML).
        initial_tree: Starting tree; defaults to the BFS tree.
        max_switches: Hard cap on accepted switches.
        patience: Consecutive failures that end the run.
        seed: Randomness for all the random picks.
    """
    if patience <= 0:
        raise ValueError(f"patience must be positive, got {patience}")
    rng = as_rng(seed)
    tree = initial_tree if initial_tree is not None else bfs_tree(network)
    if tree.network is not network:
        raise ValueError("initial_tree must be built over the same network")
    state = TreeState.from_tree(tree)

    # Backend-accelerated: the numpy backend answers this with one
    # vectorized min + compare over its lifetime vector (same floats, same
    # member list as the object backend's Python scan).
    def bottleneck_state():
        return state.bottleneck_members(1e-12)

    switches = 0
    attempts = 0
    failures = 0
    low, members = bottleneck_state()
    while switches < max_switches and failures < patience:
        attempts += 1
        # Random bottleneck node with at least one child.
        loaded_candidates = [v for v in members if state.n_children(v) > 0]
        if not loaded_candidates:
            break  # bottleneck nodes are all leaves; no load to shed
        loaded = int(loaded_candidates[rng.integers(0, len(loaded_candidates))])
        children = state.children(loaded)
        child = int(children[rng.integers(0, len(children))])
        eligible = [
            p
            for p in network.neighbors(child)
            if p != loaded
            and not state.in_subtree(p, child)
            and network.energy_model.lifetime_rounds(
                network.initial_energy(p), state.n_children(p) + 1
            )
            > low * (1 + 1e-12)
        ]
        if not eligible:
            failures += 1
            continue
        new_parent = int(eligible[rng.integers(0, len(eligible))])
        state.reparent(child, new_parent, check=False)
        new_low, new_members = bottleneck_state()
        if new_low > low * (1 + 1e-12) or (
            new_low >= low * (1 - 1e-12) and len(new_members) < len(members)
        ):
            low, members = new_low, new_members
            switches += 1
            failures = 0
        else:
            state.reparent(child, loaded, check=False)  # undo the trial move
            failures += 1

    final = state.freeze()
    return RaSMaLaiResult(
        tree=final, lifetime=final.lifetime(), switches=switches, attempts=attempts
    )
