"""Prim's minimum spanning tree — the paper's reliability lower bound.

Section VII: "The optimal solution of MRLC should be at least the cost of
MST. We use MST as the lower bound of optimal solutions to our problem."
Prim's algorithm is run on the link costs ``c_e = -log q_e``, so the result
is simultaneously the maximum-reliability *unconstrained* aggregation tree.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.core.errors import DisconnectedNetworkError
from repro.core.tree import AggregationTree
from repro.network.model import Network

__all__ = ["build_mst_tree", "mst_cost"]


def build_mst_tree(network: Network, *, root: Optional[int] = None) -> AggregationTree:
    """Minimum-cost spanning tree via Prim's algorithm, rooted at the sink.

    "It initializes a tree with the root node. Then it grows the tree by one
    edge: of the edges that connect the tree to vertices not yet in the tree,
    find the min-cost edge and transfer it to the tree" (Section VII).

    Ties are broken deterministically by (cost, child id, parent id).

    Raises:
        DisconnectedNetworkError: The network has no spanning tree.
    """
    start = network.sink if root is None else root
    n = network.n
    if n == 1:
        return AggregationTree(network, {})

    in_tree = [False] * n
    in_tree[start] = True
    parents = {}
    heap: List[Tuple[float, int, int]] = []

    def push_edges(u: int) -> None:
        for edge in network.incident_edges(u):
            v = edge.other(u)
            if not in_tree[v]:
                heapq.heappush(heap, (edge.cost, v, u))

    push_edges(start)
    added = 1
    while heap and added < n:
        cost, v, u = heapq.heappop(heap)
        if in_tree[v]:
            continue
        in_tree[v] = True
        parents[v] = u
        added += 1
        push_edges(v)

    if added != n:
        raise DisconnectedNetworkError(
            f"only {added} of {n} nodes reachable; no spanning tree exists"
        )
    return AggregationTree(network, parents)


def mst_cost(network: Network) -> float:
    """Cost of the minimum spanning tree (natural-log units)."""
    return build_mst_tree(network).cost()
