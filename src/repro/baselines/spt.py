"""Shortest-path tree over link costs (an ETX/CTP-style comparison point).

Not one of the paper's two headline baselines, but the natural third point of
comparison: deployed collection stacks (CTP [7], ETX routing [10]) build
shortest-path trees over a link-quality metric.  An SPT maximizes each
*individual* node's path reliability, whereas MST/IRA maximize the *product
over the whole tree* — on aggregation workloads the SPT is therefore
generally worse than MST in total cost but better in depth.  The extended
benchmarks use it to show where the paper's objective diverges from
path-metric routing.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

from repro.core.errors import DisconnectedNetworkError
from repro.core.tree import AggregationTree
from repro.network.model import Network

__all__ = ["build_spt_tree"]


def build_spt_tree(
    network: Network, *, hop_metric: bool = False
) -> AggregationTree:
    """Dijkstra shortest-path tree from the sink.

    Args:
        network: Connected WSN instance.
        hop_metric: Use hop count instead of ``c_e = -log q_e`` as the path
            metric (minimum-depth tree).

    Raises:
        DisconnectedNetworkError: Some node cannot reach the sink.
    """
    n = network.n
    if n == 1:
        return AggregationTree(network, {})

    dist = [float("inf")] * n
    dist[network.sink] = 0.0
    parents = {}
    heap: List[Tuple[float, int]] = [(0.0, network.sink)]
    done = [False] * n
    while heap:
        d, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        for edge in network.incident_edges(u):
            v = edge.other(u)
            if done[v]:
                continue
            weight = 1.0 if hop_metric else edge.cost
            nd = d + weight
            if nd < dist[v]:
                dist[v] = nd
                parents[v] = u
                heapq.heappush(heap, (nd, v))

    if not all(done):
        raise DisconnectedNetworkError(
            "network is disconnected; no spanning tree exists"
        )
    return AggregationTree(network, parents)
