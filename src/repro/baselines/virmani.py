"""Lifetime-maximizing trees of Virmani & Jain (arXiv:1301.4988, 1301.4551).

Two related-work competitors, both energy-aware and link-quality agnostic
(like AAML, they look only at residual energies):

* **CLMT** — the *centralized lifetime maximizing tree*: a sink-rooted
  greedy growth.  At every step the algorithm attaches, among all frontier
  edges ``(p in tree, v outside)``, the one that maximizes the resulting
  bottleneck lifetime — taking a child costs the parent ``Rx`` per round
  (Eq. 1), so the greedy always spends the cheapest increment of the
  scarcest budget.  This is the global-knowledge version.

* **DLMT** — the *decentralized* variant: nodes join in BFS waves (hop
  distance from the sink, the information a flooded beacon gives every
  node), and each joining node picks, among its already-joined neighbours
  in the previous wave, the parent whose post-attachment lifetime is
  largest.  Each choice uses only neighbourhood state, mirroring the
  distributed protocol of the paper; the result is generally worse than
  CLMT's because nodes cannot see the global bottleneck.

Both constructions are deterministic: ties break toward the
higher-lifetime parent, then the smaller node ids, so each tree is a pure
function of the network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.errors import DisconnectedNetworkError
from repro.core.tree import AggregationTree
from repro.network.model import Network

__all__ = ["VirmaniResult", "build_clmt_tree", "build_dlmt_tree"]


@dataclass(frozen=True)
class VirmaniResult:
    """Outcome of a CLMT/DLMT construction.

    Attributes:
        tree: The constructed aggregation tree.
        lifetime: Its network lifetime ``L(T)`` in rounds (Eq. 1).
        attachments: Nodes attached (always ``n - 1``; recorded for parity
            with the other baseline result objects).
    """

    tree: AggregationTree
    lifetime: float
    attachments: int


def _post_attach_lifetime(network: Network, parent: int, n_children: int) -> float:
    """Parent's Eq. 1 lifetime after taking one more child."""
    return network.energy_model.lifetime_rounds(
        network.initial_energy(parent), n_children + 1
    )


def build_clmt_tree(network: Network) -> VirmaniResult:
    """Centralized lifetime-maximizing tree (greedy bottleneck growth).

    Raises:
        DisconnectedNetworkError: Some node cannot reach the sink.
    """
    n = network.n
    if n == 1:
        tree = AggregationTree(network, {})
        return VirmaniResult(tree, tree.lifetime(), 0)

    model = network.energy_model
    in_tree = [False] * n
    in_tree[network.sink] = True
    children = [0] * n
    parents: Dict[int, int] = {}

    for _ in range(n - 1):
        # score = the bottleneck the attachment itself creates: the parent
        # after gaining the child vs the child as a fresh leaf.  The rest
        # of the tree is unchanged by every candidate, so comparing these
        # minima is the same as comparing the resulting global minima.
        best: Optional[Tuple[Tuple[float, float, int, int], int, int]] = None
        for p in range(n):
            if not in_tree[p]:
                continue
            p_after = _post_attach_lifetime(network, p, children[p])
            for v in network.neighbors(p):
                if in_tree[v]:
                    continue
                v_leaf = model.lifetime_rounds(network.initial_energy(v), 0)
                score = (min(p_after, v_leaf), p_after, -p, -v)
                if best is None or score > best[0]:
                    best = (score, p, v)
        if best is None:
            attached = sum(in_tree)
            raise DisconnectedNetworkError(
                f"only {attached} of {n} nodes reach the sink"
            )
        _, p, v = best
        parents[v] = p
        children[p] += 1
        in_tree[v] = True

    tree = AggregationTree(network, parents)
    return VirmaniResult(tree=tree, lifetime=tree.lifetime(), attachments=n - 1)


def build_dlmt_tree(network: Network) -> VirmaniResult:
    """Decentralized lifetime tree: BFS waves, locally best parent.

    Raises:
        DisconnectedNetworkError: Some node cannot reach the sink.
    """
    n = network.n
    if n == 1:
        tree = AggregationTree(network, {})
        return VirmaniResult(tree, tree.lifetime(), 0)

    level = [-1] * n
    level[network.sink] = 0
    frontier = [network.sink]
    waves: List[List[int]] = []
    while frontier:
        nxt: List[int] = []
        for u in frontier:
            for v in network.neighbors(u):
                if level[v] < 0:
                    level[v] = level[u] + 1
                    nxt.append(v)
        if nxt:
            waves.append(sorted(nxt))
        frontier = nxt

    unreached = [v for v in range(n) if level[v] < 0]
    if unreached:
        raise DisconnectedNetworkError(
            f"{len(unreached)} node(s) cannot reach the sink "
            f"(e.g. node {unreached[0]})"
        )

    children = [0] * n
    parents: Dict[int, int] = {}
    for wave in waves:
        # Within a wave nodes decide in id order — the deterministic stand-in
        # for the staggered joins a real deployment's timers would produce.
        for v in wave:
            best: Optional[Tuple[float, int]] = None
            for u in network.neighbors(v):
                if level[u] != level[v] - 1:
                    continue
                u_after = _post_attach_lifetime(network, u, children[u])
                if best is None or (u_after, -u) > (best[0], -best[1]):
                    best = (u_after, u)
            assert best is not None  # every wave node saw a previous-wave nbr
            parents[v] = best[1]
            children[best[1]] += 1

    tree = AggregationTree(network, parents)
    return VirmaniResult(tree=tree, lifetime=tree.lifetime(), attachments=n - 1)
