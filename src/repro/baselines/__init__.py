"""Baseline tree-construction algorithms the paper compares against.

* :mod:`repro.baselines.mst` — Prim's minimum spanning tree, the reliability
  lower bound of Section VII.
* :mod:`repro.baselines.aaml` — the lifetime-maximizing AAML local search
  (Wu et al., INFOCOM 2008), the paper's main competitor.
* :mod:`repro.baselines.spt` — ETX-style shortest-path tree (extension).
* :mod:`repro.baselines.random_tree` — uniform random spanning trees
  (Wilson's algorithm), the null model.
* :mod:`repro.baselines.rasmalai` — randomized bottleneck switching
  (RaSMaLai-style, Imon et al. 2013; extension).
* :mod:`repro.baselines.delay_bounded` — hop-constrained cheapest-path
  trees (delay-bounded collection, Shen et al. 2012; extension).
* :mod:`repro.baselines.kuo_energy` — minimum-energy-path aggregation tree
  (Kuo, Lin & Tsai, arXiv:1402.6457; related work).
* :mod:`repro.baselines.virmani` — centralized/decentralized
  lifetime-maximizing trees (Virmani & Jain, arXiv:1301.4988/1301.4551;
  related work).
* :mod:`repro.baselines.convergecast` — maximum-lifetime convergecast tree
  (John, Kasbekar & Baghini, arXiv:1910.09793; related work).
"""

from repro.baselines.aaml import AAMLResult, bfs_tree, build_aaml_tree
from repro.baselines.convergecast import (
    ConvergecastResult,
    build_convergecast_tree,
    convergecast_lifetime,
)
from repro.baselines.delay_bounded import build_delay_bounded_tree
from repro.baselines.kuo_energy import KuoEnergyResult, build_kuo_energy_tree
from repro.baselines.mst import build_mst_tree, mst_cost
from repro.baselines.random_tree import build_random_tree
from repro.baselines.rasmalai import RaSMaLaiResult, build_rasmalai_tree
from repro.baselines.spt import build_spt_tree
from repro.baselines.virmani import VirmaniResult, build_clmt_tree, build_dlmt_tree

__all__ = [
    "AAMLResult",
    "ConvergecastResult",
    "KuoEnergyResult",
    "RaSMaLaiResult",
    "VirmaniResult",
    "bfs_tree",
    "build_aaml_tree",
    "build_clmt_tree",
    "build_convergecast_tree",
    "build_delay_bounded_tree",
    "build_dlmt_tree",
    "build_kuo_energy_tree",
    "build_mst_tree",
    "build_random_tree",
    "build_rasmalai_tree",
    "build_spt_tree",
    "convergecast_lifetime",
    "mst_cost",
]
