"""Minimum-energy aggregation tree (Kuo, Lin & Tsai, arXiv:1402.6457).

Kuo et al. study the construction of data aggregation trees with minimum
total energy cost, prove the relay-selection version NP-complete, and give
shortest-path-tree-based approximation algorithms: every source reaches the
sink along a minimum-energy path, and aggregation makes path sharing free,
so the union of those paths is the approximate minimum-energy tree.

Mapping their model onto this library's (every node is a source, links are
lossy): the energy to move one aggregated packet across link ``e`` with
ARQ retransmissions is ``(Tx + Rx) / q_e`` joules in expectation — one
transmit plus one receive per attempt, ``1/q_e`` expected attempts.  The
builder therefore runs Dijkstra from the sink under that per-link energy
weight and orients the resulting shortest-path forest into a tree.  Unlike
the cost SPT (:mod:`repro.baselines.spt`, metric ``-log q_e``), path sums
of ``(Tx + Rx) / q_e`` rank paths differently — the two trees genuinely
disagree on lossy topologies — and unlike the MST the per-*path* optimum is
what Kuo et al.'s approximation guarantees.

Parent choice among equal-cost predecessors is deterministic (cheapest
final hop, then smallest node id), so the tree is a pure function of the
network.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import List, Optional

from repro.core.errors import DisconnectedNetworkError
from repro.core.tree import AggregationTree
from repro.network.model import Network

__all__ = ["KuoEnergyResult", "build_kuo_energy_tree", "link_energy_j"]


def link_energy_j(network: Network, u: int, v: int) -> float:
    """Expected radio energy (J) to deliver one packet across ``{u, v}``.

    One transmission costs ``Tx`` at the sender plus ``Rx`` at the
    receiver; with per-attempt success probability ``q_e`` the expected
    attempt count under ARQ is ``1 / q_e``.
    """
    model = network.energy_model
    return (model.tx + model.rx) / network.prr(u, v)


@dataclass(frozen=True)
class KuoEnergyResult:
    """Outcome of the minimum-energy-path tree construction.

    Attributes:
        tree: The oriented shortest-energy-path tree.
        tree_energy_j: Expected per-round radio energy summed over the tree
            edges (the objective Kuo et al. approximate, in joules).
        max_path_energy_j: The most expensive node-to-sink path in the
            tree, in joules (the per-path guarantee).
    """

    tree: AggregationTree
    tree_energy_j: float
    max_path_energy_j: float


def build_kuo_energy_tree(network: Network) -> KuoEnergyResult:
    """Shortest-energy-path tree from the sink (Kuo–Lin–Tsai approximation).

    Raises:
        DisconnectedNetworkError: Some node cannot reach the sink.
    """
    n = network.n
    if n == 1:
        tree = AggregationTree(network, {})
        return KuoEnergyResult(tree, 0.0, 0.0)

    dist: List[float] = [math.inf] * n
    parent: List[Optional[int]] = [None] * n
    dist[network.sink] = 0.0
    # Heap entries are (distance, node); the node id breaks exact float
    # ties, which keeps the settle order deterministic.
    heap: List[tuple] = [(0.0, network.sink)]
    settled = [False] * n
    while heap:
        d, u = heapq.heappop(heap)
        if settled[u]:
            continue
        settled[u] = True
        for v in network.neighbors(u):
            if settled[v]:
                continue
            nd = d + link_energy_j(network, u, v)
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))

    unreachable = [v for v in range(n) if not settled[v]]
    if unreachable:
        raise DisconnectedNetworkError(
            f"{len(unreachable)} node(s) cannot reach the sink "
            f"(e.g. node {unreachable[0]})"
        )

    # Orient the forest: each node attaches to the optimal predecessor with
    # the cheapest final hop (ties -> smallest id).  Optimality is checked
    # with a tolerance-free comparison against the settled distances, which
    # is exact because the candidate sum is the very float Dijkstra stored.
    for v in range(n):
        if v == network.sink:
            continue
        best: Optional[tuple] = None
        for u in network.neighbors(v):
            w = link_energy_j(network, u, v)
            if dist[u] + w <= dist[v] and (
                best is None or (w, u) < best[:2]
            ):
                best = (w, u)
        if best is None:  # pragma: no cover - settled nodes always have one
            raise DisconnectedNetworkError(f"node {v} has no optimal predecessor")
        parent[v] = best[1]

    tree = AggregationTree(
        network, {v: int(parent[v]) for v in range(n) if v != network.sink}
    )
    tree_energy = sum(link_energy_j(network, u, v) for u, v in tree.edges())
    max_path = max(dist[v] for v in range(n))
    return KuoEnergyResult(
        tree=tree, tree_energy_j=tree_energy, max_path_energy_j=max_path
    )
