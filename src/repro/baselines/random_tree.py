"""Uniform random spanning trees (Wilson's algorithm).

Used as an "arbitrary tree" starting point for AAML, as a null model in the
extended benchmarks (how much does *any* optimization buy over a random
tree?), and as a generator of unbiased test cases for the Prüfer codec's
property tests.
"""

from __future__ import annotations

from typing import Dict

from repro.core.errors import DisconnectedNetworkError
from repro.core.tree import AggregationTree
from repro.network.model import Network
from repro.utils.rng import SeedLike, as_rng

__all__ = ["build_random_tree"]


def build_random_tree(network: Network, *, seed: SeedLike = None) -> AggregationTree:
    """Sample a spanning tree uniformly at random (Wilson's algorithm).

    Performs loop-erased random walks from each unvisited node to the
    growing tree (rooted at the sink).  The walk is over network links only,
    so the result is always a valid aggregation tree of *network*.

    Raises:
        DisconnectedNetworkError: Detected when a walk cannot reach the tree
            (checked up front for a clear error).
    """
    if not network.is_connected():
        raise DisconnectedNetworkError(
            "network is disconnected; no spanning tree exists"
        )
    n = network.n
    if n == 1:
        return AggregationTree(network, {})

    rng = as_rng(seed)
    in_tree = [False] * n
    in_tree[network.sink] = True
    next_hop: Dict[int, int] = {}

    for start in range(n):
        if in_tree[start]:
            continue
        # Loop-erased random walk: overwrite next_hop along the walk; the
        # final pointers trace a simple path because later visits overwrite
        # earlier loops.
        u = start
        while not in_tree[u]:
            nbrs = network.neighbors(u)
            u_next = int(nbrs[rng.integers(0, len(nbrs))])
            next_hop[u] = u_next
            u = u_next
        u = start
        while not in_tree[u]:
            in_tree[u] = True
            u = next_hop[u]

    parents = {v: next_hop[v] for v in range(n) if v != network.sink}
    return AggregationTree(network, parents)
