"""Structural statistics of aggregation trees.

The paper reasons about trees via three numbers (cost, reliability,
lifetime); operators of a real deployment want to see *why* a tree behaves
as it does: how deep it is, how load is distributed, which nodes carry the
energy burden.  This module computes those diagnostics and a side-by-side
comparison used by the examples and the extended benchmarks (e.g. the
energy-hole analysis of the paper's introduction: nodes close to the sink
carry more children and die first).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.tree import PAPER_COST_SCALE, AggregationTree
from repro.utils.tables import format_table

__all__ = ["TreeStatistics", "compare_trees", "load_gini"]


def load_gini(children_counts: Sequence[int]) -> float:
    """Gini coefficient of the per-node children distribution.

    0 = perfectly balanced load, →1 = one node carries everything.  A
    proxy for the energy-hole severity the paper's introduction describes.
    """
    values = np.sort(np.asarray(children_counts, dtype=float))
    if len(values) == 0:
        raise ValueError("children_counts must be non-empty")
    total = values.sum()
    if total == 0:
        return 0.0
    n = len(values)
    # Standard Gini via the sorted-rank formula.
    index = np.arange(1, n + 1)
    return float((2 * (index * values).sum()) / (n * total) - (n + 1) / n)


@dataclass(frozen=True)
class TreeStatistics:
    """Structural summary of one aggregation tree.

    Attributes:
        cost: Tree cost in paper units.
        reliability: ``Q(T)``.
        lifetime: ``L(T)`` in aggregation rounds.
        max_depth: Longest leaf-to-sink hop count.
        mean_depth: Average hop count over all nodes.
        max_children: Largest children count (the degree hot-spot).
        children_gini: Load-balance Gini of children counts.
        leaf_fraction: Fraction of nodes that are leaves.
        bottleneck: The node realising the minimum lifetime.
        bottleneck_margin: Second-lowest lifetime / lowest (1.0 = tied).
    """

    cost: float
    reliability: float
    lifetime: float
    max_depth: int
    mean_depth: float
    max_children: int
    children_gini: float
    leaf_fraction: float
    bottleneck: int
    bottleneck_margin: float

    @classmethod
    def of(cls, tree: AggregationTree) -> "TreeStatistics":
        """Compute all statistics of *tree*."""
        n = tree.n
        depths = [tree.depth(v) for v in range(n)]
        children = [tree.n_children(v) for v in range(n)]
        lifetimes = sorted(tree.node_lifetime(v) for v in range(n))
        margin = (
            lifetimes[1] / lifetimes[0] if n > 1 and lifetimes[0] > 0 else 1.0
        )
        return cls(
            cost=tree.cost() * PAPER_COST_SCALE,
            reliability=tree.reliability(),
            lifetime=tree.lifetime(),
            max_depth=max(depths),
            mean_depth=float(np.mean(depths)),
            max_children=max(children),
            children_gini=load_gini(children),
            leaf_fraction=len(tree.leaves()) / n,
            bottleneck=tree.bottleneck(),
            bottleneck_margin=margin,
        )

    def as_row(self) -> List:
        return [
            round(self.cost, 1),
            round(self.reliability, 4),
            f"{self.lifetime:.3e}",
            self.max_depth,
            round(self.mean_depth, 2),
            self.max_children,
            round(self.children_gini, 3),
            round(self.leaf_fraction, 2),
        ]


def compare_trees(trees: Dict[str, AggregationTree]) -> str:
    """Side-by-side statistics table for a set of named trees."""
    if not trees:
        raise ValueError("no trees to compare")
    headers = [
        "tree",
        "cost",
        "Q(T)",
        "lifetime",
        "max depth",
        "mean depth",
        "max ch",
        "gini",
        "leaf frac",
    ]
    rows = [
        [name] + TreeStatistics.of(tree).as_row() for name, tree in trees.items()
    ]
    return format_table(headers, rows, title="Tree comparison")
