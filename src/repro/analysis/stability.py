"""Tree stability: how much does the chosen structure churn?

Two deployments of the same algorithm rarely see the same link estimates —
and every structural difference the algorithm produces in response costs a
real re-parenting broadcast when maintained online (Section VI).  This
module quantifies that sensitivity:

* :func:`tree_distance` — parent-disagreement count between two trees (the
  number of Parent-Changing messages needed to morph one into the other);
* :func:`estimation_stability` — re-estimate the same physical network many
  times (independent beacon draws), rebuild with a given algorithm, and
  report the pairwise structural churn.

Findings this enables (see the tests): the MST over near-tie estimated
costs is structurally *unstable* — different beacon draws produce different
trees of nearly equal quality — which is precisely why the distributed
protocol's damping matters: reacting to every estimate flicker would
broadcast constantly for negligible reliability gain.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Callable, List

import numpy as np

from repro.core.tree import AggregationTree
from repro.network.model import Network
from repro.network.trace import BeaconTraceEstimator
from repro.utils.rng import stable_hash_seed

__all__ = ["tree_distance", "StabilityReport", "estimation_stability"]


def tree_distance(a: AggregationTree, b: AggregationTree) -> int:
    """Number of nodes whose parent differs between *a* and *b*.

    This equals the number of Parent-Changing updates needed to transform
    one tree into the other under the Section VI protocol (each update
    re-parents exactly one node).
    """
    if a.n != b.n:
        raise ValueError(f"trees have different sizes ({a.n} vs {b.n})")
    pa, pb = a.parents, b.parents
    return sum(1 for v in pa if pa[v] != pb[v])


@dataclass(frozen=True)
class StabilityReport:
    """Structural churn of one algorithm under estimation resampling.

    Attributes:
        n_draws: Independent estimation draws compared.
        mean_pairwise_distance: Mean parent disagreements between draws.
        max_pairwise_distance: Worst pair's disagreement count.
        mean_true_reliability: Mean true reliability of the built trees
            (instability is benign if quality stays flat).
        reliability_spread: Max − min true reliability across draws.
    """

    n_draws: int
    mean_pairwise_distance: float
    max_pairwise_distance: int
    mean_true_reliability: float
    reliability_spread: float


def estimation_stability(
    truth: Network,
    build: Callable[[Network], AggregationTree],
    *,
    n_draws: int = 10,
    n_beacons: int = 1000,
    base_seed: int = 47,
) -> StabilityReport:
    """Rebuild with *build* over independent beacon estimates of *truth*.

    Args:
        truth: Ground-truth network (never shown to *build*).
        build: Estimated network -> tree (e.g. ``build_mst_tree`` or a
            lambda wrapping IRA at a fixed bound).
        n_draws: Independent estimation draws.
        n_beacons: Beacons per link per draw.
    """
    if n_draws < 2:
        raise ValueError(f"need at least 2 draws to compare, got {n_draws}")
    estimator = BeaconTraceEstimator(n_beacons=n_beacons)
    trees: List[AggregationTree] = []
    reliabilities: List[float] = []
    for draw in range(n_draws):
        seed = stable_hash_seed("stability", base_seed, n_beacons, draw)
        estimated = estimator.estimate(truth, seed=seed)
        tree = build(estimated)
        trees.append(tree)
        # Quality is always judged on the TRUE link state.
        true_view = AggregationTree(truth, tree.parents)
        reliabilities.append(true_view.reliability())

    distances = [
        tree_distance(a, b) for a, b in combinations(trees, 2)
    ]
    return StabilityReport(
        n_draws=n_draws,
        mean_pairwise_distance=float(np.mean(distances)),
        max_pairwise_distance=int(np.max(distances)),
        mean_true_reliability=float(np.mean(reliabilities)),
        reliability_spread=float(np.max(reliabilities) - np.min(reliabilities)),
    )
