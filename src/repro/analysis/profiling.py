"""Wall-clock profiling of the tree builders (scaling studies).

"No optimization without measuring": this module times the algorithms over
a size sweep so complexity regressions are visible and users can size their
deployments.  The paper claims polynomial termination for IRA and AAML;
:func:`scaling_study` shows the constants.

:class:`StageTimer` now lives in the unified instrumentation layer
(:mod:`repro.obs.stagetimer`) and is re-exported here for compatibility;
fine-grained algorithm statistics (LP solves, cuts, messages) come from
:mod:`repro.obs` rather than wall clocks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.baselines.aaml import build_aaml_tree
from repro.baselines.mst import build_mst_tree
from repro.core.ira import build_ira_tree
from repro.network.topology import random_graph
from repro.obs.stagetimer import StageTimer
from repro.utils.rng import stable_hash_seed
from repro.utils.tables import format_table

__all__ = ["StageTimer", "ScalingRow", "ScalingStudy", "scaling_study"]


@dataclass(frozen=True)
class ScalingRow:
    """Timings for one network size.

    Attributes:
        n_nodes: Network size.
        n_edges: Link count of the instance.
        mst_s / aaml_s / ira_s: Wall-clock seconds per builder.
        ira_lp_solves: HiGHS invocations inside the IRA run.
    """

    n_nodes: int
    n_edges: int
    mst_s: float
    aaml_s: float
    ira_s: float
    ira_lp_solves: int


@dataclass(frozen=True)
class ScalingStudy:
    """Size sweep results."""

    rows: Tuple[ScalingRow, ...]

    def render(self) -> str:
        table_rows = [
            [
                r.n_nodes,
                r.n_edges,
                round(r.mst_s * 1000, 2),
                round(r.aaml_s * 1000, 2),
                round(r.ira_s * 1000, 2),
                r.ira_lp_solves,
            ]
            for r in self.rows
        ]
        return format_table(
            ["n", "edges", "MST ms", "AAML ms", "IRA ms", "LP solves"],
            table_rows,
            title="Scaling study (wall clock per builder)",
        )


def scaling_study(
    sizes: Sequence[int] = (8, 16, 24, 32),
    *,
    link_probability: float = 0.5,
    lc_divisor: float = 2.0,
    base_seed: int = 123,
) -> ScalingStudy:
    """Time MST / AAML / IRA across network sizes on matched instances."""
    if lc_divisor <= 0:
        raise ValueError(f"lc_divisor must be positive, got {lc_divisor}")
    rows: List[ScalingRow] = []
    for n in sizes:
        seed = stable_hash_seed("scaling", base_seed, n, link_probability)
        net = random_graph(n, link_probability, seed=seed)

        start = time.perf_counter()
        build_mst_tree(net)
        mst_s = time.perf_counter() - start

        start = time.perf_counter()
        aaml = build_aaml_tree(net)
        aaml_s = time.perf_counter() - start

        start = time.perf_counter()
        ira = build_ira_tree(net, aaml.lifetime / lc_divisor)
        ira_s = time.perf_counter() - start

        rows.append(
            ScalingRow(
                n_nodes=n,
                n_edges=net.n_edges,
                mst_s=mst_s,
                aaml_s=aaml_s,
                ira_s=ira_s,
                ira_lp_solves=ira.lp_solves,
            )
        )
    return ScalingStudy(rows=tuple(rows))
