"""Validation of the paper's LP-theoretic claims on actual solver output.

Section IV/V's correctness argument rests on structural properties of
extreme points (Lemma 1, Lemma 2, Lemma 4): tight subtour constraints form a
laminar family, singleton-free laminar families over ``V`` have at most
``|V| - 1`` members, and extreme points of the pure Subtour LP are integral.
These are theorems — but our solver works in floating point, so this module
makes them *checkable* on real :class:`~repro.core.lp.LPSolution` objects,
and the test suite asserts them on every solved instance.
"""

from __future__ import annotations

from typing import FrozenSet, List, Sequence

import numpy as np

from repro.core.lp import LPSolution

__all__ = [
    "is_laminar",
    "tight_subtour_sets",
    "check_extreme_point_structure",
]

_TOL = 1e-6


def is_laminar(sets: Sequence[FrozenSet[int]]) -> bool:
    """Whether no two sets *intersect* in the paper's sense.

    Two sets X, Y are intersecting when X∩Y, X\\Y and Y\\X are all nonempty;
    a family is laminar when no pair intersects (Section IV-A).
    """
    sets = list(sets)
    for i, x in enumerate(sets):
        for y in sets[i + 1 :]:
            inter = x & y
            if inter and (x - y) and (y - x):
                return False
    return True


def tight_subtour_sets(
    solution: LPSolution, n: int, *, tol: float = _TOL
) -> List[FrozenSet[int]]:
    """Generated cuts of *solution* that are tight: ``x(E(S)) = |S| - 1``.

    Only the lazily generated cut pool is inspected (checking all 2^n
    subsets is the exponential family the lazy scheme avoids); the tight
    ones among them are exactly the candidates for the family ``F`` of
    Eq. 17.
    """
    tight = []
    for subset in solution.cuts:
        inside = sum(
            x
            for (u, v), x in zip(solution.edges, solution.x)
            if u in subset and v in subset
        )
        if abs(inside - (len(subset) - 1)) <= tol:
            tight.append(subset)
    # The ground set V is always tight via the spanning equality (Eq. 14).
    full = frozenset(range(n))
    total = float(np.sum(solution.x))
    if abs(total - (n - 1)) <= tol and full not in tight:
        tight.append(full)
    return tight


def maximal_laminar_subfamily(
    sets: Sequence[FrozenSet[int]],
) -> List[FrozenSet[int]]:
    """Greedy maximal laminar subfamily (largest sets first).

    Mirrors the proof device of Lemma 4: from the tight family ``F``, keep a
    maximal laminar subfamily ``L``.
    """
    chosen: List[FrozenSet[int]] = []
    for candidate in sorted(set(sets), key=len, reverse=True):
        ok = True
        for existing in chosen:
            inter = candidate & existing
            if inter and (candidate - existing) and (existing - candidate):
                ok = False
                break
        if ok:
            chosen.append(candidate)
    return chosen


def check_extreme_point_structure(
    solution: LPSolution, n: int, *, tol: float = _TOL
) -> dict:
    """Verify the Lemma 1 / Lemma 2 / Lemma 4 structure on *solution*.

    Returns a report dict with the measured quantities:

    * ``support_size`` — |E*| (edges with x_e > 0);
    * ``n_tight`` / ``n_laminar`` — tight generated cuts and the size of a
      maximal laminar subfamily (Lemma 2 bounds it by n - 1);
    * ``laminar_ok`` — the subfamily is genuinely laminar;
    * ``variables_in_bounds`` — 0 <= x_e <= 1 (Eq. 6);
    * ``integral`` — whether the point is 0/1 (true whenever the program was
      the pure Subtour LP, per Lemma 1).
    """
    tight = tight_subtour_sets(solution, n, tol=tol)
    laminar = maximal_laminar_subfamily(tight)
    report = {
        "support_size": len(solution.support()),
        "n_tight": len(tight),
        "n_laminar": len(laminar),
        "laminar_ok": is_laminar(laminar),
        "laminar_within_lemma2_bound": len(
            [s for s in laminar if len(s) >= 2]
        )
        <= max(n - 1, 0),
        "variables_in_bounds": bool(
            np.all(solution.x >= -tol) and np.all(solution.x <= 1 + tol)
        ),
        "integral": solution.is_integral(),
    }
    return report
