"""Analysis extensions: tree diagnostics and LP-theory validation.

* :mod:`repro.analysis.tree_stats` — structural statistics (depths, load
  balance, energy bottlenecks) and side-by-side tree comparison.
* :mod:`repro.analysis.theory` — checkable versions of the paper's extreme-
  point structure claims (laminar tight families, integrality), asserted on
  real solver output by the test suite.
* :mod:`repro.analysis.profiling` — wall-clock stage timing and algorithm
  scaling studies.
* :mod:`repro.analysis.stability` — structural churn of tree choices under
  estimation resampling.
"""

from repro.analysis.profiling import ScalingRow, ScalingStudy, StageTimer, scaling_study
from repro.analysis.stability import StabilityReport, estimation_stability, tree_distance
from repro.analysis.theory import (
    check_extreme_point_structure,
    is_laminar,
    tight_subtour_sets,
)
from repro.analysis.tree_stats import TreeStatistics, compare_trees, load_gini

__all__ = [
    "ScalingRow",
    "ScalingStudy",
    "StabilityReport",
    "StageTimer",
    "TreeStatistics",
    "check_extreme_point_structure",
    "compare_trees",
    "estimation_stability",
    "is_laminar",
    "load_gini",
    "scaling_study",
    "tight_subtour_sets",
    "tree_distance",
]
