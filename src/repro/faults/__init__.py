"""Fault-injection plane for the distributed maintenance protocol.

The paper's channel model is lossy for the *data* plane but Section VI's
control traffic is usually simulated perfectly.  This package supplies the
missing robustness layer:

* :class:`FaultPlan` — a seeded, per-link fault model (drop / duplicate /
  delay, PRR-derived or explicit rates) plus node crash/recovery events;
* :class:`CrashEvent` — one scheduled outage;
* :class:`DeliveryOutcome` — the drawn fate of a single delivery attempt;
* :class:`FaultStats` — the protocol's running fault/recovery totals.

:mod:`repro.distributed.protocol` consumes the plan during every flood
(retry-with-ack, divergence detection, code-rebroadcast resync) and
:class:`repro.distributed.simulator.ChurnSimulation` exposes it as the
``fault_plan=`` knob; ``repro obs faults`` and the ``ext-faulty-control``
experiment drive it from the command line.
"""

from repro.faults.plan import CrashEvent, DeliveryOutcome, FaultPlan
from repro.faults.stats import FaultStats

__all__ = ["CrashEvent", "DeliveryOutcome", "FaultPlan", "FaultStats"]
