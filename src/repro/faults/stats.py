"""Aggregate fault/recovery accounting kept by the protocol.

The protocol maintains one :class:`FaultStats` per deployment regardless of
whether an instrumentation session is active — experiments (notably
``ext_faulty_control``) read overheads from it directly, while the obs
layer additionally records the same events as counters/histograms when
enabled.  Every field is a plain running total, so the object doubles as a
cheap structured summary (:meth:`to_dict`).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict

__all__ = ["FaultStats"]


@dataclass
class FaultStats:
    """Running totals of control-plane faults and the recovery they forced.

    Attributes:
        drops: Delivery attempts lost (including exhausted retries).
        retries: Extra per-link retransmissions spent recovering lost
            attempts (each one is a real control message).
        duplicates: Spurious duplicate deliveries (absorbed by the serial
            guard).
        delays: Deliveries that arrived late (applied in a later round).
        missed: Receiver-level delivery failures after all retries — each
            one leaves a replica out of sync until a resync reaches it.
        divergences: Divergent replicas observed at detection points (a
            replica divergent across several rounds is counted each time).
        resyncs: Code-rebroadcast recovery floods issued by the sink.
        resync_messages: Transmissions those recovery floods cost.
        crashes: Node outages (scheduled plus probabilistic).
        recoveries: Node reboots (every reboot leaves the node stale, so it
            also shows up as a divergence until resynced).
    """

    drops: int = 0
    retries: int = 0
    duplicates: int = 0
    delays: int = 0
    missed: int = 0
    divergences: int = 0
    resyncs: int = 0
    resync_messages: int = 0
    crashes: int = 0
    recoveries: int = 0

    def to_dict(self) -> Dict[str, int]:
        """Plain-dict snapshot (JSON-compatible)."""
        return asdict(self)
