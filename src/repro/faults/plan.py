"""Configurable fault model for the distributed protocol's control plane.

The paper's whole premise is that links are lossy (PRR < 1), yet Section
VI's maintenance traffic — Parent-Changing and Code-Announcement floods —
is usually simulated over a perfect channel.  A :class:`FaultPlan` closes
that gap: it decides, per link-level delivery attempt, whether a control
message is **dropped**, **duplicated**, or **delayed**, and schedules node
**crash/recovery** events.  The protocol layer
(:mod:`repro.distributed.protocol`) consults the plan during every flood
and reacts with retransmissions, divergence detection, and code-rebroadcast
resyncs; the plan itself only draws outcomes.

Loss probabilities default to the physically-motivated choice — one minus
the link's PRR, the same quantity the data plane pays — and can be pinned
to an explicit rate for controlled sweeps (``drop_rate=0.1``).  A plan with
every rate at zero and no crash events is *inactive*: the protocol takes
its exact legacy code path and never touches the plan's RNG, so
``FaultPlan(drop_rate=0)`` is bitwise-identical to running without a plan.

All randomness flows through :mod:`repro.utils.rng` (rule REP101), so a
seeded plan replays the identical fault sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.utils.rng import SeedLike, as_rng

__all__ = ["CrashEvent", "DeliveryOutcome", "FaultPlan"]


@dataclass(frozen=True)
class DeliveryOutcome:
    """What happened to one link-level delivery attempt.

    Attributes:
        delivered: Whether the receiver got the message at all.
        duplicated: Whether a spurious second copy also arrived (lost ack
            made the sender re-forward; the serial guard absorbs it).
        delay: Extra churn rounds before the message is applied (0 =
            immediately; only meaningful when ``delivered``).
    """

    delivered: bool
    duplicated: bool = False
    delay: int = 0


#: The outcome drawn when nothing goes wrong — shared, never mutated.
_CLEAN_DELIVERY = DeliveryOutcome(delivered=True)


@dataclass(frozen=True)
class CrashEvent:
    """A scheduled node outage.

    Attributes:
        node: The sensor that goes down (the sink, node 0, is mains-powered
            in the paper's deployment and cannot crash).
        at_round: 1-based churn round at the start of which the node dies.
        recover_round: Round at the start of which it reboots (with a stale
            replica, so it must be resynced); ``None`` keeps it down until
            the end-of-run settle pass.
    """

    node: int
    at_round: int
    recover_round: Optional[int] = None

    def __post_init__(self) -> None:
        if self.node <= 0:
            raise ValueError(
                f"crash node must be a non-sink sensor (> 0), got {self.node}"
            )
        if self.at_round < 1:
            raise ValueError(f"at_round must be >= 1, got {self.at_round}")
        if self.recover_round is not None and self.recover_round <= self.at_round:
            raise ValueError(
                f"recover_round ({self.recover_round}) must be after "
                f"at_round ({self.at_round})"
            )


def _check_rate(value: float, name: str) -> float:
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


class FaultPlan:
    """Seeded per-link fault injector for control-plane floods.

    Args:
        drop_rate: Probability one delivery attempt is lost.  ``None`` (the
            default) derives it from the link: ``1 - PRR``, i.e. control
            packets fail exactly as often as data packets on that link.  An
            explicit value pins every link to the same rate; ``0.0`` makes
            the plan inactive (bitwise-identical to no plan) when every
            other knob is also zero.
        duplicate_rate: Probability a *successful* delivery arrives twice
            (ack loss → spurious retransmission).
        delay_rate: Probability a successful delivery is deferred.
        max_delay: Largest deferral, in churn rounds (uniform on
            ``1..max_delay``); delays compound down a flood path.
        max_retries: Retransmissions the sender may spend per receiver
            after the first attempt fails (retry-with-ack, bounded); each
            retry costs one extra control message.
        crash_rate: Per-round, per-node probability of an unscheduled
            crash.
        crash_duration: Rounds an unscheduled crash lasts before the node
            reboots (stale, needing resync).
        crash_events: Explicit :class:`CrashEvent` schedule, on top of any
            probabilistic crashes.
        seed: Fault randomness (independent of the churn simulation's own
            stream, so an inactive plan never perturbs it).
    """

    def __init__(
        self,
        *,
        drop_rate: Optional[float] = None,
        duplicate_rate: float = 0.0,
        delay_rate: float = 0.0,
        max_delay: int = 2,
        max_retries: int = 2,
        crash_rate: float = 0.0,
        crash_duration: int = 5,
        crash_events: Sequence[CrashEvent] = (),
        seed: SeedLike = None,
    ) -> None:
        self.drop_rate = None if drop_rate is None else _check_rate(drop_rate, "drop_rate")
        self.duplicate_rate = _check_rate(duplicate_rate, "duplicate_rate")
        self.delay_rate = _check_rate(delay_rate, "delay_rate")
        self.crash_rate = _check_rate(crash_rate, "crash_rate")
        if max_delay < 1:
            raise ValueError(f"max_delay must be >= 1, got {max_delay}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if crash_duration < 1:
            raise ValueError(f"crash_duration must be >= 1, got {crash_duration}")
        self.max_delay = int(max_delay)
        self.max_retries = int(max_retries)
        self.crash_duration = int(crash_duration)
        self.crash_events: Tuple[CrashEvent, ...] = tuple(crash_events)
        self.rng = as_rng(seed)
        self._crashes_by_round: Dict[int, List[CrashEvent]] = {}
        for event in self.crash_events:
            self._crashes_by_round.setdefault(event.at_round, []).append(event)

    # ------------------------------------------------------------------
    # Activity
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether this plan can ever produce a fault.

        An inactive plan (every rate pinned to zero, no crash schedule)
        short-circuits the protocol onto its legacy fault-free path without
        a single RNG draw — the bitwise-identity guarantee.  Note the
        *default* ``drop_rate=None`` is active: it means PRR-derived loss.
        """
        return (
            self.drop_rate != 0.0
            or self.duplicate_rate > 0.0
            or self.delay_rate > 0.0
            or self.crash_rate > 0.0
            or bool(self.crash_events)
        )

    # ------------------------------------------------------------------
    # Per-link outcomes
    # ------------------------------------------------------------------
    def drop_probability(self, prr: float) -> float:
        """Loss probability of one attempt over a link with the given PRR."""
        if self.drop_rate is not None:
            return self.drop_rate
        return min(max(1.0 - prr, 0.0), 1.0)

    def attempt(self, prr: float) -> DeliveryOutcome:
        """Draw the fate of one delivery attempt over one link.

        Draw order is fixed (drop, then duplicate, then delay) and draws
        are only made for knobs that can fire, so a given seed replays the
        identical fault sequence regardless of which knobs are zero.
        """
        p_drop = self.drop_probability(prr)
        if p_drop > 0.0 and self.rng.random() < p_drop:
            return DeliveryOutcome(delivered=False)
        duplicated = (
            self.duplicate_rate > 0.0 and self.rng.random() < self.duplicate_rate
        )
        delay = 0
        if self.delay_rate > 0.0 and self.rng.random() < self.delay_rate:
            delay = int(self.rng.integers(1, self.max_delay + 1))
        if not duplicated and delay == 0:
            return _CLEAN_DELIVERY
        return DeliveryOutcome(delivered=True, duplicated=duplicated, delay=delay)

    # ------------------------------------------------------------------
    # Crash schedule
    # ------------------------------------------------------------------
    def scheduled_crashes(self, round_index: int) -> List[CrashEvent]:
        """Explicit crash events that fire at the start of *round_index*."""
        return list(self._crashes_by_round.get(round_index, ()))

    def draw_crash(self) -> bool:
        """One probabilistic crash draw (``crash_rate`` per node per round)."""
        return self.crash_rate > 0.0 and bool(self.rng.random() < self.crash_rate)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        """JSON-compatible knob dump (for manifests and CLI headlines)."""
        return {
            "drop_rate": "prr-derived" if self.drop_rate is None else self.drop_rate,
            "duplicate_rate": self.duplicate_rate,
            "delay_rate": self.delay_rate,
            "max_delay": self.max_delay,
            "max_retries": self.max_retries,
            "crash_rate": self.crash_rate,
            "crash_duration": self.crash_duration,
            "crash_events": len(self.crash_events),
            "active": self.active,
        }

    def __repr__(self) -> str:
        knobs = ", ".join(f"{k}={v!r}" for k, v in self.describe().items())
        return f"FaultPlan({knobs})"
