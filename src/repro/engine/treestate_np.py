"""Struct-of-arrays numpy backend for the incremental tree state.

:class:`TreeStateNumpy` stores every per-node quantity the searches touch
as a flat vector — parent pointer, children count, lifetime, and the cost /
PRR of the node's current tree edge — and adds **bulk move scans**: one
vectorized pass over all ``(child, candidate-parent)`` pairs replaces the
per-candidate Python loop at the heart of the greedy cost descents.

Decision identity with the ``"object"`` backend is a hard contract, pinned
by the randomized cross-backend equivalence suite:

* cost and reliability are accumulated with the *same scalar float
  operations in the same order* as the object backend (never via
  ``np.sum``/``np.prod``, whose pairwise reductions drift by ULPs);
* per-edge costs enter the arrays from the scalar
  :attr:`~repro.network.model.Edge.cost` values (``math.log``), never from
  ``np.log`` (SIMD log is not guaranteed bitwise-equal to libm);
* vectorized minima (`np.min`, masked rescans) equal the Python ``min``
  over the same values exactly, so lifetimes match bitwise;
* bulk scans enumerate candidates in the exact order of the object
  backend's nested loops (child ascending, then neighbour ascending) and
  break ties identically, so every search accepts the same move sequence.

The adjacency arrays built by :meth:`_ensure_adj` snapshot link costs once
per state; bulk scans therefore assume link qualities do not change for the
duration of a search — true for every registered builder (the churn
simulator mutates PRRs only *between* builds).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.treestate import TreeState

__all__ = ["TreeStateNumpy"]

#: ``(src, dst, cost, indptr)`` flat directed adjacency in (src asc, dst
#: asc) order — the object backend's scan order.
_Adjacency = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


class TreeStateNumpy(TreeState):
    """Array-native tree state; registered as the ``"numpy"`` backend.

    Construct it via ``TreeState(..., backend="numpy")``, the
    ``REPRO_ENGINE_BACKEND`` environment variable, or
    :func:`repro.engine.backend.use_backend` — direct instantiation works
    too and always yields this class.
    """

    backend_name = "numpy"

    __slots__ = ("_ecost", "_eprr", "_adj")

    # ------------------------------------------------------------------
    # Backend hooks (see TreeState)
    # ------------------------------------------------------------------
    def _init_lifetimes(self) -> None:
        n = self.network.n
        self._life = self._lifetimes_for_counts(np.zeros(n, dtype=np.int64))
        self._ecost = np.zeros(n, dtype=np.float64)
        self._eprr = np.ones(n, dtype=np.float64)
        self._adj: Optional[_Adjacency] = None

    def _lifetimes_for_counts(self, counts: np.ndarray) -> np.ndarray:
        """Vectorized Eq. 1 — elementwise identical to the scalar
        ``EnergyModel.lifetime_rounds`` (same multiply/add/divide order)."""
        model = self.network.energy_model
        return self.network.initial_energies / (model.tx + model.rx * counts)

    def _note_parent_edge(self, v: int, edge) -> None:
        self._ecost[v] = edge.cost
        self._eprr[v] = edge.prr

    def _recompute_all_lifetimes(self) -> None:
        self._life = self._lifetimes_for_counts(self._n_children)

    # ------------------------------------------------------------------
    # Vectorized structure accessors
    # ------------------------------------------------------------------
    def children(self, v: int) -> List[int]:
        return np.nonzero(self._parent == v)[0].tolist()

    def children_lists(self) -> List[List[int]]:
        n = self.network.n
        parent = self._parent
        kids: List[List[int]] = [[] for _ in range(n)]
        attached = np.nonzero(parent >= 0)[0]
        if attached.size:
            # Stable sort by parent keeps children ascending within a parent.
            order = attached[np.argsort(parent[attached], kind="stable")]
            sorted_parents = parent[order]
            ids = np.arange(n)
            starts = np.searchsorted(sorted_parents, ids, side="left")
            ends = np.searchsorted(sorted_parents, ids, side="right")
            for p in np.nonzero(ends > starts)[0]:
                kids[p] = order[starts[p] : ends[p]].tolist()
        return kids

    def parents_map(self) -> Dict[int, int]:
        attached = np.nonzero(self._parent >= 0)[0]
        parents = self._parent[attached]
        return {int(v): int(p) for v, p in zip(attached, parents)}

    # ------------------------------------------------------------------
    # Vectorized metrics
    # ------------------------------------------------------------------
    def lifetime(self) -> float:
        if self._min_dirty:
            low = self._life.min()
            self._min_life = float(low)
            self._min_count = int(np.count_nonzero(self._life == low))
            self._min_dirty = False
        return self._min_life

    def lifetime_values(self) -> Sequence[float]:
        return self._life

    def bottleneck_members(
        self, rel_tol: float = 1e-12
    ) -> Tuple[float, List[int]]:
        life = self._life
        low = float(life.min())
        members = np.nonzero(life <= low * (1 + rel_tol))[0]
        return low, members.tolist()

    def lifetime_if_reparent(self, v: int, new_parent: int) -> float:
        old = int(self._parent[v])
        if old < 0:
            raise ValueError(f"node {v} is not attached")
        current = self.lifetime()
        if new_parent == old:
            return current
        model = self.network.energy_model
        life_old = model.lifetime_rounds(
            self.network.initial_energy(old), int(self._n_children[old]) - 1
        )
        life_new = model.lifetime_rounds(
            self.network.initial_energy(new_parent),
            int(self._n_children[new_parent]) + 1,
        )
        touched_at_min = (self._life[old] == current) + (
            self._life[new_parent] == current
        )
        if self._min_count > touched_at_min:
            rest = current
        else:
            mask = np.ones(self.network.n, dtype=bool)
            mask[old] = False
            mask[new_parent] = False
            others = self._life[mask]
            rest = float(others.min()) if others.size else math.inf
        return min(rest, life_old, life_new)

    # ------------------------------------------------------------------
    # Bulk move scans
    # ------------------------------------------------------------------
    def _ensure_adj(self) -> _Adjacency:
        if self._adj is not None:
            return self._adj
        network = self.network
        n = network.n
        dst: List[int] = []
        cost: List[float] = []
        indptr = np.zeros(n + 1, dtype=np.int64)
        for v in range(n):
            for u in network.neighbors(v):  # ascending
                dst.append(u)
                cost.append(network.cost(v, u))  # scalar math.log values
            indptr[v + 1] = len(dst)
        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
        self._adj = (
            src,
            np.asarray(dst, dtype=np.int64),
            np.asarray(cost, dtype=np.float64),
            indptr,
        )
        return self._adj

    # Numpy-only vectorized fast path: callers probe it with getattr(...,
    # None) and fall back to the scalar scan, so it is deliberately not
    # part of the TreeStateBackend protocol.
    def reparent_candidates(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:  # repro: ignore[REP111]
        """``(child, cand, delta)`` for every legal-looking re-parent pair.

        Covers all directed ``(node, neighbour)`` pairs with ``child !=
        sink`` and ``cand != parent(child)``, in (child ascending, cand
        ascending) order — the object backend's scan order.  ``delta`` is
        the cost change ``cost(child, cand) - cost(child, parent)``,
        bitwise-equal to the scalar preview.  Subtree (cycle) legality is
        *not* filtered here; :meth:`best_cost_reparent` validates lazily.
        """
        src, dst, cost, _ = self._ensure_adj()
        keep = (src != self.network.sink) & (dst != self._parent[src])
        child = src[keep]
        cand = dst[keep]
        delta = cost[keep] - self._ecost[child]
        return child, cand, delta

    # Same duck-typed fast-path contract as reparent_candidates above.
    def best_cost_reparent(  # repro: ignore[REP111]
        self,
        *,
        cand_ok: Optional[np.ndarray] = None,
        child_group: Optional[np.ndarray] = None,
        pair_ok: Optional[
            Callable[[np.ndarray, np.ndarray], np.ndarray]
        ] = None,
        threshold: Optional[float] = None,
    ) -> Optional[Tuple[float, int, int]]:
        """The move the object backend's nested cost scan would accept.

        Returns ``(delta, child, cand)`` for the minimum-delta valid move —
        ties broken by scan order, exactly like the sequential ``delta <
        best`` loops — or ``None`` when no candidate qualifies.

        Args:
            cand_ok: Optional per-node bool mask of allowed new parents
                (children-cap filtering).
            child_group: Optional per-node int key; when given, children
                with a negative key are excluded and candidates are scanned
                grouped by ascending key first (``repair_overload`` scans
                by ascending overloaded-parent id before child id).
            pair_ok: Optional vectorized predicate over ``(child, cand)``
                arrays (the delay-bounded depth gate).
            threshold: When set, only deltas strictly below it qualify
                (the ``-1e-15`` strict-descent cutoff).

        Subtree legality is validated lazily on the delta-sorted candidate
        list (O(depth) ancestor walk each), so the usual case touches a
        handful of candidates even though millions were scored.
        """
        if not self.spanning:
            raise ValueError("bulk move scans require a spanning state")
        child, cand, delta = self.reparent_candidates()
        valid = np.ones(child.size, dtype=bool)
        if cand_ok is not None:
            valid &= cand_ok[cand]
        if child_group is not None:
            valid &= child_group[child] >= 0
        if pair_ok is not None:
            valid &= pair_ok(child, cand)
        if threshold is not None:
            valid &= delta < threshold
        idx = np.nonzero(valid)[0]
        if idx.size == 0:
            return None
        if child_group is not None:
            # Stable: keeps (child, cand) order within one group.
            idx = idx[np.argsort(child_group[child[idx]], kind="stable")]
        order = idx[np.argsort(delta[idx], kind="stable")]
        for i in order:
            c = int(child[i])
            t = int(cand[i])
            if not self.in_subtree(t, c):
                return float(delta[i]), c, t
        return None

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def copy(self) -> "TreeStateNumpy":
        clone = super().copy()
        clone._ecost = self._ecost.copy()
        clone._eprr = self._eprr.copy()
        clone._adj = self._adj  # immutable snapshot, safe to share
        return clone
