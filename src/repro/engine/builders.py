"""Stock tree-builder registrations: the paper's algorithms plus baselines.

Importing this module populates the registry (:mod:`repro.engine.registry`
does so lazily on first lookup).  Each builder wraps the underlying
``build_*`` function, normalizes its result to ``(tree, meta, raw)``, and
documents its config knobs for ``repro builders``.

Canonical names::

    ira            IRA (Algorithm 1)           — needs lc
    exact          MILP optimum                — optional lc (None = MST)
    local_search   feasibility-first heuristic — needs lc, no LP
    aaml           lifetime-maximizing ascent
    rasmalai       randomized switching
    mst            Prim minimum-cost tree
    spt            Dijkstra shortest-path tree
    random_tree    uniform random (Wilson)
    delay_bounded  depth-capped cost descent   — needs max_depth
    bfs            breadth-first (hop) tree
    min_energy     Kuo–Lin–Tsai energy SPT     — related work
    clmt           centralized lifetime greedy — related work
    dlmt           decentralized lifetime tree — related work
    convergecast   max-lifetime convergecast   — related work
    portfolio      race members, keep the best — meta-builder
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence

from repro.baselines.aaml import MAX_ITERATIONS, build_aaml_tree
from repro.baselines.convergecast import build_convergecast_tree
from repro.baselines.delay_bounded import build_delay_bounded_tree
from repro.baselines.kuo_energy import build_kuo_energy_tree
from repro.baselines.mst import build_mst_tree
from repro.baselines.random_tree import build_random_tree
from repro.baselines.rasmalai import DEFAULT_PATIENCE, build_rasmalai_tree
from repro.baselines.spt import build_spt_tree
from repro.baselines.virmani import build_clmt_tree, build_dlmt_tree
from repro.core.exact import solve_mrlc_exact
from repro.core.ira import build_ira_tree
from repro.core.lifetime import LifetimeSpec
from repro.core.local_search import (
    bfs_tree,
    improve_hamiltonian_path,
    maximize_lifetime,
    reduce_cost_under_caps,
)
from repro.engine.registry import tree_builder
from repro.network.model import Network

__all__: list = []


@tree_builder(
    "ira",
    knobs={
        "lc": "required network lifetime LC in aggregation rounds (required)",
        "constrain_sink": "whether the sink joins W (default True)",
        "inflation": "'auto' | 'paper' | 'none' — Algorithm 1 line-3 bound",
    },
)
def _build_ira(
    network: Network, *, lc: float, constrain_sink: bool = True, inflation: str = "auto"
):
    """IRA (Algorithm 1): max-reliability aggregation tree meeting LC."""
    result = build_ira_tree(
        network, lc, constrain_sink=constrain_sink, inflation=inflation
    )
    meta = {
        "lc": result.spec.lc,
        "iterations": result.iterations,
        "lp_solves": result.lp_solves,
        "cuts_generated": result.cuts_generated,
        "forced_relaxations": len(result.forced_relaxations),
        "lifetime_satisfied": result.lifetime_satisfied,
        "inflation_used": result.inflation_used,
    }
    return result.tree, meta, result


@tree_builder(
    "exact",
    knobs={
        "lc": "lifetime bound (None solves the unconstrained problem = MST)",
        "constrain_sink": "whether the sink's lifetime is bounded too",
        "time_limit_s": "MILP wall-clock limit in seconds",
    },
)
def _build_exact(
    network: Network,
    *,
    lc: Optional[float] = None,
    constrain_sink: bool = True,
    time_limit_s: Optional[float] = None,
):
    """Exact MILP optimum of MRLC (exponential time; keep n small)."""
    result = solve_mrlc_exact(
        network, lc, constrain_sink=constrain_sink, time_limit_s=time_limit_s
    )
    meta = {
        "cost": result.cost,
        "milp_solves": result.milp_solves,
        "cuts": len(result.cuts),
    }
    return result.tree, meta, result


@tree_builder(
    "local_search",
    knobs={
        "lc": "required network lifetime LC in aggregation rounds (required)",
        "max_moves": "safety cap on accepted moves per search stage",
    },
)
def _build_local_search(network: Network, *, lc: float, max_moves: int = 100_000):
    """LP-free MRLC heuristic: lifetime ascent, then cost descent under LC's caps."""
    from repro.core.errors import InfeasibleLifetimeError

    lifted, ascent_moves = maximize_lifetime(bfs_tree(network), max_moves=max_moves)
    if not lifted.meets_lifetime(lc):
        raise InfeasibleLifetimeError(
            f"local search cannot reach LC={lc}: best bottleneck lifetime "
            f"{lifted.lifetime():.6g}"
        )
    spec = LifetimeSpec.uninflated(network, lc)
    caps = {
        v: max(
            spec.tree_feasible_degree(network, v)
            - (0 if v == network.sink else 1),
            0,
        )
        for v in network.nodes
    }
    polished = improve_hamiltonian_path(
        reduce_cost_under_caps(lifted, caps, max_moves=max_moves)
    )
    meta = {"ascent_moves": ascent_moves, "lifetime": polished.lifetime()}
    return polished, meta


@tree_builder(
    "aaml",
    knobs={
        "max_iterations": "safety cap on accepted ascent moves",
    },
)
def _build_aaml(network: Network, *, max_iterations: int = MAX_ITERATIONS):
    """AAML baseline: lexicographic bottleneck-lifetime local search."""
    result = build_aaml_tree(network, max_iterations=max_iterations)
    meta = {"lifetime": result.lifetime, "iterations": result.iterations}
    return result.tree, meta, result


@tree_builder(
    "rasmalai",
    knobs={
        "seed": "randomness for node/child/parent picks",
        "max_switches": "hard cap on accepted switches",
        "patience": "consecutive rejections before convergence",
    },
)
def _build_rasmalai(
    network: Network,
    *,
    seed=None,
    max_switches: int = 10_000,
    patience: int = DEFAULT_PATIENCE,
):
    """RaSMaLai baseline: randomized bottleneck switching for lifetime."""
    result = build_rasmalai_tree(
        network, seed=seed, max_switches=max_switches, patience=patience
    )
    meta = {
        "lifetime": result.lifetime,
        "switches": result.switches,
        "attempts": result.attempts,
    }
    return result.tree, meta, result


@tree_builder(
    "mst",
    knobs={
        "root": "grow from this node instead of the sink",
    },
)
def _build_mst(network: Network, *, root: Optional[int] = None):
    """Prim minimum-cost spanning tree — the unconstrained reliability optimum."""
    return build_mst_tree(network, root=root)


@tree_builder(
    "spt",
    knobs={
        "hop_metric": "use hop count instead of -log q as the path metric",
    },
)
def _build_spt(network: Network, *, hop_metric: bool = False):
    """Dijkstra shortest-path tree from the sink."""
    return build_spt_tree(network, hop_metric=hop_metric)


@tree_builder(
    "random_tree",
    knobs={
        "seed": "randomness for the uniform spanning-tree draw",
    },
)
def _build_random(network: Network, *, seed=None):
    """Uniform random spanning tree (Wilson's algorithm)."""
    return build_random_tree(network, seed=seed)


@tree_builder(
    "delay_bounded",
    knobs={
        "max_depth": "hop/latency bound every node must stay within (required)",
        "max_moves": "safety cap on cost-descent moves",
    },
)
def _build_delay_bounded(network: Network, *, max_depth: int, max_moves: int = 100_000):
    """Depth-capped cheapest tree (delay-bounded collection baseline)."""
    tree = build_delay_bounded_tree(network, max_depth, max_moves=max_moves)
    return tree, {"depth": max(tree.depth(v) for v in range(tree.n))}


@tree_builder("bfs", knobs={})
def _build_bfs(network: Network):
    """Breadth-first (shortest-hop) spanning tree — the canonical start point."""
    return bfs_tree(network)


@tree_builder("min_energy", knobs={})
def _build_min_energy(network: Network):
    """Minimum-energy-path tree (Kuo–Lin–Tsai approximation, arXiv:1402.6457)."""
    result = build_kuo_energy_tree(network)
    meta = {
        "tree_energy_j": result.tree_energy_j,
        "max_path_energy_j": result.max_path_energy_j,
    }
    return result.tree, meta, result


@tree_builder("clmt", knobs={})
def _build_clmt(network: Network):
    """Centralized lifetime-maximizing tree (Virmani & Jain, arXiv:1301.4988)."""
    result = build_clmt_tree(network)
    meta = {"lifetime": result.lifetime, "attachments": result.attachments}
    return result.tree, meta, result


@tree_builder("dlmt", knobs={})
def _build_dlmt(network: Network):
    """Decentralized lifetime-maximizing tree (Virmani & Jain, arXiv:1301.4551)."""
    result = build_dlmt_tree(network)
    meta = {"lifetime": result.lifetime, "attachments": result.attachments}
    return result.tree, meta, result


@tree_builder(
    "convergecast",
    knobs={
        "max_moves": "safety cap on accepted reparent moves",
    },
)
def _build_convergecast(network: Network, *, max_moves: int = 100_000):
    """Max-lifetime convergecast tree (John et al., arXiv:1910.09793)."""
    result = build_convergecast_tree(network, max_moves=max_moves)
    meta = {"convergecast_lifetime": result.lifetime, "moves": result.moves}
    return result.tree, meta, result


@tree_builder(
    "portfolio",
    knobs={
        "lc": "lifetime bound members must meet (optional)",
        "members": "registry builder names to race (default: heuristic set)",
        "budget_s": "wall-clock budget in seconds (optional)",
        "seed": "portfolio seed; member seeds derive from it by name",
        "member_params": "per-member config overrides {name: {knob: value}}",
        "parallel": "force parallel/serial racing (default: auto)",
        "n_jobs": "worker processes for the parallel race",
    },
)
def _build_portfolio(
    network: Network,
    *,
    lc: Optional[float] = None,
    members: Optional[Sequence[str]] = None,
    budget_s: Optional[float] = None,
    seed: Optional[int] = None,
    member_params: Optional[Mapping[str, Mapping[str, Any]]] = None,
    parallel: Optional[bool] = None,
    n_jobs: Optional[int] = None,
):
    """Race a member set under a wall-clock budget; keep the best LC-feasible tree."""
    from repro.engine.portfolio import build_portfolio_tree

    return build_portfolio_tree(
        network,
        lc=lc,
        members=members,
        budget_s=budget_s,
        seed=seed,
        member_params=member_params,
        parallel=parallel,
        n_jobs=n_jobs,
    )
