"""Core-compute benchmark: array-native backend vs the historical loops.

Two measurements, both over workloads the acceptance bar names:

* **Round simulation** — ``AggregationSimulator.estimate_reliability`` (the
  batched Bernoulli-matrix path) against a faithful re-implementation of
  the historical per-edge Python loop, on an n≥5000 tree.  Both consume the
  same RNG stream and must produce the same estimate; the speedup is the
  vectorization win alone.
* **Local search** — ``build_tree("local_search", ...)`` end to end on an
  n≥2000 network, ``backend="object"`` vs ``backend="numpy"``.  The trees
  must match bitwise (cost and lifetime compared exactly); the speedup is
  the struct-of-arrays TreeState win on the scan-heavy cost descent.

``repro bench-core`` runs both and can append the report to a
``BENCH_core.json`` trajectory (same shape as ``BENCH_serve.json``), which
``repro obs bench-diff`` then gates — the cross-PR regression sentinel for
the compute core.  See ``docs/performance.md``.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, Union

from repro.engine.registry import build_tree
from repro.network.topology import grid_graph
from repro.simulation.rounds import AggregationSimulator
from repro.utils.rng import as_rng

__all__ = [
    "BENCH_CORE_FORMAT",
    "CoreBenchReport",
    "append_core_bench_run",
    "run_core_bench",
]

BENCH_CORE_FORMAT = "repro-bench-core"
BENCH_CORE_VERSION = 1

#: Default workload sizes — the smallest the acceptance bar admits
#: (round simulation at n ≥ 5000, local search at n ≥ 2000).
ROUND_SIM_GRID = 71  # 71 × 71 = 5041 nodes
ROUND_SIM_ROUNDS = 200
SEARCH_GRID = 45  # 45 × 45 = 2025 nodes
#: Grid spacing for the search workload: far enough apart that shadowing
#: spreads link PRRs over orders of magnitude, so the BFS seed is far from
#: cost-optimal and the descent actually scans.
SEARCH_SPACING_M = 28.0
SEARCH_MAX_MOVES = 100


def _reference_estimate(tree, rng, n_rounds: int) -> float:
    """The historical per-edge scalar loop, kept verbatim as the baseline.

    One ``rng.random()`` per non-sink postorder node per round — the exact
    draw order the vectorized simulator reproduces, so both sides of the
    benchmark can (and do) assert equal estimates.
    """
    net = tree.network
    postorder = tree.postorder()
    complete = 0
    for _ in range(n_rounds):
        delivered_below = {v: {v} for v in range(tree.n)}
        for v in postorder:
            if v == tree.sink:
                continue
            parent = tree.parent(v)
            if rng.random() < net.prr(v, parent):
                delivered_below[parent] |= delivered_below[v]
        complete += len(delivered_below[tree.sink]) == tree.n
    return complete / n_rounds


@dataclass(frozen=True)
class CoreBenchReport:
    """One core-bench run: sizes, wall-clock splits, and the two speedups."""

    round_sim_nodes: int
    round_sim_rounds: int
    round_sim_reference_s: float
    round_sim_vectorized_s: float
    round_sim_speedup: float
    search_nodes: int
    search_max_moves: int
    search_object_s: float
    search_numpy_s: float
    local_search_speedup: float
    timestamp: float

    def to_doc(self) -> Dict[str, Any]:
        return asdict(self)

    def render(self) -> str:
        lines = [
            "core bench",
            f"  round sim   n={self.round_sim_nodes} rounds={self.round_sim_rounds}:"
            f" loop {self.round_sim_reference_s:.3f}s ->"
            f" vectorized {self.round_sim_vectorized_s:.3f}s"
            f"  ({self.round_sim_speedup:.1f}x)",
            f"  local search n={self.search_nodes}"
            f" max_moves={self.search_max_moves}:"
            f" object {self.search_object_s:.3f}s ->"
            f" numpy {self.search_numpy_s:.3f}s"
            f"  ({self.local_search_speedup:.1f}x)",
        ]
        return "\n".join(lines)


def run_core_bench(
    *,
    round_grid: int = ROUND_SIM_GRID,
    rounds: int = ROUND_SIM_ROUNDS,
    search_grid: int = SEARCH_GRID,
    search_max_moves: int = SEARCH_MAX_MOVES,
    seed: int = 0,
) -> CoreBenchReport:
    """Run both core benchmarks once and return the report.

    Correctness is asserted, not sampled: the round-simulation estimates
    and the local-search trees must agree exactly between the compared
    implementations (they share RNG streams / decision sequences), so a
    speedup can never be bought with a behaviour change.
    """
    # --- round simulation: batched matrix vs historical loop -----------
    sim_net = grid_graph(round_grid, round_grid, seed=seed)
    sim_tree = build_tree("bfs", sim_net).tree

    start = time.perf_counter()
    vec = AggregationSimulator(sim_tree, seed=seed).estimate_reliability(rounds)
    vectorized_s = time.perf_counter() - start

    start = time.perf_counter()
    ref = _reference_estimate(sim_tree, as_rng(seed), rounds)
    reference_s = time.perf_counter() - start
    if vec != ref:
        raise AssertionError(
            f"round-sim divergence: vectorized {vec} != reference {ref}"
        )

    # --- local search: object backend vs numpy backend ------------------
    search_net = grid_graph(
        search_grid, search_grid, spacing_m=SEARCH_SPACING_M, seed=seed
    )
    config = {"lc": 1.0, "max_moves": search_max_moves}

    start = time.perf_counter()
    obj = build_tree("local_search", search_net, backend="object", **config)
    object_s = time.perf_counter() - start

    start = time.perf_counter()
    vec_build = build_tree("local_search", search_net, backend="numpy", **config)
    numpy_s = time.perf_counter() - start
    if (obj.cost, obj.lifetime) != (vec_build.cost, vec_build.lifetime) or (
        obj.tree.parents != vec_build.tree.parents
    ):
        raise AssertionError("local-search divergence between backends")

    return CoreBenchReport(
        round_sim_nodes=sim_net.n,
        round_sim_rounds=rounds,
        round_sim_reference_s=reference_s,
        round_sim_vectorized_s=vectorized_s,
        round_sim_speedup=reference_s / max(vectorized_s, 1e-9),
        search_nodes=search_net.n,
        search_max_moves=search_max_moves,
        search_object_s=object_s,
        search_numpy_s=numpy_s,
        local_search_speedup=object_s / max(numpy_s, 1e-9),
        timestamp=time.time(),
    )


def append_core_bench_run(
    path: Union[str, Path], report: CoreBenchReport
) -> Dict[str, Any]:
    """Append *report* to the ``BENCH_core.json`` trajectory at *path*.

    Same one-document shape as the serve trajectory: ``{"format":
    "repro-bench-core", "version": 1, "runs": [...]}``, runs in append
    order.  Returns the written document.
    """
    target = Path(path)
    if target.exists():
        doc = json.loads(target.read_text(encoding="utf-8"))
        if doc.get("format") != BENCH_CORE_FORMAT:
            raise ValueError(
                f"{target} is not a {BENCH_CORE_FORMAT} document "
                f"(format={doc.get('format')!r})"
            )
    else:
        doc = {
            "format": BENCH_CORE_FORMAT,
            "version": BENCH_CORE_VERSION,
            "runs": [],
        }
    doc["runs"].append(report.to_doc())
    target.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return doc
