"""Engine layer: the incremental tree substrate and the builder registry.

Two pieces that every optimizer and every consumer share:

* :mod:`repro.engine.treestate` — :class:`TreeState`, a mutable spanning
  tree with O(1) ``reparent``/``attach`` moves and incrementally-maintained
  cost / reliability / lifetime, plus ``delta_*`` previews for evaluating a
  move without applying it and ``freeze()`` back to the immutable
  :class:`~repro.core.tree.AggregationTree`.
* :mod:`repro.engine.registry` — the :class:`TreeBuilder` registry mapping
  canonical names (``"ira"``, ``"exact"``, ``"local_search"``, ``"mst"``,
  ``"spt"``, ``"random_tree"``, ``"aaml"``, ``"rasmalai"``,
  ``"delay_bounded"``, ``"bfs"``) to builder functions; experiments, the
  CLIs, and the distributed simulator resolve trees through
  :func:`build_tree` instead of importing ``build_*_tree`` directly.

``repro builders`` lists everything registered, with knobs.
"""

from repro.engine.registry import (
    BuildResult,
    RegisteredBuilder,
    TreeBuilder,
    UnknownBuilderError,
    available_builders,
    build_tree,
    get_builder,
    register_builder,
    tree_builder,
)
from repro.engine.treestate import (
    LifetimeDelta,
    MovePreview,
    NO_GAIN,
    TreeState,
    freeze_parents,
    lifetime_delta_better,
)

__all__ = [
    "BuildResult",
    "LifetimeDelta",
    "MovePreview",
    "NO_GAIN",
    "RegisteredBuilder",
    "TreeBuilder",
    "TreeState",
    "UnknownBuilderError",
    "available_builders",
    "build_tree",
    "freeze_parents",
    "get_builder",
    "lifetime_delta_better",
    "register_builder",
    "tree_builder",
]
