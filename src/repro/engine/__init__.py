"""Engine layer: the incremental tree substrate and the builder registry.

Two pieces that every optimizer and every consumer share:

* :mod:`repro.engine.treestate` — :class:`TreeState`, a mutable spanning
  tree with O(1) ``reparent``/``attach`` moves and incrementally-maintained
  cost / reliability / lifetime, plus ``delta_*`` previews for evaluating a
  move without applying it and ``freeze()`` back to the immutable
  :class:`~repro.core.tree.AggregationTree`.
* :mod:`repro.engine.registry` — the :class:`TreeBuilder` registry mapping
  canonical names (``"ira"``, ``"exact"``, ``"local_search"``, ``"mst"``,
  ``"spt"``, ``"random_tree"``, ``"aaml"``, ``"rasmalai"``,
  ``"delay_bounded"``, ``"bfs"``) to builder functions; experiments, the
  CLIs, and the distributed simulator resolve trees through
  :func:`build_tree` instead of importing ``build_*_tree`` directly.

``repro builders`` lists everything registered, with knobs.

:mod:`repro.engine.portfolio` builds on the registry: it races a
configurable member set — in parallel processes under a wall-clock budget —
and returns the best LC-feasible tree with per-member outcomes
(registered as the ``"portfolio"`` meta-builder).

:mod:`repro.engine.backend` adds a second axis: every ``TreeState`` has two
interchangeable implementations — the classic object-graph one and the
numpy struct-of-arrays one (:mod:`repro.engine.treestate_np`) — selected
per call (``backend=``), per scope (:func:`use_backend`), per process
(:func:`set_default_backend`), or via the ``REPRO_ENGINE_BACKEND``
environment variable.  They are bitwise-equivalent; see
``docs/performance.md``.
"""

from repro.engine.backend import (
    DEFAULT_BACKEND,
    ENV_BACKEND,
    available_tree_backends,
    get_backend_class,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from repro.engine.portfolio import (
    DEFAULT_MEMBERS,
    MemberOutcome,
    PortfolioError,
    build_portfolio_tree,
    race_builders,
    select_winner,
)
from repro.engine.registry import (
    BuildResult,
    RegisteredBuilder,
    TreeBuilder,
    UnknownBuilderError,
    available_builders,
    build_tree,
    get_builder,
    register_builder,
    tree_builder,
)
from repro.engine.treestate import (
    LifetimeDelta,
    MovePreview,
    NO_GAIN,
    TreeState,
    TreeStateBackend,
    freeze_parents,
    lifetime_delta_better,
)
from repro.engine.treestate_np import TreeStateNumpy

__all__ = [
    "BuildResult",
    "DEFAULT_BACKEND",
    "DEFAULT_MEMBERS",
    "ENV_BACKEND",
    "LifetimeDelta",
    "MemberOutcome",
    "MovePreview",
    "NO_GAIN",
    "PortfolioError",
    "RegisteredBuilder",
    "TreeBuilder",
    "TreeState",
    "TreeStateBackend",
    "TreeStateNumpy",
    "UnknownBuilderError",
    "available_builders",
    "available_tree_backends",
    "build_portfolio_tree",
    "build_tree",
    "freeze_parents",
    "get_backend_class",
    "get_builder",
    "lifetime_delta_better",
    "race_builders",
    "register_builder",
    "select_winner",
    "resolve_backend",
    "set_default_backend",
    "tree_builder",
    "use_backend",
]
