"""Mutable incremental tree state — the substrate under every local search.

Every optimizer in the library manipulates spanning trees through the same
elementary move: detach a node from its parent and re-attach it under a
network neighbour outside its own subtree.  Historically each such move paid
for a full :class:`~repro.core.tree.AggregationTree` rebuild — O(n)
validation plus fresh Q/C/L recomputation per *candidate*.  :class:`TreeState`
keeps the parent pointers, children counts, and per-node lifetimes as mutable
arrays and maintains the three paper metrics incrementally:

* cost          ``C(T) = sum(-log q_e)``      — additive, O(1) per move
* reliability   ``Q(T) = prod(q_e)``          — multiplicative, O(1) per move
* lifetime      ``L(T) = min_v L(v)`` (Eq. 1) — lazy min with a count of
  minimum-achieving nodes, O(1) per move in the common case and an O(n)
  rescan only when every bottleneck node was touched.

A move changes exactly one tree edge and the children count of exactly two
nodes, so all bookkeeping is constant-time.  ``freeze()`` converts back to
the immutable, fully-validated :class:`AggregationTree` at search exit.

The incremental C and Q accumulate one floating add/multiply per move and so
can drift from a from-scratch recomputation by a few ULPs over thousands of
moves; the randomized equivalence suite pins the drift below 1e-9.  Lifetime
values are recomputed exactly from the children counts, never accumulated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import (
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

import numpy as np

from repro.core.tree import AggregationTree
from repro.engine.backend import get_backend_class, resolve_backend
from repro.network.model import Network

__all__ = [
    "LifetimeDelta",
    "MovePreview",
    "NO_GAIN",
    "TreeState",
    "TreeStateBackend",
    "freeze_parents",
    "lifetime_delta_better",
]

#: A lifetime delta as two cancelled multisets ``(removed, added)`` of
#: per-node lifetime values; the identity move is ``((), ())``.
LifetimeDelta = Tuple[Tuple[float, ...], Tuple[float, ...]]

#: The identity lifetime delta (move changes no node's lifetime).
NO_GAIN: LifetimeDelta = ((), ())


@dataclass(frozen=True)
class MovePreview:
    """Metrics a re-parent move *would* produce, computed without applying it.

    Attributes:
        cost: ``C(T')`` after the move.
        reliability: ``Q(T')`` after the move.
        lifetime: ``L(T')`` after the move.
        delta_cost: ``C(T') - C(T)``.
        delta_reliability: ``Q(T') - Q(T)``.
        delta_lifetime: ``L(T') - L(T)``.
    """

    cost: float
    reliability: float
    lifetime: float
    delta_cost: float
    delta_reliability: float
    delta_lifetime: float


def lifetime_delta_better(a: LifetimeDelta, b: LifetimeDelta) -> bool:
    """Whether move *a* beats move *b* on the ascending lifetime vector.

    Both deltas must be taken against the same base state.  Compares the two
    resulting sorted lifetime vectors lexicographically — without building
    them.  If ``S`` is the base multiset, move *a* yields ``S - rem_a +
    add_a``; comparing that against ``S - rem_b + add_b`` reduces (after
    cancelling ``S``) to an elementwise walk over ``sorted(add_a + rem_b)``
    versus ``sorted(add_b + rem_a)``: at the first differing value, the side
    holding the *larger* value has the lexicographically greater vector.
    Pass ``b = NO_GAIN`` to ask "does *a* strictly improve the current tree?".
    """
    rem_a, add_a = a
    rem_b, add_b = b
    plus = sorted(add_a + rem_b)
    minus = sorted(add_b + rem_a)
    for x, y in zip(plus, minus):
        if x != y:
            return x > y
    return False


@runtime_checkable
class TreeStateBackend(Protocol):
    """The contract every tree-state backend implements.

    This is the surface the local searches, the builders, and the
    simulators program against; :class:`TreeState` (the ``"object"``
    backend) and :class:`~repro.engine.treestate_np.TreeStateNumpy` (the
    ``"numpy"`` struct-of-arrays backend) both satisfy it, and the
    randomized cross-backend equivalence suite pins that they agree
    bitwise on every method below.  Backends are selected by name through
    :mod:`repro.engine.backend` (``backend=`` argument or the
    ``REPRO_ENGINE_BACKEND`` environment variable).
    """

    network: Network

    # structure
    def is_attached(self, v: int) -> bool: ...
    def parent(self, v: int) -> Optional[int]: ...
    def parents_map(self) -> Dict[int, int]: ...
    def n_children(self, v: int) -> int: ...
    def children(self, v: int) -> List[int]: ...
    def children_lists(self) -> List[List[int]]: ...
    def in_subtree(self, node: int, root: int) -> bool: ...
    def depths(self) -> List[int]: ...

    # metrics
    def node_lifetime(self, v: int) -> float: ...
    def lifetime(self) -> float: ...
    def lifetime_values(self) -> Sequence[float]: ...
    def bottleneck_count(self) -> int: ...

    # moves and previews
    def attach(self, v: int, parent: int) -> None: ...
    def reparent(self, v: int, new_parent: int, *, check: bool = True) -> None: ...
    def delta_cost(self, v: int, new_parent: int) -> float: ...
    def delta_reliability(self, v: int, new_parent: int) -> float: ...
    def lifetime_if_reparent(self, v: int, new_parent: int) -> float: ...
    def reparent_lifetime_delta(self, v: int, new_parent: int) -> LifetimeDelta: ...

    # conversion
    def freeze(self) -> AggregationTree: ...
    def copy(self) -> "TreeStateBackend": ...


class TreeState:
    """Mutable (partial) spanning tree with O(1) incremental paper metrics.

    A node is *attached* when it has a parent pointer (the sink is always
    attached).  ``attach`` grows a partial tree one node at a time (the BFS /
    Prim / Kruskal construction pattern); ``reparent`` is the local-search
    move.  Metrics cover the attached part: cost and reliability sum/multiply
    over the attached tree edges, lifetime takes the min over *all* nodes
    (unattached nodes carry their zero-children lifetime, so once the state
    is spanning every metric equals the :class:`AggregationTree` definition).

    ``TreeState(...)`` is also the backend dispatch point: constructing the
    base class resolves the effective backend (explicit ``backend=`` >
    ambient :func:`repro.engine.backend.use_backend` > the
    ``REPRO_ENGINE_BACKEND`` environment variable > ``"object"``) and may
    hand back a :class:`~repro.engine.treestate_np.TreeStateNumpy` instead.
    Instantiating a concrete subclass directly always yields that subclass.

    Args:
        network: The network the tree lives in.
        parents: Optional parent map (dict, or length-``n`` sequence with the
            sink's entry ignored).  ``None`` starts with only the sink
            attached.  A partial dict is allowed as long as every attached
            node reaches the sink; edges must exist in the network.
        backend: Optional backend name (``"object"`` / ``"numpy"``)
            overriding the ambient/environment policy for this instance.
    """

    #: Registry name of this implementation (subclasses override).
    backend_name = "object"

    __slots__ = (
        "network",
        "_parent",
        "_n_children",
        "_life",
        "_cost",
        "_q",
        "_n_attached",
        "_min_life",
        "_min_count",
        "_min_dirty",
    )

    def __new__(
        cls,
        network: Optional[Network] = None,
        parents: Optional[Dict[int, int] | Sequence[int]] = None,
        *,
        backend: Optional[str] = None,
    ) -> "TreeState":
        # Only base-class construction dispatches; concrete subclasses are
        # an explicit choice and are honoured as-is.
        if cls is TreeState:
            impl = get_backend_class(resolve_backend(backend))
            if impl is not TreeState:
                return super().__new__(impl)
        return super().__new__(cls)

    def __init__(
        self,
        network: Network,
        parents: Optional[Dict[int, int] | Sequence[int]] = None,
        *,
        backend: Optional[str] = None,  # consumed by __new__ dispatch
    ) -> None:
        self.network = network
        n = network.n
        self._parent = np.full(n, -1, dtype=np.int64)
        self._n_children = np.zeros(n, dtype=np.int64)
        self._init_lifetimes()
        self._cost = 0.0
        self._q = 1.0
        self._n_attached = 1
        self._min_life = 0.0
        self._min_count = 0
        self._min_dirty = True
        if parents is not None:
            self._load_parents(parents)

    # -- backend extension points ---------------------------------------
    # The numpy backend overrides these three hooks (array storage, O(1)
    # per-move edge bookkeeping, vectorized recomputes); the scalar cost/Q
    # accumulation itself is shared so both backends produce bitwise-equal
    # metrics.
    def _init_lifetimes(self) -> None:
        network = self.network
        model = network.energy_model
        self._life: List[float] = [
            model.lifetime_rounds(network.initial_energy(v), 0)
            for v in range(network.n)
        ]

    def _note_parent_edge(self, v: int, edge) -> None:
        """Called whenever *v*'s tree edge becomes *edge* (attach/reparent)."""

    def _recompute_all_lifetimes(self) -> None:
        network = self.network
        model = network.energy_model
        for v in range(network.n):
            self._life[v] = model.lifetime_rounds(
                network.initial_energy(v), int(self._n_children[v])
            )

    def _load_parents(self, parents: Dict[int, int] | Sequence[int]) -> None:
        network = self.network
        n = network.n
        sink = network.sink
        if isinstance(parents, dict):
            items = list(parents.items())
        else:
            if len(parents) != n:
                raise ValueError(
                    f"parents sequence must have length {n}, got {len(parents)}"
                )
            items = [(v, p) for v, p in enumerate(parents) if v != sink]
        for v, p in items:
            if v == sink:
                continue
            if not (0 <= v < n) or not (0 <= p < n):
                raise ValueError(f"parent entry ({v} -> {p}) out of range")
            if not network.has_edge(v, p):
                raise ValueError(
                    f"tree edge ({v}, {p}) does not exist in the network"
                )
            self._parent[v] = p
        # Every attached node must reach the sink (no cycles, no orphan
        # chains) — the same invariant AggregationTree validates, relaxed to
        # the attached subset.
        state = np.zeros(n, dtype=np.int8)  # 0 unvisited, 1 in-progress, 2 ok
        state[sink] = 2
        for start in range(n):
            if self._parent[start] < 0:
                continue
            path = []
            v = start
            while state[v] == 0 and (v == sink or self._parent[v] >= 0):
                state[v] = 1
                path.append(v)
                v = int(self._parent[v])
            if state[v] == 1:
                raise ValueError(
                    f"parent pointers contain a cycle through node {v}"
                )
            if state[v] != 2:
                raise ValueError(
                    f"node {start} does not reach the sink through its parents"
                )
            for u in path:
                state[u] = 2
        for v in range(n):
            p = int(self._parent[v])
            if p >= 0:
                self._n_children[p] += 1
                edge = network.edge(v, p)
                self._cost += edge.cost
                self._q *= edge.prr
                self._n_attached += 1
                self._note_parent_edge(v, edge)
        self._recompute_all_lifetimes()
        self._min_dirty = True

    @classmethod
    def from_tree(
        cls, tree: AggregationTree, *, backend: Optional[str] = None
    ) -> "TreeState":
        """Thaw an :class:`AggregationTree` into a mutable state.

        Called on the base class this resolves the backend policy (like
        ``TreeState(...)``); called on a concrete subclass it builds that
        subclass.
        """
        if cls is TreeState:
            impl = get_backend_class(resolve_backend(backend))
            if impl is not TreeState:
                return impl.from_tree(tree)
        state = cls(tree.network)
        parent = tree._parent
        sink = tree.sink
        network = tree.network
        for v in range(tree.n):
            if v == sink:
                continue
            p = int(parent[v])
            state._parent[v] = p
            state._n_children[p] += 1
            edge = network.edge(v, p)
            state._cost += edge.cost
            state._q *= edge.prr
            state._note_parent_edge(v, edge)
        state._n_attached = tree.n
        state._recompute_all_lifetimes()
        state._min_dirty = True
        return state

    # ------------------------------------------------------------------
    # Structure accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.network.n

    @property
    def sink(self) -> int:
        return self.network.sink

    @property
    def n_attached(self) -> int:
        """Number of attached nodes (the sink counts)."""
        return self._n_attached

    @property
    def spanning(self) -> bool:
        """Whether every node is attached."""
        return self._n_attached == self.network.n

    def is_attached(self, v: int) -> bool:
        return v == self.network.sink or self._parent[v] >= 0

    def parent(self, v: int) -> Optional[int]:
        """Parent of *v*, or ``None`` for the sink / an unattached node."""
        p = int(self._parent[v])
        return p if p >= 0 else None

    def parents_map(self) -> Dict[int, int]:
        """Parent map of the attached non-sink nodes."""
        return {
            v: int(self._parent[v])
            for v in range(self.network.n)
            if self._parent[v] >= 0
        }

    def n_children(self, v: int) -> int:
        """``Ch_T(v)`` of Eq. 1."""
        return int(self._n_children[v])

    def children_counts(self) -> np.ndarray:
        """Copy of the per-node children-count vector (``Ch_T`` of Eq. 1)."""
        return self._n_children.copy()

    def parents_array(self) -> np.ndarray:
        """Copy of the parent-pointer vector (-1 for sink/unattached)."""
        return self._parent.copy()

    def children(self, v: int) -> List[int]:
        """Children of *v* in ascending id order (O(n) scan)."""
        parent = self._parent
        return [c for c in range(self.network.n) if parent[c] == v]

    def children_lists(self) -> List[List[int]]:
        """Children of every node at once (one O(n) pass, ids ascending)."""
        kids: List[List[int]] = [[] for _ in range(self.network.n)]
        parent = self._parent
        for c in range(self.network.n):
            p = int(parent[c])
            if p >= 0:
                kids[p].append(c)
        return kids

    def in_subtree(self, node: int, root: int) -> bool:
        """Whether *node* lies in the subtree rooted at *root*.

        Walks ancestors of *node* — O(depth), not O(subtree size), which is
        what makes per-candidate cycle filtering cheap inside move scans.
        """
        sink = self.network.sink
        parent = self._parent
        u = node
        while True:
            if u == root:
                return True
            if u == sink:
                return False
            u = int(parent[u])
            if u < 0:
                return False

    def depths(self) -> List[int]:
        """Hop count to the sink for every node (-1 when unattached).

        Fully iterative (memoized path walks, O(n) total): a 10k-node
        path-like chain must not touch the recursion limit — the deep-chain
        regression test pins this.
        """
        n = self.network.n
        sink = self.network.sink
        parent = self._parent
        depth = [-1] * n
        depth[sink] = 0
        for v in range(n):
            if depth[v] >= 0 or parent[v] < 0:
                continue
            path = []
            u = v
            while depth[u] < 0:
                path.append(u)
                u = int(parent[u])
            d = depth[u]
            for w in reversed(path):
                d += 1
                depth[w] = d
        return depth

    # ------------------------------------------------------------------
    # Paper metrics (incremental)
    # ------------------------------------------------------------------
    @property
    def cost(self) -> float:
        """``C(T) = sum(-log q_e)`` over attached tree edges."""
        return self._cost

    @property
    def reliability(self) -> float:
        """``Q(T) = prod(q_e)`` over attached tree edges."""
        return self._q

    def node_lifetime(self, v: int) -> float:
        """Eq. 1 lifetime of node *v* in aggregation rounds."""
        return self._life[v]

    def lifetime(self) -> float:
        """``L(T) = min_v L(v)``; O(1) amortized via the lazy minimum."""
        if self._min_dirty:
            self._min_life = min(self._life)
            self._min_count = self._life.count(self._min_life)
            self._min_dirty = False
        return self._min_life

    def bottleneck_count(self) -> int:
        """How many nodes realise the minimum lifetime."""
        self.lifetime()
        return self._min_count

    def lifetime_values(self) -> Sequence[float]:
        """Per-node lifetimes indexed by node id (read-only view).

        The numpy backend returns its lifetime vector directly; callers
        must treat the result as immutable.
        """
        return self._life

    def bottleneck_members(self, rel_tol: float = 1e-12) -> Tuple[float, List[int]]:
        """``(low, members)``: the minimum lifetime and the node ids within
        ``low * (1 + rel_tol)`` of it, ascending.  The randomized-switching
        baseline polls this every attempt, so backends may vectorize it.
        """
        life = self._life
        low = min(life)
        bound = low * (1 + rel_tol)
        return low, [v for v, lv in enumerate(life) if lv <= bound]

    def _set_life(self, v: int, value: float) -> None:
        old = self._life[v]
        if old == value:
            return
        self._life[v] = value
        if self._min_dirty:
            return
        if value < self._min_life:
            self._min_life = value
            self._min_count = 1
        elif value == self._min_life:
            self._min_count += 1
        if old == self._min_life and value != self._min_life:
            self._min_count -= 1
            if self._min_count == 0:
                self._min_dirty = True

    def _update_children(self, v: int, delta: int) -> None:
        self._n_children[v] += delta
        self._set_life(
            v,
            self.network.energy_model.lifetime_rounds(
                self.network.initial_energy(v), int(self._n_children[v])
            ),
        )

    # ------------------------------------------------------------------
    # Moves
    # ------------------------------------------------------------------
    def attach(self, v: int, parent: int) -> None:
        """Attach the unattached node *v* under the attached node *parent*."""
        network = self.network
        if v == network.sink:
            raise ValueError("the sink cannot be attached")
        if self._parent[v] >= 0:
            raise ValueError(f"node {v} is already attached; use reparent()")
        if not self.is_attached(parent):
            raise ValueError(f"parent {parent} is not attached")
        if not network.has_edge(v, parent):
            raise ValueError(
                f"tree edge ({v}, {parent}) does not exist in the network"
            )
        edge = network.edge(v, parent)
        self._parent[v] = parent
        self._n_attached += 1
        self._cost += edge.cost
        self._q *= edge.prr
        self._note_parent_edge(v, edge)
        self._update_children(parent, +1)

    def reparent(self, v: int, new_parent: int, *, check: bool = True) -> None:
        """Move the attached node *v* under *new_parent* — O(1) bookkeeping.

        With ``check=True`` (the default) validates link existence and walks
        ``new_parent``'s ancestry to reject cycles; search loops that already
        filtered candidates pass ``check=False`` to skip the second walk.
        """
        network = self.network
        if v == network.sink:
            raise ValueError("the sink has no parent to change")
        old = int(self._parent[v])
        if old < 0:
            raise ValueError(f"node {v} is not attached; use attach()")
        p = int(new_parent)
        if p == old:
            return
        if check:
            if not self.is_attached(p):
                raise ValueError(f"new parent {p} is not attached")
            if not network.has_edge(v, p):
                raise ValueError(
                    f"tree edge ({v}, {p}) does not exist in the network"
                )
            if self.in_subtree(p, v):
                raise ValueError(
                    f"re-parenting {v} under {p} would create a cycle"
                )
        edge_old = network.edge(v, old)
        edge_new = network.edge(v, p)
        self._cost += edge_new.cost - edge_old.cost
        self._q *= edge_new.prr / edge_old.prr
        self._parent[v] = p
        self._note_parent_edge(v, edge_new)
        self._update_children(old, -1)
        self._update_children(p, +1)

    # ------------------------------------------------------------------
    # Move previews (evaluate without applying)
    # ------------------------------------------------------------------
    def delta_cost(self, v: int, new_parent: int) -> float:
        """``C(T') - C(T)`` of re-parenting *v* under *new_parent*."""
        old = int(self._parent[v])
        if old < 0:
            raise ValueError(f"node {v} is not attached")
        if new_parent == old:
            return 0.0
        return self.network.cost(v, new_parent) - self.network.cost(v, old)

    def delta_reliability(self, v: int, new_parent: int) -> float:
        """``Q(T') - Q(T)`` of re-parenting *v* under *new_parent*."""
        old = int(self._parent[v])
        if old < 0:
            raise ValueError(f"node {v} is not attached")
        if new_parent == old:
            return 0.0
        ratio = self.network.prr(v, new_parent) / self.network.prr(v, old)
        return self._q * ratio - self._q

    def lifetime_if_reparent(self, v: int, new_parent: int) -> float:
        """``L(T')`` after re-parenting *v* under *new_parent*.

        O(1) unless every current bottleneck node is one of the two nodes the
        move touches, in which case one O(n) rescan of the untouched nodes is
        needed.
        """
        old = int(self._parent[v])
        if old < 0:
            raise ValueError(f"node {v} is not attached")
        current = self.lifetime()
        if new_parent == old:
            return current
        model = self.network.energy_model
        life_old = model.lifetime_rounds(
            self.network.initial_energy(old), int(self._n_children[old]) - 1
        )
        life_new = model.lifetime_rounds(
            self.network.initial_energy(new_parent),
            int(self._n_children[new_parent]) + 1,
        )
        touched_at_min = (self._life[old] == current) + (
            self._life[new_parent] == current
        )
        if self._min_count > touched_at_min:
            rest = current
        else:
            rest = math.inf
            for u in range(self.network.n):
                if u != old and u != new_parent and self._life[u] < rest:
                    rest = self._life[u]
        return min(rest, life_old, life_new)

    def delta_lifetime(self, v: int, new_parent: int) -> float:
        """``L(T') - L(T)`` of re-parenting *v* under *new_parent*."""
        return self.lifetime_if_reparent(v, new_parent) - self.lifetime()

    def preview_reparent(self, v: int, new_parent: int) -> MovePreview:
        """All three paper metrics of the move, without applying it."""
        d_cost = self.delta_cost(v, new_parent)
        d_rel = self.delta_reliability(v, new_parent)
        life = self.lifetime_if_reparent(v, new_parent)
        return MovePreview(
            cost=self._cost + d_cost,
            reliability=self._q + d_rel,
            lifetime=life,
            delta_cost=d_cost,
            delta_reliability=d_rel,
            delta_lifetime=life - self.lifetime(),
        )

    def reparent_lifetime_delta(self, v: int, new_parent: int) -> LifetimeDelta:
        """The move's lifetime change as cancelled ``(removed, added)`` tuples.

        A re-parent changes only the lifetimes of the old and new parent, so
        the ascending lifetime vector of the trial tree differs from the
        current one by at most two removals and two additions.  Feed the
        result to :func:`lifetime_delta_better` for O(1) lexicographic
        comparison of candidate moves — the engine of the AAML ascent.
        """
        old = int(self._parent[v])
        if old < 0:
            raise ValueError(f"node {v} is not attached")
        p = int(new_parent)
        if p == old:
            return NO_GAIN
        model = self.network.energy_model
        removed = sorted((self._life[old], self._life[p]))
        added = sorted(
            (
                model.lifetime_rounds(
                    self.network.initial_energy(old),
                    int(self._n_children[old]) - 1,
                ),
                model.lifetime_rounds(
                    self.network.initial_energy(p),
                    int(self._n_children[p]) + 1,
                ),
            )
        )
        rem: List[float] = []
        add: List[float] = []
        i = j = 0
        while i < 2 and j < 2:
            if removed[i] == added[j]:
                i += 1
                j += 1
            elif removed[i] < added[j]:
                rem.append(removed[i])
                i += 1
            else:
                add.append(added[j])
                j += 1
        rem.extend(removed[i:])
        add.extend(added[j:])
        return tuple(rem), tuple(add)

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def freeze(self) -> AggregationTree:
        """The immutable, fully-validated :class:`AggregationTree`.

        Raises ``ValueError`` when the state is not spanning.  Construction
        re-validates from scratch — intentionally, so a frozen tree is always
        trustworthy regardless of how the state was mutated.
        """
        if not self.spanning:
            raise ValueError(
                f"tree is not spanning: {self._n_attached} of "
                f"{self.network.n} nodes attached"
            )
        return AggregationTree(self.network, self.parents_map())

    def copy(self) -> "TreeState":
        """Independent copy of this state (same backend as the original)."""
        clone = type(self)(self.network)
        clone._parent = self._parent.copy()
        clone._n_children = self._n_children.copy()
        clone._life = self._life.copy()
        clone._cost = self._cost
        clone._q = self._q
        clone._n_attached = self._n_attached
        clone._min_life = self._min_life
        clone._min_count = self._min_count
        clone._min_dirty = self._min_dirty
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}(n={self.network.n}, "
            f"attached={self._n_attached}, cost={self._cost:.4f})"
        )


def freeze_parents(
    network: Network,
    parents: Dict[int, int] | Sequence[int],
    *,
    backend: Optional[str] = None,
) -> AggregationTree:
    """One shared parents→:class:`AggregationTree` conversion point.

    Covers the single-node network (empty parent map) and validates through
    :class:`TreeState` so every construction site reports the same errors.
    """
    return TreeState(network, parents, backend=backend).freeze()
